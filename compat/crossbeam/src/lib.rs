//! Offline shim for `crossbeam`.
//!
//! The build container cannot reach a crate registry, so this in-tree
//! crate provides the slice of the crossbeam 0.8 API the workspace uses:
//! [`thread::scope`] with handle-returning [`thread::Scope::spawn`].
//! It is implemented directly over `std::thread::scope` (stabilised in
//! Rust 1.63), which gives the same structured-concurrency guarantee:
//! every spawned thread joins before `scope` returns, so borrows of stack
//! data are sound. Swapping back to the registry crate is a one-line
//! change in `[workspace.dependencies]`.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as std_thread;

    /// Re-export of the join result type (`Err` carries the panic payload).
    pub type Result<T> = std_thread::Result<T>;

    /// A scope handle: spawn threads that may borrow from the enclosing
    /// stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope again so it can spawn nested siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Create a scope for spawning borrowing threads. Mirrors
    /// `crossbeam::thread::scope`: the closure's panics (and panics of
    /// threads that were never joined) surface as `Err` instead of
    /// propagating.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std_thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 100);
        }

        #[test]
        fn nested_spawn_through_the_scope_argument() {
            let r = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(r, 7);
        }

        #[test]
        fn joined_panics_surface_as_err() {
            let r = super::scope(|s| {
                let h = s.spawn(|_| panic!("boom"));
                h.join()
            })
            .unwrap();
            assert!(r.is_err());
        }
    }
}
