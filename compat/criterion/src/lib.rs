//! Offline shim for `criterion`.
//!
//! The build container cannot reach a crate registry, so this in-tree
//! crate provides the slice of the criterion 0.5 API the workspace's bench
//! targets use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`black_box`],
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark
//! runs `sample_size` timed samples after one warm-up and prints the
//! median wall time — honest numbers, none of criterion's statistics.
//! Swapping back to the registry crate is a one-line change in
//! `[workspace.dependencies]`.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Opaque identifier for parameterised benchmarks.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Prevent the optimiser from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Per-iteration timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` once per sample; the routine's return value is
    /// black-boxed so its computation is not optimised away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            hint::black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &mut bencher.samples);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id.label, &mut bencher.samples);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &mut [f64]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
            return;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        println!(
            "{}/{id}: median {} (min {}, max {}, {} samples)",
            self.name,
            fmt_time(median),
            fmt_time(lo),
            fmt_time(hi),
            samples.len(),
        );
    }
}

/// Entry point handed to `criterion_group!` target functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(name).bench_function("bench", f);
        self
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundle benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_record_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_function("counting", |b| b.iter(|| runs += 1));
        // one warm-up + five samples
        assert_eq!(runs, 6);
        group.bench_with_input(BenchmarkId::new("with_input", 3), &4u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
