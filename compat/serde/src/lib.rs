//! Offline shim for `serde`.
//!
//! The build container cannot reach a crate registry, so this in-tree crate
//! satisfies the workspace's `serde` dependency. The workspace only uses
//! serde as *markers* (`#[derive(Serialize, Deserialize)]` on data types,
//! no serializer is ever invoked), so the traits are blanket-implemented
//! and the derives expand to nothing. Machine-readable export of flow
//! traces is hand-rolled in `psaflow_core::trace` instead. Restoring the
//! real serde is a one-line change in `[workspace.dependencies]`.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
