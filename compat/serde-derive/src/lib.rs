//! Offline shim for `serde_derive`.
//!
//! The build container has no access to crates.io, so the workspace ships
//! minimal in-tree stand-ins for its external dependencies (see
//! `crates/compat/`). Nothing in the workspace performs real serde
//! serialization — the derives are used as markers on data types — so the
//! derive macros here expand to nothing. Swapping the `serde` entry in
//! `[workspace.dependencies]` back to the registry restores the real
//! implementation without touching any other code.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
