//! Offline shim for `proptest`.
//!
//! The build container cannot reach a crate registry, so this in-tree
//! crate implements the slice of the proptest API the workspace's property
//! suites use: the [`Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, range and tuple strategies, [`Just`], `any::<bool>()`, the
//! [`prop_oneof!`] union, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros. Cases are generated from a deterministic
//! xorshift RNG (same inputs every run, seeded per test), assertions fail
//! via `panic!` like plain `assert!`, and there is no shrinking — a failing
//! case reports its generated values through the assertion message.
//! Swapping back to the registry crate is a one-line change in
//! `[workspace.dependencies]`.

pub mod test_runner {
    /// Runner configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        /// Run each property over `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic xorshift64* generator — every `cargo test` run sees
    /// the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            // Avoid the all-zero fixed point.
            TestRng { state: seed | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform index in `[0, n)`; `n` must be non-zero.
        pub fn next_index(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A reusable generator of values for property tests.
    pub trait Strategy {
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<W, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> W,
        {
            Map { inner: self, f }
        }

        /// Build recursive structures: `recurse` receives the strategy for
        /// the previous depth level and returns the one for the next. The
        /// `_desired_size` / `_expected_branch` hints are accepted for API
        /// compatibility and ignored; recursion is bounded by `depth`.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut current = self.boxed();
            for _ in 0..depth {
                current = recurse(current).boxed();
            }
            current
        }

        /// Type-erase (and make cheaply cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                sampler: Rc::new(move |rng| self.sample(rng)),
            }
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<V> {
        sampler: Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                sampler: Rc::clone(&self.sampler),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.sampler)(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `any::<T>()` support (only the types the suites request).
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(std::marker::PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.next_index(self.options.len());
            self.options[i].sample(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, W, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> W,
    {
        type Value = W;
        fn sample(&self, rng: &mut TestRng) -> W {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (S0 s0, S1 s1)
        (S0 s0, S1 s1, S2 s2)
        (S0 s0, S1 s1, S2 s2, S3 s3)
        (S0 s0, S1 s1, S2 s2, S3 s3, S4 s4)
        (S0 s0, S1 s1, S2 s2, S3 s3, S4 s4, S5 s5)
        (S0 s0, S1 s1, S2 s2, S3 s3, S4 s4, S5 s5, S6 s6)
        (S0 s0, S1 s1, S2 s2, S3 s3, S4 s4, S5 s5, S6 s6, S7 s7)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `proptest::collection::vec` — a vector whose length is drawn
    /// uniformly from `size` and whose elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a standard test that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            // Seed per test name so sibling properties draw distinct streams.
            let seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
                });
            let mut rng = $crate::test_runner::TestRng::new(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)*
                let run = || -> () { $body };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {}/{} failed with inputs: {}",
                        case + 1,
                        config.cases,
                        stringify!($($arg = $strat),*)
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let v = Strategy::sample(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let f = Strategy::sample(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn oneof_union_draws_every_arm() {
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::new(7);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(strat.sample(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..10).contains(v), "leaf drawn from the base range");
                    0
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                prop_oneof![
                    inner.clone(),
                    (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
                ]
            });
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            assert!(depth(&strat.sample(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_samples_arguments(a in 0i64..100, flip in any::<bool>()) {
            prop_assert!((0..100).contains(&a));
            prop_assert_eq!(flip as u8 <= 1, true);
        }
    }
}
