//! # psaflow — Auto-Generating Diverse Heterogeneous Designs
//!
//! A full Rust reproduction of *"Auto-Generating Diverse Heterogeneous
//! Designs"* (Vandebon, Coutinho, Luk — IPPS 2024): programmatic,
//! customizable, reusable **PSA-flows** that turn one technology-agnostic
//! high-level source into optimised multi-thread CPU (OpenMP), CPU+GPU
//! (HIP) and CPU+FPGA (oneAPI) designs, with branch points whose paths are
//! chosen by Path Selection Automation strategies.
//!
//! This crate is a facade re-exporting the whole workspace:
//!
//! | Crate | Role |
//! |-------|------|
//! | [`evalcache`] | content-addressed evaluation cache shared across flows |
//! | [`faults`] | deterministic fault-injection plans (robustness testing) |
//! | [`minicpp`] | the MiniC++ application language (lexer/parser/AST/printer) |
//! | [`interp`] | deterministic interpreter + profiling (dynamic analyses substrate) |
//! | [`artisan`] | meta-programming layer: query, instrument, transform |
//! | [`analyses`] | the target-independent analysis task repository |
//! | [`platform`] | simulated CPU/GPU/FPGA performance & resource models |
//! | [`codegen`] | OpenMP / HIP / oneAPI design generators |
//! | [`core`] | PSA-flows: tasks, branch points, strategies, DSE |
//! | [`benchsuite`] | the paper's five benchmarks |
//! | [`obs`] | metrics registry + Perfetto trace export (observability) |
//!
//! ## Quickstart
//!
//! ```
//! use psaflow::core::{full_psa_flow, FlowMode, PsaParams};
//!
//! let source = "int main() {
//!     int n = 64;
//!     double* a = alloc_double(n);
//!     double* b = alloc_double(n);
//!     fill_random(a, n, 7);
//!     for (int i = 0; i < n; i++) { b[i] = exp(a[i]) * sqrt(a[i] + 1.0); }
//!     sink(b[0]);
//!     return 0;
//! }";
//! let outcome = full_psa_flow(source, "demo", FlowMode::Informed, PsaParams::default())
//!     .expect("flow runs");
//! assert!(!outcome.designs.is_empty());
//! println!("selected: {:?}", outcome.selected_target);
//! ```

pub use psa_analyses as analyses;
pub use psa_artisan as artisan;
pub use psa_benchsuite as benchsuite;
pub use psa_codegen as codegen;
pub use psa_evalcache as evalcache;
pub use psa_faults as faults;
pub use psa_interp as interp;
pub use psa_minicpp as minicpp;
pub use psa_obs as obs;
pub use psa_platform as platform;
pub use psa_serve as serve;
pub use psaflow_core as core;

/// Crate version (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        let ast = crate::artisan::Ast::from_source("int main() { return 0; }", "t").unwrap();
        assert_eq!(ast.loc(), 3);
        assert_eq!(crate::benchsuite::all().len(), 5);
        assert!(!crate::VERSION.is_empty());
    }
}
