//! Fault-tolerance overhead benchmark: the full five-benchmark sweep under
//! each failure policy, with **no fault plan installed** — measuring what
//! the robustness machinery (policy dispatch, catch_unwind at every task
//! and path, seam probes, deadline checks) costs when nothing ever fails.
//!
//! Hand-timed harness (`harness = false`): each sample is a cold
//! `run_all_cached_on` with a fresh evaluation cache on the sequential
//! engine (single-threaded, so medians are not scheduler noise). Emits
//! machine-readable results to `BENCH_robustness.json` at the workspace
//! root; CI guards `max_overhead_pct <= 5`.
//!
//! Run with: `cargo bench -p psa-bench --bench robustness_overhead`

use psa_bench::run_all_cached_on;
use psaflow_core::{EvalCache, FailurePolicy, FlowEngine};
use std::sync::Arc;
use std::time::Instant;

const SAMPLES: usize = 5;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn time_policy(policy: FailurePolicy) -> f64 {
    let engine = FlowEngine::sequential().with_policy(policy);
    // Warmup (also validates the run).
    let rows = run_all_cached_on(engine, Arc::new(EvalCache::new())).expect("sweep runs");
    assert_eq!(rows.len(), 5, "all five benchmarks produce rows");
    assert!(
        rows.iter().all(|(_, o)| o.failures.is_empty()),
        "no fault plan is installed, so nothing may fail"
    );
    let samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            let r = run_all_cached_on(engine, Arc::new(EvalCache::new())).expect("sweep runs");
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(r.len(), rows.len(), "non-deterministic sweep");
            elapsed
        })
        .collect();
    median_ms(samples)
}

fn main() {
    let policies = [
        ("failfast", FailurePolicy::FailFast),
        ("degrade", FailurePolicy::DegradePaths),
        (
            "retry",
            FailurePolicy::parse("retry:3").expect("valid policy"),
        ),
    ];
    println!("{:<10} {:>12} {:>12}", "policy", "sweep ms", "overhead %");
    let mut rows = Vec::new();
    let mut baseline_ms = 0.0;
    for (name, policy) in policies {
        let ms = time_policy(policy);
        if rows.is_empty() {
            baseline_ms = ms;
        }
        let overhead_pct = (ms - baseline_ms) / baseline_ms * 100.0;
        println!("{name:<10} {ms:>12.3} {overhead_pct:>+12.2}");
        rows.push((name, ms, overhead_pct));
    }
    let max_overhead_pct = rows
        .iter()
        .map(|&(_, _, o)| o)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("max overhead vs failfast: {max_overhead_pct:+.2}%");

    // Machine-readable record (hand-formatted; the compat serde shim has no
    // serializer for ad-hoc structs and this keeps the schema explicit).
    let mut json = String::from("{\n  \"benchmark\": \"robustness_overhead\",\n");
    json.push_str(&format!(
        "  \"unit\": \"ms_median_of_{SAMPLES}_cold_sequential_sweeps\",\n  \"policies\": [\n"
    ));
    for (i, (name, ms, overhead_pct)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{name}\", \"sweep_ms\": {ms:.3}, \"overhead_pct\": {overhead_pct:.2}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"baseline_ms\": {baseline_ms:.3},\n  \"max_overhead_pct\": {max_overhead_pct:.2}\n}}\n"
    ));

    // Workspace root = two levels above this crate's manifest.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_robustness.json");
    std::fs::write(&path, json).expect("write BENCH_robustness.json");
    println!("wrote {path}");
}
