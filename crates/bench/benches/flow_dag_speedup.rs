//! DAG-scheduling benchmark: wall-clock of graph-shaped flows versus the
//! legacy chain shape. Emits `BENCH_dag.json` at the workspace root.
//!
//! Two measurements:
//!
//! 1. **Multi-device estimate fan-out** (the fig5/table1 shape): one
//!    preparation module feeding five per-device estimate modules and a
//!    collector. Each estimate performs a real profiled interpreter run
//!    plus a modeled device round-trip latency (an external-toolchain
//!    query, which blocks but does not compute). Chain-shaped, the five
//!    round-trips serialize; DAG-shaped they overlap, so the speedup holds
//!    even on a single-CPU host.
//! 2. **Full PSA-flow on every benchmark**: the chain form
//!    (`build_flow(...).graph()`, width 1) versus the native DAG form
//!    (`build_graph`), both on the default engine. This guards the other
//!    direction: graph scheduling must not make any real flow slower.
//!
//! Run with: `cargo bench -p psa-bench --bench flow_dag_speedup`

use psa_artisan::Ast;
use psaflow_core::context::{FlowContext, PsaParams};
use psaflow_core::flows::{build_flow, build_graph};
use psaflow_core::{
    DeviceKind, Flow, FlowEngine, FlowError, FlowGraph, FlowMode, GraphBuilder, Module, ModuleInfo,
    TaskClass,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SAMPLES: usize = 5;
/// Modeled device/toolchain round-trip per estimate (blocking, not CPU).
const DEVICE_LATENCY_MS: u64 = 20;

/// A small compute kernel the estimate modules actually execute.
const ESTIMATE_SRC: &str = "int main() {\
    int n = 64;\
    double* a = alloc_double(n);\
    fill_random(a, n, 3);\
    double s = 0.0;\
    for (int i = 0; i < n; i++) { s = s + a[i] * 1.5; }\
    sink(s);\
    return 0;\
}";

struct Prep;
impl Module for Prep {
    fn info(&self) -> ModuleInfo {
        ModuleInfo::new("Prepare Estimates", TaskClass::Analysis, false)
    }
    fn run(&self, ctx: &mut FlowContext) -> Result<(), FlowError> {
        ctx.log("preparing device estimates");
        Ok(())
    }
}

/// One per-device platform estimate: a profiled run of the kernel (real
/// CPU work) plus the modeled round-trip to the device's toolchain.
struct EstimateOnDevice {
    device: DeviceKind,
    module: Arc<psa_minicpp::Module>,
}
impl Module for EstimateOnDevice {
    fn info(&self) -> ModuleInfo {
        ModuleInfo::new("Estimate On Device", TaskClass::Analysis, true)
    }
    fn run(&self, ctx: &mut FlowContext) -> Result<(), FlowError> {
        let run = psa_interp::run_main_profiled(&self.module, psa_interp::RunConfig::default())
            .map_err(|e| FlowError::analysis(format!("estimate run failed: {e}")))?;
        std::thread::sleep(Duration::from_millis(DEVICE_LATENCY_MS));
        ctx.log(format!(
            "estimated {:?}: {} cycles",
            self.device, run.profile.total_cycles
        ));
        Ok(())
    }
}

struct Collect;
impl Module for Collect {
    fn info(&self) -> ModuleInfo {
        ModuleInfo::new("Collect Estimates", TaskClass::Analysis, false)
    }
    fn run(&self, ctx: &mut FlowContext) -> Result<(), FlowError> {
        ctx.log("collected device estimates");
        Ok(())
    }
}

const DEVICES: [DeviceKind; 5] = [
    DeviceKind::Epyc7543,
    DeviceKind::Gtx1080Ti,
    DeviceKind::Rtx2080Ti,
    DeviceKind::Arria10,
    DeviceKind::Stratix10,
];

fn estimate_kernel() -> Arc<psa_minicpp::Module> {
    Arc::new(psa_minicpp::parse_module(ESTIMATE_SRC, "estimate").expect("kernel parses"))
}

/// The fan-out shape as a chain: estimates run one after another.
fn fanout_chain() -> FlowGraph {
    let kernel = estimate_kernel();
    let mut flow = Flow::new("estimates").then(Prep);
    for device in DEVICES {
        flow = flow.then(EstimateOnDevice {
            device,
            module: Arc::clone(&kernel),
        });
    }
    flow.then(Collect).graph()
}

/// The same modules as a DAG: all five estimates depend only on `Prep`.
fn fanout_graph() -> FlowGraph {
    let kernel = estimate_kernel();
    let mut b = GraphBuilder::new("estimates");
    let prep = b.add(Prep);
    let estimates: Vec<_> = DEVICES
        .iter()
        .map(|&device| {
            b.add_after(
                EstimateOnDevice {
                    device,
                    module: Arc::clone(&kernel),
                },
                &[prep],
            )
        })
        .collect();
    b.add_after(Collect, &estimates);
    b.finish().expect("fan-out graph validates")
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn time_graph(engine: FlowEngine, graph: &FlowGraph) -> f64 {
    let ctx = || {
        FlowContext::new(
            Ast::from_source("int main() { return 0; }", "t").unwrap(),
            PsaParams::default(),
        )
    };
    // Warmup (also validates the run).
    engine.execute_graph(graph, &mut ctx()).expect("flow runs");
    let samples = (0..SAMPLES)
        .map(|_| {
            let mut c = ctx();
            let start = Instant::now();
            engine.execute_graph(graph, &mut c).expect("flow runs");
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    median_ms(samples)
}

struct AppRow {
    key: String,
    chain_ms: f64,
    dag_ms: f64,
}

fn time_full_flow(bench: &psa_benchsuite::Benchmark, graph: &FlowGraph) -> f64 {
    let params = PsaParams {
        sp_safe: bench.sp_safe,
        scale: psaflow_core::context::psa_benchsuite_shim::ScaleFactors {
            compute: bench.scale.compute,
            data: bench.scale.data,
            threads: bench.scale.threads,
        },
        ..PsaParams::default()
    };
    let ctx = || {
        FlowContext::new(
            Ast::from_source(&bench.source, &bench.key).expect("benchmark parses"),
            params.clone(),
        )
    };
    let engine = FlowEngine::parallel();
    engine.execute_graph(graph, &mut ctx()).expect("flow runs");
    let samples = (0..SAMPLES)
        .map(|_| {
            let mut c = ctx();
            let start = Instant::now();
            engine.execute_graph(graph, &mut c).expect("flow runs");
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    median_ms(samples)
}

fn main() {
    // Fan-out: chain runs the five round-trips back to back; the DAG
    // overlaps them (workers pinned so the overlap is exercised even where
    // `available_parallelism` is 1 — the latency is blocking, not CPU).
    let chain_ms = time_graph(FlowEngine::parallel(), &fanout_chain());
    let dag_ms = time_graph(
        FlowEngine::parallel().with_workers(DEVICES.len()),
        &fanout_graph(),
    );
    let fanout_speedup = chain_ms / dag_ms;
    println!(
        "{:<22} {:>12} {:>12} {:>9}",
        "shape", "chain ms", "dag ms", "speedup"
    );
    println!(
        "{:<22} {:>12.3} {:>12.3} {:>8.2}x",
        "estimate fan-out", chain_ms, dag_ms, fanout_speedup
    );

    // Full flows: the DAG form must not be slower than the chain form.
    let mut apps = Vec::new();
    for bench in psa_benchsuite::all() {
        let chain = build_flow(FlowMode::Uninformed).graph();
        let dag = build_graph(FlowMode::Uninformed);
        let chain_ms = time_full_flow(&bench, &chain);
        let dag_ms = time_full_flow(&bench, &dag);
        println!(
            "{:<22} {:>12.3} {:>12.3} {:>8.2}x",
            bench.key,
            chain_ms,
            dag_ms,
            chain_ms / dag_ms
        );
        apps.push(AppRow {
            key: bench.key.clone(),
            chain_ms,
            dag_ms,
        });
    }
    let max_full_ratio = apps
        .iter()
        .map(|r| r.dag_ms / r.chain_ms)
        .fold(0.0f64, f64::max);

    // Machine-readable record (hand-formatted; the compat serde shim has no
    // serializer for ad-hoc structs and this keeps the schema explicit).
    let mut json = String::from("{\n  \"benchmark\": \"flow_dag_speedup\",\n");
    json.push_str(&format!(
        "  \"unit\": \"ms_median_of_{SAMPLES}_runs\",\n  \"device_latency_ms\": {DEVICE_LATENCY_MS},\n"
    ));
    json.push_str(&format!(
        "  \"fanout\": {{\"chain_ms\": {chain_ms:.3}, \"dag_ms\": {dag_ms:.3}, \"speedup\": {fanout_speedup:.2}}},\n"
    ));
    json.push_str(&format!(
        "  \"min_fanout_speedup\": {fanout_speedup:.2},\n  \"apps\": [\n"
    ));
    for (i, r) in apps.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"key\": \"{}\", \"chain_ms\": {:.3}, \"dag_ms\": {:.3}, \"ratio\": {:.3}}}{}\n",
            r.key,
            r.chain_ms,
            r.dag_ms,
            r.dag_ms / r.chain_ms,
            if i + 1 < apps.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"max_full_ratio\": {max_full_ratio:.3}\n}}\n"
    ));

    // Workspace root = two levels above this crate's manifest.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_dag.json");
    std::fs::write(&path, json).expect("write BENCH_dag.json");
    println!("wrote {path}");
}
