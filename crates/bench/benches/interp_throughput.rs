//! Interpreter-throughput benchmark: profiled execution of all five
//! benchsuite applications under both engines (tree walker vs bytecode VM).
//!
//! Hand-timed harness (`harness = false`) rather than criterion: each
//! sample is a full cold `run_main_profiled` (compile + execute for the
//! VM, so its bytecode compilation cost is *included* — the speedup
//! numbers are end-to-end, not warm-VM flattery). Emits machine-readable
//! results to `BENCH_interp.json` at the workspace root.
//!
//! Run with: `cargo bench -p psa-bench --bench interp_throughput`

use psa_interp::{Engine, RunConfig};
use psa_minicpp::parse_module;
use std::time::Instant;

const SAMPLES: usize = 7;

struct Row {
    key: String,
    cycles: u64,
    tree_ms: f64,
    vm_ms: f64,
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn time_engine(module: &psa_minicpp::Module, engine: Engine) -> (f64, u64) {
    let config = || RunConfig {
        engine,
        ..RunConfig::default()
    };
    // Warmup (also validates the run).
    let run = psa_interp::run_main_profiled(module, config()).expect("benchmark runs");
    let cycles = run.profile.total_cycles;
    let samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            let r = psa_interp::run_main_profiled(module, config()).expect("benchmark runs");
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(r.profile.total_cycles, cycles, "non-deterministic run");
            elapsed
        })
        .collect();
    (median_ms(samples), cycles)
}

fn main() {
    let mut rows = Vec::new();
    println!(
        "{:<14} {:>14} {:>12} {:>12} {:>9}",
        "benchmark", "virtual cycles", "tree ms", "vm ms", "speedup"
    );
    for bench in psa_benchsuite::all() {
        let module = parse_module(&bench.source, &bench.key).expect("parses");
        let (tree_ms, tree_cycles) = time_engine(&module, Engine::Tree);
        let (vm_ms, vm_cycles) = time_engine(&module, Engine::Vm);
        assert_eq!(tree_cycles, vm_cycles, "{}: engines diverged", bench.key);
        println!(
            "{:<14} {:>14} {:>12.3} {:>12.3} {:>8.2}x",
            bench.key,
            tree_cycles,
            tree_ms,
            vm_ms,
            tree_ms / vm_ms
        );
        rows.push(Row {
            key: bench.key.clone(),
            cycles: tree_cycles,
            tree_ms,
            vm_ms,
        });
    }

    let total_tree: f64 = rows.iter().map(|r| r.tree_ms).sum();
    let total_vm: f64 = rows.iter().map(|r| r.vm_ms).sum();
    let geomean: f64 =
        (rows.iter().map(|r| (r.tree_ms / r.vm_ms).ln()).sum::<f64>() / rows.len() as f64).exp();
    println!(
        "{:<14} {:>14} {:>12.3} {:>12.3} {:>8.2}x  (geomean {:.2}x)",
        "total",
        "",
        total_tree,
        total_vm,
        total_tree / total_vm,
        geomean
    );

    // Machine-readable record (hand-formatted; the compat serde shim has no
    // serializer for ad-hoc structs and this keeps the schema explicit).
    let mut json = String::from("{\n  \"benchmark\": \"interp_throughput\",\n");
    json.push_str("  \"unit\": \"ms_median_of_7_cold_runs\",\n  \"apps\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"key\": \"{}\", \"virtual_cycles\": {}, \"tree_ms\": {:.3}, \"vm_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.key,
            r.cycles,
            r.tree_ms,
            r.vm_ms,
            r.tree_ms / r.vm_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"total_tree_ms\": {:.3},\n  \"total_vm_ms\": {:.3},\n  \"total_speedup\": {:.2},\n  \"geomean_speedup\": {:.2}\n}}\n",
        total_tree,
        total_vm,
        total_tree / total_vm,
        geomean
    ));

    // Workspace root = two levels above this crate's manifest.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_interp.json");
    std::fs::write(&path, json).expect("write BENCH_interp.json");
    println!("wrote {path}");
}
