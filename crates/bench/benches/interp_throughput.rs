//! Interpreter-throughput benchmark: profiled execution of all five
//! benchsuite applications under both engines (tree walker vs bytecode VM).
//!
//! Hand-timed harness (`harness = false`) rather than criterion: each
//! sample is one full profiled execution. The VM compiles each app once
//! and reuses the [`psa_interp::Program`] across samples — steady-state
//! throughput, which is what design-space exploration actually pays: every
//! description is executed many times (per configuration, per analysis)
//! against a single compilation.
//!
//! Tree and VM samples are interleaved (one of each per round) so machine
//! contention lands on both engines alike, and each engine reports its
//! *minimum* over the rounds: execution is deterministic, so the true cost
//! is a constant and all timing noise is additive — the minimum is the
//! robust estimator of that constant. Emits machine-readable results to
//! `BENCH_interp.json` at the workspace root.
//!
//! Run with: `cargo bench -p psa-bench --bench interp_throughput`

use psa_interp::{Engine, Program, RunConfig, Vm};
use psa_minicpp::parse_module;
use std::sync::Arc;
use std::time::Instant;

const SAMPLES: usize = 15;

struct Row {
    key: String,
    cycles: u64,
    tree_ms: f64,
    vm_ms: f64,
    /// Fraction of VM dispatches that took a type-specialised route
    /// (typed opcodes + deferred-loop iteration credit) in one run.
    spec_fraction: f64,
    dispatches: u64,
    spec_dispatches: u64,
}

fn config(engine: Engine) -> RunConfig {
    RunConfig {
        engine,
        ..RunConfig::default()
    }
}

/// Interleaved min-of-`SAMPLES` timing of both engines on one module.
/// Returns `(tree_ms, vm_ms, virtual_cycles, dispatches, spec_dispatches)`.
fn time_engines(module: &psa_minicpp::Module) -> (f64, f64, u64, u64, u64) {
    let program = Arc::new(Program::compile(module, &config(Engine::Vm)));

    // Warmups (also validate the runs and cross-check the engines and the
    // one-shot vs compile-once VM paths against each other). The metered
    // warmup run also yields the dispatch-class counts (deterministic, so
    // one run is exact).
    let tree = psa_interp::run_main_profiled(module, config(Engine::Tree)).expect("benchmark runs");
    let cycles = tree.profile.total_cycles;
    let mut vm = Vm::with_program(Arc::clone(&program), config(Engine::Vm));
    vm.run_main().expect("benchmark runs");
    assert_eq!(vm.profile().total_cycles, cycles, "engines diverged");
    let (dispatches, spec_dispatches) = (vm.dispatches(), vm.specialized_dispatches());
    let one_shot =
        psa_interp::run_main_profiled(module, config(Engine::Vm)).expect("benchmark runs");
    assert_eq!(
        one_shot.profile.total_cycles, cycles,
        "compile paths diverged"
    );

    let mut tree_min = f64::INFINITY;
    let mut vm_min = f64::INFINITY;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let r =
            psa_interp::run_main_profiled(module, config(Engine::Tree)).expect("benchmark runs");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r.profile.total_cycles, cycles, "non-deterministic run");
        tree_min = tree_min.min(elapsed);

        let start = Instant::now();
        let r = psa_interp::run_compiled(&program, config(Engine::Vm)).expect("benchmark runs");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r.profile.total_cycles, cycles, "non-deterministic run");
        vm_min = vm_min.min(elapsed);
    }
    (tree_min, vm_min, cycles, dispatches, spec_dispatches)
}

fn main() {
    let mut rows = Vec::new();
    println!(
        "{:<14} {:>14} {:>12} {:>12} {:>9} {:>11}",
        "benchmark", "virtual cycles", "tree ms", "vm ms", "speedup", "spec disp"
    );
    for bench in psa_benchsuite::all() {
        let module = parse_module(&bench.source, &bench.key).expect("parses");
        let (tree_ms, vm_ms, cycles, dispatches, spec_dispatches) = time_engines(&module);
        let spec_fraction = spec_dispatches as f64 / dispatches.max(1) as f64;
        println!(
            "{:<14} {:>14} {:>12.3} {:>12.3} {:>8.2}x {:>10.1}%",
            bench.key,
            cycles,
            tree_ms,
            vm_ms,
            tree_ms / vm_ms,
            spec_fraction * 100.0
        );
        rows.push(Row {
            key: bench.key.clone(),
            cycles,
            tree_ms,
            vm_ms,
            spec_fraction,
            dispatches,
            spec_dispatches,
        });
    }

    let total_tree: f64 = rows.iter().map(|r| r.tree_ms).sum();
    let total_vm: f64 = rows.iter().map(|r| r.vm_ms).sum();
    let geomean: f64 =
        (rows.iter().map(|r| (r.tree_ms / r.vm_ms).ln()).sum::<f64>() / rows.len() as f64).exp();
    println!(
        "{:<14} {:>14} {:>12.3} {:>12.3} {:>8.2}x  (geomean {:.2}x)",
        "total",
        "",
        total_tree,
        total_vm,
        total_tree / total_vm,
        geomean
    );

    // Machine-readable record (hand-formatted; the compat serde shim has no
    // serializer for ad-hoc structs and this keeps the schema explicit).
    let mut json = String::from("{\n  \"benchmark\": \"interp_throughput\",\n");
    json.push_str("  \"unit\": \"ms_min_of_15_interleaved_steady_state_runs\",\n  \"apps\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"key\": \"{}\", \"virtual_cycles\": {}, \"tree_ms\": {:.3}, \"vm_ms\": {:.3}, \"speedup\": {:.2}, \"specialized_dispatch_fraction\": {:.4}}}{}\n",
            r.key,
            r.cycles,
            r.tree_ms,
            r.vm_ms,
            r.tree_ms / r.vm_ms,
            r.spec_fraction,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let total_dispatches: u64 = rows.iter().map(|r| r.dispatches).sum();
    let total_spec: u64 = rows.iter().map(|r| r.spec_dispatches).sum();
    json.push_str(&format!(
        "  ],\n  \"total_tree_ms\": {:.3},\n  \"total_vm_ms\": {:.3},\n  \"total_speedup\": {:.2},\n  \"geomean_speedup\": {:.2},\n  \"specialized_dispatch_fraction\": {:.4}\n}}\n",
        total_tree,
        total_vm,
        total_tree / total_vm,
        geomean,
        total_spec as f64 / total_dispatches.max(1) as f64
    ));

    // Workspace root = two levels above this crate's manifest.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_interp.json");
    std::fs::write(&path, json).expect("write BENCH_interp.json");
    println!("wrote {path}");
}
