//! psa-serve throughput benchmark: a live (unpaused) daemon absorbing a
//! seeded no-fault, no-deadline job stream from three tenants, measured
//! wall-clock from first submission to the last result.
//!
//! Hand-timed harness (`harness = false`): throughput is jobs/s over the
//! whole session; latency quantiles come from the service's own
//! `psa_serve_exec_ms` histogram (psa-obs log₂ buckets). Emits
//! machine-readable results to `BENCH_serve.json` at the workspace root;
//! CI guards a conservative throughput floor.
//!
//! Run with: `cargo bench -p psa-bench --bench serve_throughput`

use psa_serve::loadgen::{generate, LoadConfig};
use psa_serve::{JobStatus, Request, Response, Server, ServerConfig, TenantPolicy};
use std::time::Instant;

const JOBS: usize = 300;
const WORKERS: usize = 4;

fn main() {
    psa_obs::set_enabled(true);

    // No faults, no tight deadlines: every accepted job should succeed,
    // so the number measures the service machinery plus the flows.
    let requests = generate(&LoadConfig {
        seed: 11,
        jobs: JOBS,
        tenants: vec!["alpha".into(), "bravo".into(), "charlie".into()],
        arrive_step_ms: 1,
        deadline_frac: 0.0,
        fault_frac: 0.0,
    });
    // Admission opened wide: this benchmark measures execution, not
    // rate-limit shedding.
    let server = Server::new(ServerConfig {
        workers: WORKERS,
        queue_capacity: JOBS,
        default_policy: TenantPolicy {
            rate_per_sec: 1e9,
            burst: 1e9,
            max_in_flight: JOBS,
        },
        ..ServerConfig::default()
    });

    let start = Instant::now();
    let mut accepted = 0usize;
    for req in &requests {
        match server.handle_request(req).remove(0) {
            Response::Accepted { .. } => accepted += 1,
            other => panic!("benchmark stream must admit cleanly, got {other:?}"),
        }
    }
    let results = server.handle_request(&Request::Wait);
    let elapsed_s = start.elapsed().as_secs_f64();

    assert_eq!(accepted, JOBS, "every generated job admitted");
    let done = results
        .iter()
        .filter(|r| matches!(r, Response::Result(r) if r.status == JobStatus::Done))
        .count();
    assert_eq!(done, JOBS, "no faults, no deadlines: every job succeeds");
    match server.handle_request(&Request::Drain).remove(0) {
        Response::Drained { completed, .. } => assert_eq!(completed as usize, JOBS),
        other => panic!("drain must ack, got {other:?}"),
    }

    let throughput = JOBS as f64 / elapsed_s;
    let exec = psa_obs::global().histogram("psa_serve_exec_ms", &[]);
    let p50 = exec.quantile(0.50).unwrap_or(0.0);
    let p99 = exec.quantile(0.99).unwrap_or(0.0);
    println!(
        "{JOBS} jobs on {WORKERS} workers in {elapsed_s:.3} s = {throughput:.1} jobs/s \
         (exec p50 {p50:.1} ms, p99 {p99:.1} ms)"
    );

    // Machine-readable record (hand-formatted; the compat serde shim has no
    // serializer for ad-hoc structs and this keeps the schema explicit).
    let json = format!(
        "{{\n  \"benchmark\": \"serve_throughput\",\n  \"jobs\": {JOBS},\n  \
         \"workers\": {WORKERS},\n  \"elapsed_s\": {elapsed_s:.3},\n  \
         \"throughput_jobs_per_s\": {throughput:.1},\n  \
         \"exec_ms_p50\": {p50:.1},\n  \"exec_ms_p99\": {p99:.1}\n}}\n"
    );
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_serve.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("serve_throughput: failed to write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}
