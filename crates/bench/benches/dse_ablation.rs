//! Criterion bench: ablations over the DSE design choices DESIGN.md calls
//! out.
//!
//! * `unroll_until_overmap` doubling vs an exhaustive linear sweep — the
//!   paper's doubling schedule converges in O(log U) partial compiles;
//! * pragma-annotation vs source-flattening for fixed-loop unrolling — the
//!   LOC-neutral choice the FPGA path uses vs the structural transform;
//! * blocksize DSE: the power-of-two sweep vs a dense warp-multiple sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use psa_minicpp::parse_module;
use psa_platform::{arria10, rtx_2080_ti, FpgaModel, GpuModel, KernelWork, OpCounts};

fn flat_work() -> KernelWork {
    KernelWork {
        flops_fma: 5e9,
        flops_sfu: 1e9,
        cycles_1t: 40e9,
        bytes_mem: 2e8,
        bytes_in: 1e7,
        bytes_out: 1e7,
        threads: 1e6,
        pipeline_iters: 1e6,
        fp64: false,
        regs_per_thread: 64,
        flat_pipeline: true,
        ops: OpCounts {
            fp_add: 24.0,
            fp_mul: 18.0,
            transcendental: 2.0,
            mem_ops: 9.0,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn bench_unroll_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("unroll_dse_schedule");
    let model = FpgaModel::new(arria10());
    let w = flat_work();

    // The paper's doubling DSE.
    group.bench_function("doubling", |b| {
        let src =
            "void knl(double* a, int n) { for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; } }";
        let cache = psaflow_core::EvalCache::disabled();
        b.iter(|| {
            let mut m = parse_module(src, "t").unwrap();
            psaflow_core::dse::unroll_until_overmap(&mut m, "knl", &model, &w, &cache).unwrap()
        })
    });

    // Ablation: exhaustive linear sweep to the same answer.
    group.bench_function("linear_sweep", |b| {
        b.iter(|| {
            let mut best = 1u64;
            for u in 1..=512u64 {
                if model.hls_report(&w.ops, w.fp64, u).overmapped {
                    break;
                }
                best = u;
            }
            best
        })
    });
    group.finish();
}

fn bench_unroll_representation(c: &mut Criterion) {
    // Pragma annotation vs source-level flattening of a fixed inner loop.
    let src = "void knl(double* out, double* w, int n) {\
                 for (int i = 0; i < n; i++) {\
                   double acc = 0.0;\
                   for (int f = 0; f < 16; f++) { acc += w[f] * 0.5; }\
                   out[i] = acc;\
                 }\
               }\
               int main() { double* w = alloc_double(16); double* out = alloc_double(8); knl(out, w, 8); return 0; }";
    let mut group = c.benchmark_group("fixed_loop_unrolling");

    group.bench_function("pragma_annotation", |b| {
        b.iter(|| {
            let mut m = parse_module(src, "t").unwrap();
            let target = psa_artisan::query::loops(&m, |l| l.depth == 1)[0].stmt_id;
            psa_artisan::edit::add_pragma(&mut m, target, "unroll").unwrap();
            psa_minicpp::print_module(&m).len()
        })
    });

    group.bench_function("source_flattening", |b| {
        b.iter(|| {
            let mut m = parse_module(src, "t").unwrap();
            let target = psa_artisan::query::loops(&m, |l| l.depth == 1)[0].stmt_id;
            psa_artisan::transforms::unroll::fully_unroll(&mut m, target).unwrap();
            psa_minicpp::print_module(&m).len()
        })
    });
    group.finish();

    // Report the LOC consequence once (the ablation's payload).
    let loc = |flatten: bool| {
        let mut m = parse_module(src, "t").unwrap();
        let target = psa_artisan::query::loops(&m, |l| l.depth == 1)[0].stmt_id;
        if flatten {
            psa_artisan::transforms::unroll::fully_unroll(&mut m, target).unwrap();
        } else {
            psa_artisan::edit::add_pragma(&mut m, target, "unroll").unwrap();
        }
        psa_minicpp::print_module(&m)
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    };
    println!(
        "\n[ablation] fixed-loop unrolling LOC: pragma = {}, flattened = {}",
        loc(false),
        loc(true)
    );
}

fn bench_blocksize_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocksize_dse_sweep");
    let model = GpuModel::new(rtx_2080_ti());
    let w = flat_work();

    group.bench_function("pow2_candidates", |b| {
        let cache = psaflow_core::EvalCache::disabled();
        b.iter(|| psaflow_core::dse::blocksize_dse(&model, &w, true, &cache).unwrap())
    });

    group.bench_function("dense_warp_multiples", |b| {
        b.iter(|| {
            let mut best = (0u32, f64::INFINITY);
            for bsize in (32..=1024).step_by(32) {
                let t = model.total_time(&w, bsize, true);
                if t < best.1 {
                    best = (bsize, t);
                }
            }
            best
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_unroll_schedules,
    bench_unroll_representation,
    bench_blocksize_sweeps
);
criterion_main!(benches);
