//! Flight-recorder overhead benchmark: the full five-benchmark sweep with
//! the recorder off (one relaxed atomic load per instrumentation site)
//! versus armed (span stack, ring journaling, span table) — measuring what
//! `--recorder-dump=` costs while no dump is ever written.
//!
//! Hand-timed harness (`harness = false`): each sample is a cold
//! `run_all_cached_on` with a fresh evaluation cache on the sequential
//! engine (single-threaded, so medians are not scheduler noise). Emits
//! machine-readable results to `BENCH_obs.json` at the workspace root; CI
//! guards `overhead_pct <= 5`.
//!
//! Run with: `cargo bench -p psa-bench --bench obs_overhead`

use psa_bench::run_all_cached_on;
use psaflow_core::{EvalCache, FlowEngine};
use std::sync::Arc;
use std::time::Instant;

const SAMPLES: usize = 15;

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// One cold sweep per repetition; a sample aggregates [`SWEEPS`] of them
/// so single-sweep jitter (±15% on a busy box) averages down before the
/// pair ratio is taken.
const SWEEPS: usize = 3;

fn one_sweep(engine: FlowEngine) -> f64 {
    psa_obs::recorder::reset();
    let start = Instant::now();
    let r = run_all_cached_on(engine, Arc::new(EvalCache::new())).expect("sweep runs");
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(r.len(), 5, "all five benchmarks produce rows");
    elapsed
}

fn one_sample(engine: FlowEngine) -> f64 {
    (0..SWEEPS).map(|_| one_sweep(engine)).sum::<f64>() / SWEEPS as f64
}

fn main() {
    let engine = FlowEngine::sequential();
    // Warmup both legs (also validates the runs).
    psa_obs::recorder::set_enabled(false);
    one_sweep(engine);
    psa_obs::recorder::set_enabled(true);
    one_sweep(engine);

    // Machine load on a shared box drifts on timescales far longer than
    // one ~80 ms sweep, so absolute medians (or even minima) of separately
    // run legs swing by ±10%. Two *adjacent* sweeps, however, see the same
    // load — so the overhead is estimated as the median of per-pair
    // on/off ratios, with the in-pair order alternating to cancel any
    // systematic first/second-run effect.
    let mut off = Vec::with_capacity(SAMPLES);
    let mut on = Vec::with_capacity(SAMPLES);
    let mut pair_pct = Vec::with_capacity(SAMPLES);
    for i in 0..SAMPLES {
        let (o, r) = if i % 2 == 0 {
            psa_obs::recorder::set_enabled(false);
            let o = one_sample(engine);
            psa_obs::recorder::set_enabled(true);
            (o, one_sample(engine))
        } else {
            psa_obs::recorder::set_enabled(true);
            let r = one_sample(engine);
            psa_obs::recorder::set_enabled(false);
            (one_sample(engine), r)
        };
        off.push(o);
        on.push(r);
        pair_pct.push((r / o - 1.0) * 100.0);
        if std::env::var_os("OBS_BENCH_VERBOSE").is_some() {
            eprintln!("pair {i}: off {o:.3} on {r:.3} -> {:+.2}%", pair_pct[i]);
        }
    }
    // Events journaled by the last recorded sweep (ring residue + evicted).
    let snapshot = psa_obs::recorder::snapshot();
    let events_recorded: u64 = snapshot
        .workers
        .iter()
        .map(|w| w.dropped + w.events.len() as u64)
        .sum();
    psa_obs::recorder::set_enabled(false);

    let baseline_ms = median(off);
    let recorder_ms = median(on);
    let overhead_pct = median(pair_pct);
    println!("{:<10} {:>12} {:>12}", "recorder", "sweep ms", "overhead %");
    println!("{:<10} {baseline_ms:>12.3} {:>+12.2}", "off", 0.0);
    println!("{:<10} {recorder_ms:>12.3} {overhead_pct:>+12.2}", "on");
    println!("events recorded per sweep: {events_recorded}");

    // Machine-readable record (hand-formatted; the compat serde shim has no
    // serializer for ad-hoc structs and this keeps the schema explicit).
    let json = format!(
        "{{\n  \"benchmark\": \"obs_overhead\",\n  \
         \"unit\": \"median_pct_of_{SAMPLES}_paired_cold_sequential_sweeps\",\n  \
         \"baseline_ms\": {baseline_ms:.3},\n  \
         \"recorder_ms\": {recorder_ms:.3},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \
         \"events_recorded\": {events_recorded}\n}}\n"
    );

    // Workspace root = two levels above this crate's manifest.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_obs.json");
    std::fs::write(&path, json).expect("write BENCH_obs.json");
    println!("wrote {path}");
}
