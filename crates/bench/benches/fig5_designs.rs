//! Criterion bench: end-to-end PSA-flow runtime per benchmark and mode —
//! the cost of *regenerating Fig. 5's designs* from scratch (parse →
//! dynamic analyses → strategy → transforms → DSE → codegen).
//!
//! Reduced-size analysis workloads keep each iteration sub-second; the
//! design decisions are workload-size-invariant for these apps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psaflow_core::context::psa_benchsuite_shim::ScaleFactors;
use psaflow_core::{full_psa_flow, FlowMode, PsaParams};

/// Small-workload variants of the five benchmarks (same structure, faster
/// dynamic analyses).
fn small_suite() -> Vec<(&'static str, String, bool)> {
    vec![
        ("rushlarsen", psa_benchsuite::rushlarsen::source(48), false),
        ("nbody", psa_benchsuite::nbody::source(48), true),
        ("bezier", psa_benchsuite::bezier::source(10), true),
        (
            "adpredictor",
            psa_benchsuite::adpredictor::source(128),
            true,
        ),
        ("kmeans", psa_benchsuite::kmeans::source(256), true),
    ]
}

fn params(sp_safe: bool) -> PsaParams {
    PsaParams {
        sp_safe,
        scale: ScaleFactors {
            compute: 1000.0,
            data: 1000.0,
            threads: 1000.0,
        },
        ..PsaParams::default()
    }
}

fn bench_flows(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_full_flow");
    group.sample_size(10);
    for (key, source, sp_safe) in small_suite() {
        group.bench_with_input(BenchmarkId::new("informed", key), &source, |b, src| {
            b.iter(|| full_psa_flow(src, key, FlowMode::Informed, params(sp_safe)).expect("runs"))
        });
        group.bench_with_input(BenchmarkId::new("uninformed", key), &source, |b, src| {
            b.iter(|| full_psa_flow(src, key, FlowMode::Uninformed, params(sp_safe)).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flows);
criterion_main!(benches);
