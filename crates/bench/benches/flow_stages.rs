//! Criterion bench: per-stage costs of the design-flow pipeline — where
//! does flow time go? (parse, hotspot detection, kernel analyses,
//! transforms, code generation, platform models).

use criterion::{criterion_group, criterion_main, Criterion};
use psa_minicpp::parse_module;

fn app() -> String {
    psa_benchsuite::nbody::source(64)
}

fn extracted_module() -> psa_minicpp::Module {
    let mut m = parse_module(&app(), "nbody").unwrap();
    psa_analyses::hotspot::detect_and_extract(&mut m, "knl").unwrap();
    m
}

fn bench_stages(c: &mut Criterion) {
    let source = app();
    let mut group = c.benchmark_group("flow_stages");
    group.sample_size(20);

    group.bench_function("parse", |b| {
        b.iter(|| parse_module(&source, "nbody").unwrap())
    });

    let parsed = parse_module(&source, "nbody").unwrap();
    group.bench_function("print", |b| b.iter(|| psa_minicpp::print_module(&parsed)));

    group.bench_function("hotspot_detection", |b| {
        b.iter(|| psa_analyses::hotspot::detect_hotspots(&parsed).unwrap())
    });

    let module = extracted_module();
    group.bench_function("kernel_analyses", |b| {
        b.iter(|| psa_analyses::analyze_kernel(&module, "knl").unwrap())
    });

    group.bench_function("static_intensity_only", |b| {
        b.iter(|| psa_analyses::intensity::analyze(&module, "knl").unwrap())
    });

    group.bench_function("dependence_only", |b| {
        b.iter(|| psa_analyses::deps::analyze(&module, "knl").unwrap())
    });

    group.bench_function("op_counts_and_registers", |b| {
        b.iter(|| {
            let ops = psa_platform::resources::op_counts(&module, "knl").unwrap();
            let regs = psa_platform::resources::estimate_registers(&module, "knl").unwrap();
            (ops, regs)
        })
    });

    group.bench_function("sp_transforms", |b| {
        b.iter(|| {
            let mut m = module.clone();
            psa_artisan::transforms::precision::employ_sp_math(&mut m, "knl").unwrap();
            psa_artisan::transforms::precision::employ_sp_literals(&mut m, "knl").unwrap();
            m
        })
    });

    group.bench_function("hip_codegen", |b| {
        let config = psa_codegen::hip::HipConfig {
            device: "GeForce RTX 2080 Ti".into(),
            blocksize: 256,
            pinned: true,
            shared_mem_arrays: vec!["px".into(), "py".into(), "pz".into(), "mass".into()],
        };
        b.iter(|| psa_codegen::hip::generate(&module, "knl", &config).unwrap())
    });

    group.bench_function("oneapi_codegen", |b| {
        let config = psa_codegen::oneapi::OneApiConfig {
            device: "PAC Stratix10".into(),
            unroll: 4,
            zero_copy: true,
        };
        b.iter(|| psa_codegen::oneapi::generate(&module, "knl", &config).unwrap())
    });

    group.bench_function("gpu_model_estimate", |b| {
        let w = psa_platform::KernelWork {
            flops_fma: 1e9,
            flops_sfu: 2e8,
            cycles_1t: 5e9,
            bytes_mem: 1e8,
            threads: 65536.0,
            fp64: false,
            regs_per_thread: 48,
            ..Default::default()
        };
        let model = psa_platform::GpuModel::new(psa_platform::rtx_2080_ti());
        b.iter(|| model.estimate(&w, 256, true))
    });

    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
