//! Observability artefact output for the experiment binaries.
//!
//! Every binary accepts three optional flags:
//!
//! * `--trace-out=<path>` — Perfetto / Chrome `trace_event` JSON of every
//!   flow run's recorded trace (load in <https://ui.perfetto.dev> or
//!   `chrome://tracing`);
//! * `--metrics-out=<path>` — the process-global metrics registry in
//!   Prometheus text exposition format;
//! * `--profile-out=<path>` — collapsed-stack (flamegraph) text from VM
//!   frame-profiled runs of the five benchmark applications;
//! * `--recorder-dump=<path>` — arm the flight recorder and write its
//!   forensic bundle (triggers, span table, per-worker event rings,
//!   embedded Perfetto timeline) there on exit — immediately on a flow
//!   failure, or after the last run on success.
//!
//! All four write to files only: **stdout is byte-identical with and
//! without the flags** (CI diffs the two). Metrics collection is enabled
//! lazily — without `--metrics-out` the registry stays off and every
//! instrumentation site costs a single relaxed atomic load; the flight
//! recorder has its own independent gate behind `--recorder-dump`.

use psa_interp::{run_main_profiled_vm_with_profile, RunConfig, VmProfile};
use psa_obs::perfetto::{ArgValue, TraceBuilder};
use psaflow_core::obs_export::export_trace;
use psaflow_core::TraceEvent;
use std::path::PathBuf;

/// The parsed observability flags.
#[derive(Debug, Default)]
pub struct ObsArgs {
    pub trace_out: Option<PathBuf>,
    pub metrics_out: Option<PathBuf>,
    pub profile_out: Option<PathBuf>,
    pub recorder_dump: Option<PathBuf>,
}

impl ObsArgs {
    /// Parse the flags from `std::env::args`. Must run before any flow
    /// executes: requesting metrics turns the global registry on.
    pub fn parse() -> Self {
        let mut out = ObsArgs::default();
        for arg in std::env::args() {
            if let Some(p) = arg.strip_prefix("--trace-out=") {
                out.trace_out = Some(p.into());
            } else if let Some(p) = arg.strip_prefix("--metrics-out=") {
                out.metrics_out = Some(p.into());
            } else if let Some(p) = arg.strip_prefix("--profile-out=") {
                out.profile_out = Some(p.into());
            } else if let Some(p) = arg.strip_prefix("--recorder-dump=") {
                out.recorder_dump = Some(p.into());
            }
        }
        if out.metrics_out.is_some() {
            psa_obs::set_enabled(true);
        }
        if let Some(path) = &out.recorder_dump {
            psa_obs::recorder::set_dump_path(Some(path.clone()));
            psa_obs::recorder::set_enabled(true);
        }
        out
    }

    /// Write every requested artefact. `traces` pairs a run name with its
    /// recorded trace (one Perfetto process per run); binaries that run no
    /// flows pass an empty slice and still produce valid artefacts.
    pub fn write_artifacts(&self, traces: &[(&str, &[TraceEvent])]) -> std::io::Result<()> {
        let profiles = if self.profile_out.is_some() {
            benchmark_profiles()
        } else {
            Vec::new()
        };

        if let Some(path) = &self.trace_out {
            let mut tb = TraceBuilder::new();
            for (i, (name, events)) in traces.iter().enumerate() {
                export_trace(&mut tb, i as u32 + 1, name, events);
            }
            // When profiling too, attach each app's per-frame self/total
            // table as instant events on its own process.
            for (i, (app, profile)) in profiles.iter().enumerate() {
                let pid = 1000 + i as u32;
                tb.process_name(pid, &format!("vmprof {app}"));
                tb.thread_name(pid, 0, "frames");
                for (j, row) in profile.rows.iter().enumerate() {
                    tb.instant(
                        pid,
                        0,
                        j as u64,
                        &row.name,
                        vec![
                            ("self_cycles".into(), ArgValue::from(row.self_cycles)),
                            ("total_cycles".into(), ArgValue::from(row.total_cycles)),
                            ("self_wall_ns".into(), ArgValue::from(row.self_wall_ns)),
                            ("entries".into(), ArgValue::from(row.entries)),
                        ],
                    );
                }
            }
            std::fs::write(path, tb.to_json())?;
        }

        if let Some(path) = &self.profile_out {
            let mut out = String::new();
            for (_, profile) in &profiles {
                out.push_str(&profile.collapsed_text());
            }
            std::fs::write(path, out)?;
        }

        if let Some(path) = &self.metrics_out {
            std::fs::write(path, psa_obs::global().render_prometheus())?;
        }

        if self.recorder_dump.is_some() {
            psa_obs::recorder::flush_dump()?;
        }
        Ok(())
    }
}

/// Run every benchmark application once on the frame-profiled VM. Profiles
/// key each collapsed stack's root by the app name.
fn benchmark_profiles() -> Vec<(String, VmProfile)> {
    psa_benchsuite::all()
        .iter()
        .filter_map(|b| {
            let module = psa_minicpp::parse_module(&b.source, &b.key).ok()?;
            run_main_profiled_vm_with_profile(&module, RunConfig::default())
                .ok()
                .map(|(_, vp)| (b.key.clone(), vp))
        })
        .collect()
}
