//! Regenerate Table I: added lines of code (LOC) for each generated design
//! compared to the reference unoptimised high-level source.
//!
//! "The generation of five new implementations for a single application
//! requires, on average, an additional 212% of the reference source-code
//! LOC." Unsynthesizable designs (Rush Larsen's FPGA variants) are excluded
//! exactly as the paper excludes them.

use psa_bench::faultargs::{run_or_exit, FaultArgs};
use psa_bench::obsout::ObsArgs;
use psa_bench::{params_for, run_all_on};
use psa_benchsuite::paper;
use psa_minicpp::canonicalise;
use psaflow_core::{DeviceKind, FlowEngine};

fn main() {
    // `--sequential` forces the single-threaded reference scheduler (one
    // benchmark at a time, every flow graph in stable topological order).
    // Stdout is byte-identical to the parallel default — CI diffs the two.
    let obs = ObsArgs::parse();
    let faults = FaultArgs::parse();
    let sequential = std::env::args().any(|a| a == "--sequential");
    println!("Table I — Added LOC per generated design vs reference");
    println!("(cells: paper% → measured%)\n");

    let engine = faults.engine(if sequential {
        FlowEngine::sequential()
    } else {
        FlowEngine::default()
    });
    let results = run_or_exit(run_all_on(engine));
    faults.report_failures(&results);
    println!(
        "{:<14} {:>7} {:>14} {:>14} {:>14} {:>14} {:>14} {:>16}",
        "App",
        "ref LOC",
        "OMP",
        "HIP 1080",
        "HIP 2080",
        "oneAPI A10",
        "oneAPI S10",
        "Total (5 designs)"
    );

    let mut avg_measured = [0.0f64; 5];
    let mut avg_counts = [0usize; 5];
    for (row, outcome) in &results {
        let bench = psa_benchsuite::by_key(&row.key).unwrap();
        let _ = params_for(&bench);
        // Canonicalise the reference so formatting differences cannot skew
        // the deltas.
        let reference = canonicalise(&bench.source, &bench.key).expect("reference parses");
        let ref_loc = reference.lines().filter(|l| !l.trim().is_empty()).count();

        let paper_row = paper::table1()
            .into_iter()
            .find(|r| r.key == row.key)
            .unwrap();
        let delta = |device: DeviceKind| -> Option<f64> {
            let d = outcome.design_for(device)?;
            if !d.synthesizable {
                return None;
            }
            Some((d.loc as f64 - ref_loc as f64) / ref_loc as f64 * 100.0)
        };
        let devices = [
            DeviceKind::Epyc7543,
            DeviceKind::Gtx1080Ti,
            DeviceKind::Rtx2080Ti,
            DeviceKind::Arria10,
            DeviceKind::Stratix10,
        ];
        let paper_vals = [
            Some(paper_row.omp_pct),
            Some(paper_row.hip_pct),
            Some(paper_row.hip_pct),
            paper_row.a10_pct,
            paper_row.s10_pct,
        ];
        let mut cells = Vec::new();
        let mut total = 0.0;
        let mut all_present = true;
        for (i, (device, paper_val)) in devices.iter().zip(paper_vals).enumerate() {
            let measured = delta(*device);
            let cell = match (paper_val, measured) {
                (Some(p), Some(m)) => {
                    total += m;
                    avg_measured[i] += m;
                    avg_counts[i] += 1;
                    format!("+{p:.0}%→+{m:.0}%")
                }
                (None, None) => {
                    all_present = false;
                    "n/a".to_string()
                }
                (p, m) => {
                    all_present = false;
                    format!("{p:?}→{m:?}")
                }
            };
            cells.push(cell);
        }
        let total_cell = if all_present {
            let paper_total = paper_row
                .total_pct
                .map_or("?".to_string(), |t| format!("+{t:.0}%"));
            format!("{paper_total}→+{total:.0}%")
        } else {
            "n/a".to_string()
        };
        println!(
            "{:<14} {:>7} {:>14} {:>14} {:>14} {:>14} {:>14} {:>16}",
            row.key, ref_loc, cells[0], cells[1], cells[2], cells[3], cells[4], total_cell
        );
    }

    println!("\nAverages (measured, over apps where the design exists):");
    let names = ["OMP", "HIP 1080", "HIP 2080", "oneAPI A10", "oneAPI S10"];
    for (i, name) in names.iter().enumerate() {
        if avg_counts[i] > 0 {
            println!(
                "  {name:<12} +{:.0}%",
                avg_measured[i] / avg_counts[i] as f64
            );
        }
    }
    println!("\n(paper averages: OMP +2%, HIP +36%, oneAPI A10 +57%, S10 +81%, total +212%)");

    let traces: Vec<(&str, &[psaflow_core::TraceEvent])> = results
        .iter()
        .map(|(row, outcome)| (row.key.as_str(), outcome.trace.as_slice()))
        .collect();
    if let Err(e) = obs.write_artifacts(&traces) {
        eprintln!("table1: failed to write observability artefacts: {e}");
        std::process::exit(1);
    }
}
