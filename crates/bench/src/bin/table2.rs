//! Regenerate Table II: the comparison of design approaches that partition
//! (P), map (M), and/or optimise (O) applications onto specialised hardware.
//!
//! The matrix itself is qualitative; this binary additionally *demonstrates*
//! the "This Work" row by pointing at the concrete subsystems implementing
//! each capability.

use psa_bench::faultargs::FaultArgs;
use psa_bench::obsout::ObsArgs;
use psaflow_core::related;

fn main() {
    let obs = ObsArgs::parse();
    // Parsed for interface uniformity; Table II runs no flows, so the
    // policy and plan never engage.
    let _faults = FaultArgs::parse();
    println!("Table II — Design-approach capability matrix\n");
    print!("{}", related::render_table2());

    println!("\n\"This Work\" row, demonstrated by this repository:");
    println!("  P (partition): hotspot detection + kernel extraction (psa-analyses::hotspot)");
    println!("  M (map):       Fig. 3 PSA strategy at branch point A (psaflow-core::strategy)");
    println!("  O (optimise):  transform + DSE tasks per target (psaflow-core::tasks, ::dse)");
    println!("  Multi-target:  OpenMP CPU, HIP GPUs, oneAPI FPGAs from one source");
    println!("  Scope:         full applications (host code regenerated around the kernel)");

    // Table II runs no flows; the artefacts are valid but empty.
    if let Err(e) = obs.write_artifacts(&[]) {
        eprintln!("table2: failed to write observability artefacts: {e}");
        std::process::exit(1);
    }
}
