//! `psastat` — offline viewer for the observability artefacts.
//!
//! Three modes, selected by the arguments:
//!
//! * `psastat <bundle.json>` — pretty-print a flight-recorder forensic
//!   bundle (`--recorder-dump=`) as a causal span tree: triggers first,
//!   then every span from the bundle's span table nested under its parent,
//!   with the ring events that carry its span id attached;
//! * `psastat <metrics.prom>` — render a Prometheus text snapshot
//!   (`--metrics-out=`): counters and gauges verbatim, histograms with
//!   count/sum and p50/p95/p99 estimated from the log₂ buckets;
//! * `psastat diff <old.json> <new.json>` — compare two `BENCH_*.json`
//!   files leaf by numeric leaf and print a regression report.
//!
//! Everything is parsed with the in-workspace `psa_obs::json` parser — no
//! external dependencies, same as the emitters.

use psa_obs::json::{self, Json};
use psa_obs::registry::quantile_from_bucket_counts;
use psa_obs::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [mode, old, new] if mode == "diff" => diff_bench(old, new),
        [path] => render_file(path),
        _ => {
            eprintln!("usage: psastat <bundle.json | metrics.prom>");
            eprintln!("       psastat diff <old BENCH.json> <new BENCH.json>");
            exit(2);
        }
    }
}

/// Write the rendered report to stdout. A broken pipe (`psastat ... |
/// head`) is a reader choosing to stop, not an error.
fn emit(buf: String) {
    use std::io::Write;
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = stdout
        .write_all(buf.as_bytes())
        .and_then(|()| stdout.flush())
    {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            exit(0);
        }
        eprintln!("psastat: write failed: {e}");
        exit(1);
    }
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("psastat: cannot read `{path}`: {e}");
        exit(1);
    })
}

fn render_file(path: &str) {
    let text = read(path);
    if text.trim_start().starts_with('{') {
        let doc = json::parse(&text).unwrap_or_else(|e| {
            eprintln!("psastat: `{path}` is not valid JSON: {e}");
            exit(1);
        });
        if doc.get("format").and_then(Json::as_str) == Some("psa-forensic-bundle") {
            render_bundle(path, &doc);
        } else {
            render_numeric_leaves(path, &doc);
        }
    } else {
        render_prometheus_snapshot(path, &text);
    }
}

// ---------------------------------------------------------------------------
// Forensic bundle → causal tree
// ---------------------------------------------------------------------------

struct SpanNode<'a> {
    label: &'a str,
    worker: u64,
    children: Vec<usize>,
    events: Vec<String>,
}

fn render_bundle(path: &str, doc: &Json) {
    emit(bundle_report(path, doc));
}

fn bundle_report(path: &str, doc: &Json) -> String {
    let spans = doc.get("spans").and_then(Json::as_array).unwrap_or(&[]);
    let workers = doc.get("workers").and_then(Json::as_array).unwrap_or(&[]);
    let triggers = doc.get("triggers").and_then(Json::as_array).unwrap_or(&[]);
    let dropped_spans = doc.get("dropped_spans").and_then(Json::as_u64).unwrap_or(0);

    // Index the span table by span id (document order is append order, so
    // children render in the order they were opened).
    let mut nodes: Vec<SpanNode> = Vec::with_capacity(spans.len());
    let mut by_id: BTreeMap<&str, usize> = BTreeMap::new();
    for s in spans {
        let id = s.get("span").and_then(Json::as_str).unwrap_or("?");
        let idx = nodes.len();
        nodes.push(SpanNode {
            label: s.get("label").and_then(Json::as_str).unwrap_or("?"),
            worker: s.get("worker").and_then(Json::as_u64).unwrap_or(0),
            children: Vec::new(),
            events: Vec::new(),
        });
        by_id.entry(id).or_insert(idx);
    }
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        let parent = s.get("parent").and_then(Json::as_str).unwrap_or("?");
        match by_id.get(parent) {
            Some(&p) if parent != "0000000000000000" => nodes[p].children.push(i),
            _ => roots.push(i),
        }
    }

    // Attach ring events to their spans; structural open/close events are
    // implied by the tree and orphans (span evicted from the table) are
    // listed per worker at the end.
    let mut orphans: Vec<(u64, String)> = Vec::new();
    let mut total_events = 0usize;
    for w in workers {
        let wid = w.get("worker").and_then(Json::as_u64).unwrap_or(0);
        for ev in w.get("events").and_then(Json::as_array).unwrap_or(&[]) {
            total_events += 1;
            let kind = ev.get("kind").and_then(Json::as_str).unwrap_or("?");
            if kind == "span_open" || kind == "span_close" {
                continue;
            }
            let line = describe_event(ev, kind);
            match ev
                .get("span")
                .and_then(Json::as_str)
                .and_then(|id| by_id.get(id))
            {
                Some(&idx) => nodes[idx].events.push(line),
                None => orphans.push((wid, line)),
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "forensic bundle `{path}`: {} span(s), {} ring event(s), {} trigger(s)",
        nodes.len(),
        total_events,
        triggers.len()
    );
    if dropped_spans > 0 {
        let _ = writeln!(
            out,
            "  ({dropped_spans} span(s) evicted from the span table)"
        );
    }
    if !triggers.is_empty() {
        let _ = writeln!(out, "\ntriggers:");
        for t in triggers {
            let _ = writeln!(out, "  ! {}", t.as_str().unwrap_or("?"));
        }
    }
    // psa-serve bundles root every job at a `psa-serve/{tenant}/{id}`
    // span. Surface those as a job index and render their trees first,
    // so a drained service bundle reads as "one causal tree per job".
    let (job_roots, other_roots): (Vec<usize>, Vec<usize>) = roots
        .iter()
        .copied()
        .partition(|&r| nodes[r].label.starts_with("psa-serve/"));
    if !job_roots.is_empty() {
        let _ = writeln!(out, "\nservice jobs:");
        for &r in &job_roots {
            let (sub_spans, sub_events) = subtree_size(&nodes, r);
            let mut parts = nodes[r].label.splitn(3, '/');
            let _ = parts.next();
            let tenant = parts.next().unwrap_or("?");
            let id = parts.next().unwrap_or("?");
            let _ = writeln!(
                out,
                "  {tenant}/{id}: {sub_spans} span(s), {sub_events} event(s)"
            );
        }
    }
    let _ = writeln!(out, "\ncausal tree:");
    for &r in job_roots.iter().chain(&other_roots) {
        print_span(&mut out, &nodes, r, 1);
    }
    if !orphans.is_empty() {
        let _ = writeln!(out, "\nevents outside the span table:");
        for (wid, line) in &orphans {
            let _ = writeln!(out, "  [worker {wid}] {line}");
        }
    }
    out
}

/// Spans and attached events in the subtree rooted at `idx` (inclusive).
fn subtree_size(nodes: &[SpanNode], idx: usize) -> (usize, usize) {
    let mut spans = 1;
    let mut events = nodes[idx].events.len();
    for &c in &nodes[idx].children {
        let (s, e) = subtree_size(nodes, c);
        spans += s;
        events += e;
    }
    (spans, events)
}

fn print_span(out: &mut String, nodes: &[SpanNode], idx: usize, depth: usize) {
    let n = &nodes[idx];
    let indent = "  ".repeat(depth);
    let _ = writeln!(out, "{indent}{} (worker {})", n.label, n.worker);
    for ev in &n.events {
        let _ = writeln!(out, "{indent}  · {ev}");
    }
    for &c in &n.children {
        print_span(out, nodes, c, depth + 1);
    }
}

/// One compact line per ring event, keyed by the bundle's `kind` tag.
fn describe_event(ev: &Json, kind: &str) -> String {
    let s = |k: &str| ev.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
    let u = |k: &str| ev.get(k).and_then(Json::as_u64).unwrap_or(0);
    let seq = u("seq");
    let body = match kind {
        "cache_hit" => format!("cache hit {}", s("domain")),
        "cache_miss" => format!("cache miss {}", s("domain")),
        "fault_fired" => format!("FAULT {}:{}", s("seam"), s("site")),
        "task_retry" => format!("retry {} (attempt {})", s("task"), u("attempt")),
        "deadline_arm" => format!("deadline armed {} ({} ms)", s("scope"), u("deadline_ms")),
        "deadline_expired" => format!("DEADLINE EXPIRED {}", s("scope")),
        "vm_census" => format!(
            "vm census: {} dispatches ({} specialised), {} calls",
            u("dispatches"),
            u("specialized"),
            u("calls")
        ),
        "budget_exhausted" => format!("BUDGET EXHAUSTED {}", s("detail")),
        "estimate" => format!("estimate {}", s("site")),
        other => other.to_string(),
    };
    format!("{body}  [seq {seq}]")
}

// ---------------------------------------------------------------------------
// Prometheus text snapshot → counters, gauges, histogram quantiles
// ---------------------------------------------------------------------------

fn render_prometheus_snapshot(path: &str, text: &str) {
    // `# TYPE <name> <kind>` headers classify every series.
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // Histogram `_bucket` series keyed by (base name + labels sans `le`):
    // cumulative count per upper bound.
    let mut hist_buckets: BTreeMap<String, BTreeMap<u64, u64>> = BTreeMap::new();
    let mut hist_sums: BTreeMap<String, f64> = BTreeMap::new();
    let mut hist_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut scalars: Vec<(String, String, f64)> = Vec::new();

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, kind)) = rest.split_once(' ') {
                types.insert(name.to_string(), kind.trim().to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let (name, labels) = split_series(series);
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(&name);
        if types.get(base).map(String::as_str) == Some("histogram") {
            let key = series_key(base, &labels, true);
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .unwrap_or("+Inf");
                let bound = if le == "+Inf" {
                    u64::MAX
                } else {
                    le.parse().unwrap_or(u64::MAX)
                };
                let cumulative = value.parse().unwrap_or(0);
                hist_buckets
                    .entry(key)
                    .or_default()
                    .insert(bound, cumulative);
            } else if name.ends_with("_sum") {
                hist_sums.insert(key, value.parse().unwrap_or(0.0));
            } else if name.ends_with("_count") {
                hist_counts.insert(key, value.parse().unwrap_or(0));
            }
        } else {
            let kind = types.get(&name).cloned().unwrap_or_else(|| "?".into());
            scalars.push((
                series_key(&name, &labels, false),
                kind,
                parse_prom_value(value),
            ));
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "metrics snapshot `{path}`:");
    for (series, kind, value) in &scalars {
        let _ = writeln!(out, "  {kind:<9} {series} = {value}");
    }
    for (key, by_bound) in &hist_buckets {
        // Rebuild the per-bucket log₂ counts from the cumulative `le`
        // bounds (each bound is 2^i − 1, the inclusive top of bucket i).
        let mut counts = vec![0u64; psa_obs::registry::HISTOGRAM_BUCKETS];
        let mut prev = 0u64;
        for (&bound, &cumulative) in by_bound {
            let c = cumulative.saturating_sub(prev);
            prev = cumulative;
            let i = (0..counts.len())
                .find(|&i| Histogram::bucket_bound(i) == bound)
                .unwrap_or(counts.len() - 1);
            counts[i] += c;
        }
        let count = hist_counts.get(key).copied().unwrap_or(prev);
        let sum = hist_sums.get(key).copied().unwrap_or(0.0);
        let q = |p: f64| {
            quantile_from_bucket_counts(&counts, p)
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".into())
        };
        let _ = writeln!(
            out,
            "  histogram {key}: count={count} sum={sum} p50={} p95={} p99={}",
            q(0.50),
            q(0.95),
            q(0.99)
        );
    }
    emit(out);
}

/// Split `name{k="v",...}` into the metric name and its label pairs.
fn split_series(series: &str) -> (String, Vec<(String, String)>) {
    let Some(brace) = series.find('{') else {
        return (series.to_string(), Vec::new());
    };
    let name = series[..brace].to_string();
    let body = series[brace + 1..].strip_suffix('}').unwrap_or("");
    let mut labels = Vec::new();
    let mut rest = body;
    while let Some(eq) = rest.find("=\"") {
        let key = rest[..eq].trim_start_matches(',').to_string();
        rest = &rest[eq + 2..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut consumed = rest.len();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, esc)) = chars.next() {
                        value.push(match esc {
                            'n' => '\n',
                            other => other,
                        });
                    }
                }
                '"' => {
                    consumed = i + 1;
                    break;
                }
                c => value.push(c),
            }
        }
        labels.push((key, value));
        rest = &rest[consumed..];
    }
    (name, labels)
}

/// Canonical display key for a series: name plus its labels, with `le`
/// stripped for histogram grouping.
fn series_key(name: &str, labels: &[(String, String)], drop_le: bool) -> String {
    let kept: Vec<String> = labels
        .iter()
        .filter(|(k, _)| !(drop_le && k == "le"))
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    if kept.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{}}}", kept.join(","))
    }
}

fn parse_prom_value(v: &str) -> f64 {
    match v {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse().unwrap_or(f64::NAN),
    }
}

// ---------------------------------------------------------------------------
// BENCH_*.json diff → regression report
// ---------------------------------------------------------------------------

fn diff_bench(old_path: &str, new_path: &str) {
    let old = parse_json_file(old_path);
    let new = parse_json_file(new_path);
    let mut old_leaves = BTreeMap::new();
    let mut new_leaves = BTreeMap::new();
    flatten("", &old, &mut old_leaves);
    flatten("", &new, &mut new_leaves);

    let mut out = String::new();
    let _ = writeln!(out, "diff {old_path} -> {new_path}:");
    let mut regressions = 0usize;
    for (path, &a) in &old_leaves {
        match new_leaves.get(path) {
            None => {
                let _ = writeln!(out, "  - {path} (removed; was {a})");
            }
            Some(&b) if a == b => {}
            Some(&b) => {
                let delta = b - a;
                let pct = if a != 0.0 {
                    format!("{:+.2}%", delta / a * 100.0)
                } else {
                    "n/a".into()
                };
                if delta > 0.0 {
                    regressions += 1;
                }
                let _ = writeln!(out, "  {path}: {a} -> {b}  ({delta:+}, {pct})");
            }
        }
    }
    for (path, b) in &new_leaves {
        if !old_leaves.contains_key(path) {
            let _ = writeln!(out, "  + {path} = {b}");
        }
    }
    let unchanged = old_leaves
        .iter()
        .filter(|(p, a)| new_leaves.get(*p) == Some(a))
        .count();
    let _ = writeln!(
        out,
        "  ({unchanged} leaf value(s) unchanged, {regressions} increased)"
    );
    emit(out);
}

/// A JSON file that is not a forensic bundle (e.g. a `BENCH_*.json`
/// record): print its numeric leaves as a flat snapshot.
fn render_numeric_leaves(path: &str, doc: &Json) {
    let mut leaves = BTreeMap::new();
    flatten("", doc, &mut leaves);
    let mut out = String::new();
    let _ = writeln!(out, "numeric leaves of `{path}`:");
    for (leaf, value) in &leaves {
        let _ = writeln!(out, "  {leaf} = {value}");
    }
    emit(out);
}

fn parse_json_file(path: &str) -> Json {
    json::parse(&read(path)).unwrap_or_else(|e| {
        eprintln!("psastat: `{path}` is not valid JSON: {e}");
        exit(1);
    })
}

/// Collect every numeric leaf under a dotted path (`a.b[2].c`).
fn flatten(prefix: &str, v: &Json, out: &mut BTreeMap<String, f64>) {
    match v {
        Json::Num(n) => {
            out.insert(prefix.to_string(), *n);
        }
        Json::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), item, out);
            }
        }
        Json::Object(pairs) => {
            for (k, item) in pairs {
                let child = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&child, item, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A serve-drain bundle (two `psa-serve/{tenant}/{id}` job roots,
    /// engine spans nested under them) renders a job index and one
    /// causal tree per job.
    #[test]
    fn serve_bundles_render_per_job_causal_trees() {
        let bundle = r#"{"format":"psa-forensic-bundle","version":1,
            "triggers":[],"dropped_spans":0,
            "spans":[
              {"trace":"000000000000000a","span":"000000000000000a",
               "parent":"0000000000000000","label":"psa-serve/acme/job-00","worker":1},
              {"trace":"000000000000000a","span":"000000000000000b",
               "parent":"000000000000000a","label":"flow/psa-flow","worker":1},
              {"trace":"000000000000000c","span":"000000000000000c",
               "parent":"0000000000000000","label":"psa-serve/blue/job-01","worker":2},
              {"trace":"000000000000000c","span":"000000000000000d",
               "parent":"000000000000000c","label":"flow/psa-flow","worker":2},
              {"trace":"00000000000000ff","span":"00000000000000ff",
               "parent":"0000000000000000","label":"offline-run","worker":3}
            ],
            "workers":[
              {"worker":1,"dropped":0,"events":[
                {"seq":1,"wall_ns":5,"kind":"fault_fired","seam":"task",
                 "site":"psa-flow/gen_omp","span":"000000000000000b"}
              ]}
            ],
            "perfetto":{"traceEvents":[]}}"#;
        let doc = json::parse(bundle).expect("synthetic bundle parses");
        let report = bundle_report("drain.json", &doc);

        let jobs_at = report.find("service jobs:").expect("job index present");
        assert!(
            report.contains("  acme/job-00: 2 span(s), 1 event(s)"),
            "{report}"
        );
        assert!(
            report.contains("  blue/job-01: 2 span(s), 0 event(s)"),
            "{report}"
        );
        // Job trees come first, rooted at the tenant/job span, with the
        // engine span nested beneath; the non-service root follows.
        let tree_at = report.find("causal tree:").expect("tree present");
        assert!(jobs_at < tree_at, "job index precedes the tree:\n{report}");
        let tree = &report[tree_at..];
        assert!(
            tree.contains("  psa-serve/acme/job-00 (worker 1)"),
            "{report}"
        );
        assert!(tree.contains("    flow/psa-flow (worker 1)"), "{report}");
        assert!(tree.contains("FAULT task:psa-flow/gen_omp"), "{report}");
        assert!(tree.contains("  offline-run (worker 3)"), "{report}");
        let serve_root = tree.find("psa-serve/blue").expect("second job root");
        let other_root = tree.find("offline-run").expect("offline root");
        assert!(
            serve_root < other_root,
            "service jobs render first:\n{report}"
        );
    }
}
