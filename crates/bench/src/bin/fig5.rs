//! Regenerate Fig. 5: accelerated hotspot speedups of the auto-generated
//! designs vs the unoptimised single-thread CPU reference, paper vs
//! measured, plus the informed PSA's target selections.

use psa_bench::faultargs::{run_or_exit, FaultArgs};
use psa_bench::obsout::ObsArgs;
use psa_bench::{fmt_speedup, run_all_cached_on};
use psa_benchsuite::paper;
use psaflow_core::{EvalCache, FlowEngine};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // `--sequential` forces the single-threaded engine and runs the
    // benchmarks one at a time — the timing baseline for the parallel
    // default. `--no-cache` swaps the shared evaluation cache for a
    // pass-through — the memoisation baseline. Stdout is byte-identical
    // under every combination; only the stderr timing summary differs.
    // `--engine=tree|vm` pins the interpreter engine for every profiled
    // run (the default is the VM; `PSA_INTERP_ENGINE` works too). Stdout
    // must be byte-identical either way — CI diffs the two.
    // `--trace-out` / `--metrics-out` / `--profile-out` write observability
    // artefacts to files; parsed up front so metrics collection is live
    // before any flow runs. Stdout stays byte-identical regardless.
    // `--fail-policy` / `--fault-plan` / `--task-deadline-ms` /
    // `--flow-deadline-ms` configure fault tolerance; with no fault plan
    // installed stdout is byte-identical under every policy (failure
    // reports go to stderr only).
    let obs = ObsArgs::parse();
    let faults = FaultArgs::parse();
    let sequential = std::env::args().any(|a| a == "--sequential");
    let no_cache = std::env::args().any(|a| a == "--no-cache");
    for arg in std::env::args() {
        let interp_engine = match arg.as_str() {
            "--engine=tree" => psa_interp::Engine::Tree,
            "--engine=vm" => psa_interp::Engine::Vm,
            _ => continue,
        };
        assert!(
            psa_interp::set_default_engine(interp_engine),
            "engine already selected"
        );
    }
    let engine = faults.engine(if sequential {
        FlowEngine::sequential()
    } else {
        FlowEngine::parallel()
    });
    let cache = Arc::new(if no_cache {
        EvalCache::disabled()
    } else {
        EvalCache::new()
    });
    println!("Fig. 5 — Hotspot speedups vs 1-thread CPU reference");
    println!("(paper value → measured value; informed PSA selection marked)\n");
    let started = Instant::now();
    let results = run_or_exit(run_all_cached_on(engine, Arc::clone(&cache)));
    let elapsed = started.elapsed();
    faults.report_failures(&results);

    println!(
        "{:<14} {:>16} {:>16} {:>16} {:>16} {:>16} {:>16}   informed target",
        "App", "Auto-Selected", "OMP", "HIP 1080Ti", "HIP 2080Ti", "oneAPI A10", "oneAPI S10"
    );
    for (row, _) in &results {
        let p = paper::fig5_row(&row.key).expect("paper row");
        let cell = |paper: Option<f64>, measured: Option<f64>| -> String {
            let ps = match paper {
                Some(v) => format!("{v}x"),
                None => "n/a".to_string(),
            };
            format!("{ps}→{}", fmt_speedup(measured))
        };
        println!(
            "{:<14} {:>16} {:>16} {:>16} {:>16} {:>16} {:>16}   {:?}",
            row.key,
            cell(Some(p.auto_selected), row.auto_selected),
            cell(Some(p.omp), row.omp),
            cell(Some(p.hip_1080), row.hip_1080),
            cell(Some(p.hip_2080), row.hip_2080),
            cell(p.oneapi_a10, row.oneapi_a10),
            cell(p.oneapi_s10, row.oneapi_s10),
            row.selected_target,
        );
    }

    println!("\nShape checks (paper's qualitative claims):");
    for (row, _) in &results {
        let p = paper::fig5_row(&row.key).unwrap();
        let expected = match p.target {
            paper::PaperTarget::MultiThreadCpu => "MultiThreadCpu",
            paper::PaperTarget::CpuGpu => "CpuGpu",
            paper::PaperTarget::CpuFpga => "CpuFpga",
        };
        let got = row
            .selected_target
            .map(|t| format!("{t:?}"))
            .unwrap_or_default();
        println!(
            "  {:<14} informed target: paper {expected:<14} measured {got:<14} {}",
            row.key,
            if got == expected { "OK" } else { "MISMATCH" }
        );
    }

    eprintln!(
        "\nall flows completed in {:.2}s ({} engine{})",
        elapsed.as_secs_f64(),
        if sequential { "sequential" } else { "parallel" },
        if no_cache { ", cache disabled" } else { "" }
    );

    let cold = cache.stats();
    if !no_cache {
        eprintln!(
            "eval cache (cold sweep): {} hits / {} misses ({:.1}% hit rate), {} entries",
            cold.hits,
            cold.misses,
            cold.hit_rate() * 100.0,
            cold.entries
        );

        // A second sweep over the warmed cache shows the steady-state cost
        // of re-running the experiments: every profiled run and model
        // estimate is already memoised. Results are discarded — they are
        // bit-identical to the first sweep — so stdout stays untouched.
        let warm_started = Instant::now();
        let warm_results = run_or_exit(run_all_cached_on(engine, Arc::clone(&cache)));
        let warm_elapsed = warm_started.elapsed();
        assert_eq!(warm_results.len(), results.len(), "warm sweep row count");
        let warm = cache.stats().since(&cold);
        eprintln!(
            "eval cache (warm sweep): {} hits / {} misses ({:.1}% hit rate); \
             cold {:.2}s → warm {:.2}s ({:.1}x)",
            warm.hits,
            warm.misses,
            warm.hit_rate() * 100.0,
            elapsed.as_secs_f64(),
            warm_elapsed.as_secs_f64(),
            elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(1e-9)
        );
    }

    // When the profiled runs go through the VM, report the static
    // type-specialisation rate of each compiled program (stderr only —
    // stdout must stay byte-identical across engines for the CI diff).
    if psa_interp::Engine::default_engine() == psa_interp::Engine::Vm {
        eprintln!("\nVM type specialisation (static census of compiled bytecode):");
        for bench in psa_benchsuite::all() {
            let module = psa_minicpp::parse_module(&bench.source, &bench.key).expect("parses");
            let program = psa_interp::Program::compile(&module, &psa_interp::RunConfig::default());
            let (specialized, total, deferred) = program.specialization_stats();
            eprintln!(
                "  {:<14} {:>4}/{:<4} instructions specialised ({:>5.1}%), {} deferred loop{}",
                bench.key,
                specialized,
                total,
                specialized as f64 / total.max(1) as f64 * 100.0,
                deferred,
                if deferred == 1 { "" } else { "s" }
            );
        }
    }

    let traces: Vec<(&str, &[psaflow_core::TraceEvent])> = results
        .iter()
        .map(|(row, outcome)| (row.key.as_str(), outcome.trace.as_slice()))
        .collect();
    if let Err(e) = obs.write_artifacts(&traces) {
        eprintln!("fig5: failed to write observability artefacts: {e}");
        std::process::exit(1);
    }
}
