//! Regenerate Fig. 6: relative costs of FPGA vs GPU execution for varying
//! resource prices.
//!
//! "Fig. 6 shows the relative cost of FPGA and GPU execution for three
//! applications based on the Stratix10 and 2080 Ti results from Fig. 5."
//! The three applications with both designs and meaningful crossovers are
//! AdPredictor, Bezier, and K-Means.

use psa_bench::faultargs::{run_or_exit, FaultArgs};
use psa_bench::obsout::ObsArgs;
use psa_bench::run_all_on;
use psa_platform::pricing::{fig6_price_ratios, CostCase, CostStudy};
use psaflow_core::{DeviceKind, FlowEngine};

fn main() {
    let obs = ObsArgs::parse();
    let faults = FaultArgs::parse();
    println!("Fig. 6 — Relative cost of FPGA (Stratix10) vs GPU (2080 Ti) execution");
    println!("cost_FPGA / cost_GPU at price ratio p = price_FPGA / price_GPU\n");

    let results = run_or_exit(run_all_on(faults.engine(FlowEngine::default())));
    faults.report_failures(&results);
    // The paper plots three applications; N-Body's FPGA designs are off the
    // 1/4…4 axis entirely (the GPU is ~300× more cost-effective).
    let fig6_apps = ["adpredictor", "bezier", "kmeans"];
    let mut cases = Vec::new();
    for (row, outcome) in &results {
        if !fig6_apps.contains(&row.key.as_str()) {
            continue;
        }
        let (Some(fpga), Some(gpu)) = (
            outcome
                .design_for(DeviceKind::Stratix10)
                .and_then(|d| d.estimated_time_s),
            outcome
                .design_for(DeviceKind::Rtx2080Ti)
                .and_then(|d| d.estimated_time_s),
        ) else {
            continue;
        };
        cases.push(CostCase {
            app: row.key.clone(),
            t_fpga_s: fpga,
            t_gpu_s: gpu,
        });
    }
    let study = CostStudy { cases };

    print!("{:<14}", "price ratio:");
    for r in fig6_price_ratios() {
        print!("{:>9}", format_ratio(r));
    }
    println!();
    for case in &study.cases {
        print!("{:<14}", case.app);
        for r in fig6_price_ratios() {
            print!("{:>9.2}", case.relative_cost(r));
        }
        println!("   crossover at p = {:.2}", case.crossover_price_ratio());
    }

    println!("\nReadings (cost < 1 ⇒ FPGA more cost-effective):");
    for case in &study.cases {
        let c = case.crossover_price_ratio();
        if c > 1.0 {
            println!(
                "  {:<14} FPGA is faster; GPU becomes more cost-effective only when the \
                 FPGA price exceeds {c:.1}× the GPU price (paper: AdPredictor at 3.2×)",
                case.app
            );
        } else {
            println!(
                "  {:<14} GPU is faster; FPGA becomes more cost-effective when the GPU \
                 price exceeds {:.1}× the FPGA price (paper: Bezier at 2.5×)",
                case.app,
                1.0 / c
            );
        }
    }

    let traces: Vec<(&str, &[psaflow_core::TraceEvent])> = results
        .iter()
        .map(|(row, outcome)| (row.key.as_str(), outcome.trace.as_slice()))
        .collect();
    if let Err(e) = obs.write_artifacts(&traces) {
        eprintln!("fig6: failed to write observability artefacts: {e}");
        std::process::exit(1);
    }
}

fn format_ratio(r: f64) -> String {
    if r < 1.0 {
        format!("1/{:.0}", 1.0 / r)
    } else {
        format!("{r:.0}")
    }
}
