//! Fault-tolerance flags for the experiment binaries.
//!
//! Every binary accepts four optional flags:
//!
//! * `--fail-policy=<spec>` — the engine's [`FailurePolicy`]:
//!   `failfast` (default), `degrade`, or `retry[:attempts[:base_ms[:factor]]]`;
//! * `--fault-plan=<spec>` — install a deterministic [`FaultPlan`]
//!   (grammar: `seed=N; <seam>:<site>[@n|@~p]=error[:kind[:msg]]|panic[:msg]|delay:ms`,
//!   clauses `;`-separated) as the process-global plan before any flow runs;
//! * `--task-deadline-ms=<ms>` / `--flow-deadline-ms=<ms>` — wall-clock
//!   deadlines enforced by the engine ([`FlowError::Timeout`] on breach).
//!
//! Without `--fault-plan` no fault ever fires, and with the default policy
//! the engine behaves exactly as before this subsystem existed: **stdout is
//! byte-identical with and without `--fail-policy=degrade`** when no plan
//! is installed (CI diffs the two). Failure reports go to stderr only.
//!
//! [`FlowError::Timeout`]: psaflow_core::FlowError

use psa_faults::FaultPlan;
use psaflow_core::{FailurePolicy, FlowEngine, FlowOutcome};
use std::sync::Arc;
use std::time::Duration;

/// The parsed fault-tolerance flags.
#[derive(Debug, Default)]
pub struct FaultArgs {
    pub policy: Option<FailurePolicy>,
    pub plan: Option<Arc<FaultPlan>>,
    pub task_deadline: Option<Duration>,
    pub flow_deadline: Option<Duration>,
}

impl FaultArgs {
    /// Parse the flags from `std::env::args` and install the fault plan
    /// (if any) as the process-global plan. Must run before any flow
    /// executes. Malformed specs abort with a message on stderr.
    pub fn parse() -> Self {
        let mut out = FaultArgs::default();
        for arg in std::env::args() {
            if let Some(spec) = arg.strip_prefix("--fail-policy=") {
                out.policy = Some(FailurePolicy::parse(spec).unwrap_or_else(|e| die(&e)));
            } else if let Some(spec) = arg.strip_prefix("--fault-plan=") {
                let plan = Arc::new(FaultPlan::parse(spec).unwrap_or_else(|e| die(&e)));
                psa_faults::install(Arc::clone(&plan));
                out.plan = Some(plan);
            } else if let Some(ms) = arg.strip_prefix("--task-deadline-ms=") {
                out.task_deadline = Some(Duration::from_millis(parse_ms(ms)));
            } else if let Some(ms) = arg.strip_prefix("--flow-deadline-ms=") {
                out.flow_deadline = Some(Duration::from_millis(parse_ms(ms)));
            }
        }
        out
    }

    /// Apply the parsed policy and deadlines to an engine. With no flags
    /// this is the identity — the engine keeps its legacy configuration.
    pub fn engine(&self, mut engine: FlowEngine) -> FlowEngine {
        if let Some(policy) = self.policy {
            engine = engine.with_policy(policy);
        }
        if let Some(d) = self.task_deadline {
            engine = engine.with_task_deadline(d);
        }
        if let Some(d) = self.flow_deadline {
            engine = engine.with_flow_deadline(d);
        }
        engine
    }

    /// Print the failure log of every outcome to **stderr** (stdout must
    /// stay byte-identical when nothing failed — and nothing can fail
    /// unless a fault plan is active). Returns the number of degraded
    /// paths reported.
    pub fn report_failures(&self, results: &[(crate::MeasuredRow, FlowOutcome)]) -> usize {
        let mut n = 0;
        for (row, outcome) in results {
            for failure in &outcome.failures {
                eprintln!("[{}] {}", row.key, failure.render());
                n += 1;
            }
        }
        if let Some(plan) = &self.plan {
            eprintln!(
                "fault plan (seed {}): {} rule(s), {} fault(s) injected, {} path(s) degraded",
                plan.seed(),
                plan.rules().len(),
                plan.fired(),
                n
            );
        }
        n
    }
}

fn parse_ms(s: &str) -> u64 {
    s.parse()
        .unwrap_or_else(|_| die(&format!("invalid deadline (milliseconds): `{s}`")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

/// Unwrap a flow-runner result, exiting with a clean stderr message on
/// failure (an injected fault under `failfast` is an expected outcome of a
/// fault-injection session, not a harness panic).
pub fn run_or_exit<T>(r: Result<T, String>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("flow execution failed: {e}");
        // Flush the flight recorder before bailing out so a fatal flow
        // failure still leaves its forensic bundle behind (`--recorder-dump=`
        // arms the recorder; this is a no-op otherwise).
        psa_obs::recorder::mark_trigger(&format!("flow-error: {e}"));
        if let Err(dump_err) = psa_obs::recorder::flush_dump() {
            eprintln!("recorder dump failed: {dump_err}");
        }
        std::process::exit(3)
    })
}
