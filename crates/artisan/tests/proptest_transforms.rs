//! Property tests: the source-to-source transforms preserve program
//! semantics on randomized inputs — the soundness contract every
//! design-flow task relies on.

use proptest::prelude::*;
use psa_artisan::query;
use psa_artisan::transforms::mathopt::employ_specialised_math;
use psa_artisan::transforms::reduction::remove_array_accumulation;
use psa_artisan::transforms::unroll::fully_unroll;
use psa_interp::{Interpreter, RunConfig, Value};
use psa_minicpp::{parse_module, print_module, Module};

fn run(m: &Module) -> Value {
    let mut interp = Interpreter::new(m, RunConfig::default());
    interp.run_main().expect("runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Full unrolling preserves results for arbitrary literal loop shapes.
    #[test]
    fn full_unroll_preserves_semantics(
        trip in 0i64..20,
        step in 1i64..4,
        scale in -5i64..5,
        n in 4usize..32,
    ) {
        let bound = trip * step;
        let src = format!(
            "int main() {{\
               double* a = alloc_double({n});\
               fill_random(a, {n}, 7);\
               double s = 0.0;\
               for (int i = 0; i < {bound}; i += {step}) {{\
                 s += a[(i + {n}) % {n}] * (double){scale};\
               }}\
               return (int)(s * 512.0);\
             }}"
        );
        let reference = run(&parse_module(&src, "p").unwrap());
        let mut m = parse_module(&src, "p").unwrap();
        let target = query::loops(&m, |_| true)[0].stmt_id;
        fully_unroll(&mut m, target).expect("literal bounds unroll");
        prop_assert!(query::loops(&m, |_| true).is_empty());
        prop_assert_eq!(run(&m), reference);
        // And the unrolled module still parses after printing.
        parse_module(&print_module(&m), "p").expect("unrolled form reparses");
    }

    /// The reduction rewrite preserves results whenever it applies.
    #[test]
    fn reduction_rewrite_preserves_semantics(n in 2usize..24, idx in 0usize..4, seed in 0i64..1000) {
        let idx = idx.min(n - 1);
        let src = format!(
            "int main() {{\
               double* acc = alloc_double({n});\
               double* src = alloc_double({n});\
               fill_random(src, {n}, {seed});\
               for (int j = 0; j < {n}; j++) {{\
                 acc[{idx}] += src[j] * 0.5;\
               }}\
               return (int)(acc[{idx}] * 1024.0);\
             }}"
        );
        let reference = run(&parse_module(&src, "p").unwrap());
        let mut m = parse_module(&src, "p").unwrap();
        let target = query::loops(&m, |_| true)[0].stmt_id;
        let rewritten = remove_array_accumulation(&mut m, target).expect("transform runs");
        prop_assert_eq!(rewritten, 1, "the accumulation is eligible");
        prop_assert_eq!(run(&m), reference);
    }

    /// The specialised-math peepholes are value-preserving.
    #[test]
    fn specialised_math_preserves_semantics(x in 0.1f64..50.0) {
        let src = format!(
            "double knl(double v) {{ return 1.0 / sqrt(v) + pow(v, 2.0); }}\
             int main() {{ return (int)(knl({x:?}) * 256.0); }}"
        );
        let reference = run(&parse_module(&src, "p").unwrap());
        let mut m = parse_module(&src, "p").unwrap();
        employ_specialised_math(&mut m, "knl").unwrap();
        prop_assert_eq!(run(&m), reference);
    }

    /// Node-id uniqueness is an invariant across edits: inserting probes at
    /// random loops never produces duplicate ids.
    #[test]
    fn edits_preserve_id_uniqueness(loops in 1usize..5, probe_at in 0usize..5) {
        let body: String = (0..loops)
            .map(|k| format!("for (int i{k} = 0; i{k} < 3; i{k}++) {{ sink(i{k}); }}"))
            .collect();
        let src = format!("int main() {{ {body} return 0; }}");
        let mut m = parse_module(&src, "p").unwrap();
        let all = query::loops(&m, |_| true);
        let target = all[probe_at % all.len()].stmt_id;
        psa_artisan::edit::wrap_with_timer(&mut m, target, 9).unwrap();

        // Collect every statement/expression id and assert uniqueness.
        use psa_minicpp::visit::{self, Visit};
        #[derive(Default)]
        struct Ids(Vec<u32>);
        impl Visit for Ids {
            fn visit_stmt(&mut self, s: &psa_minicpp::Stmt) {
                self.0.push(s.id.0);
                visit::walk_stmt(self, s);
            }
            fn visit_expr(&mut self, e: &psa_minicpp::Expr) {
                self.0.push(e.id.0);
                visit::walk_expr(self, e);
            }
        }
        let mut ids = Ids::default();
        ids.visit_module(&m);
        let before = ids.0.len();
        ids.0.sort_unstable();
        ids.0.dedup();
        prop_assert_eq!(ids.0.len(), before, "duplicate node ids after edit");

        // The instrumented program still runs and the timer fired.
        let mut interp = Interpreter::new(&m, RunConfig::default());
        interp.run_main().unwrap();
        prop_assert!(interp.profile().timers[&9].starts >= 1);
    }
}
