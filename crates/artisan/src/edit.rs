//! The instrument mechanism: splicing statements and pragmas relative to
//! existing nodes — `instrument(before, loop, #pragma unroll $n)` from the
//! paper's Fig. 2 meta-program.

use psa_minicpp::ast::{self, Block, Item, Module, NodeId, Pragma, Stmt, StmtKind};
use psa_minicpp::Span;
use std::fmt;

/// Errors raised by edit operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditError {
    pub message: String,
}

impl EditError {
    pub fn new(message: impl Into<String>) -> Self {
        EditError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edit error: {}", self.message)
    }
}

impl std::error::Error for EditError {}

/// Where to splice relative to the anchor statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Position {
    Before,
    After,
}

/// Apply `f` to the block containing statement `target` (and the statement's
/// index within it). Returns `Err` if no such statement exists.
fn with_containing_block<R>(
    module: &mut Module,
    target: NodeId,
    f: impl FnOnce(&mut Block, usize, &mut u32) -> R,
) -> Result<R, EditError> {
    // Split borrows: the id counter travels separately from the item tree.
    let mut next_id = module.next_id;
    let mut f = Some(f);
    let mut result = None;

    fn search<R>(
        block: &mut Block,
        target: NodeId,
        next_id: &mut u32,
        f: &mut Option<impl FnOnce(&mut Block, usize, &mut u32) -> R>,
        result: &mut Option<R>,
    ) {
        if result.is_some() {
            return;
        }
        if let Some(idx) = block.stmts.iter().position(|s| s.id == target) {
            let g = f.take().expect("callback used once");
            *result = Some(g(block, idx, next_id));
            return;
        }
        for stmt in &mut block.stmts {
            match &mut stmt.kind {
                StmtKind::For(l) => search(&mut l.body, target, next_id, f, result),
                StmtKind::If { then, els, .. } => {
                    search(then, target, next_id, f, result);
                    if let Some(els) = els {
                        search(els, target, next_id, f, result);
                    }
                }
                StmtKind::While { body, .. } => search(body, target, next_id, f, result),
                StmtKind::Block(b) => search(b, target, next_id, f, result),
                _ => {}
            }
            if result.is_some() {
                return;
            }
        }
    }

    for item in &mut module.items {
        if let Item::Function(func) = item {
            search(&mut func.body, target, &mut next_id, &mut f, &mut result);
            if result.is_some() {
                break;
            }
        }
    }
    module.next_id = next_id;
    result.ok_or_else(|| EditError::new(format!("statement {target} not found in any block")))
}

/// Insert `stmt` before or after the statement `target`. Fresh node ids are
/// assigned to the inserted subtree.
pub fn insert_stmt(
    module: &mut Module,
    target: NodeId,
    pos: Position,
    mut stmt: Stmt,
) -> Result<NodeId, EditError> {
    with_containing_block(module, target, move |block, idx, next_id| {
        ast::refresh_stmt_ids(next_id, &mut stmt);
        let id = stmt.id;
        let at = match pos {
            Position::Before => idx,
            Position::After => idx + 1,
        };
        block.stmts.insert(at, stmt);
        id
    })
}

/// Replace the statement `target` with `replacement`, returning the original.
/// Fresh ids are assigned to the replacement subtree.
pub fn replace_stmt(
    module: &mut Module,
    target: NodeId,
    mut replacement: Stmt,
) -> Result<Stmt, EditError> {
    with_containing_block(module, target, move |block, idx, next_id| {
        ast::refresh_stmt_ids(next_id, &mut replacement);
        std::mem::replace(&mut block.stmts[idx], replacement)
    })
}

/// Remove and return the statement `target`.
pub fn take_stmt(module: &mut Module, target: NodeId) -> Result<Stmt, EditError> {
    with_containing_block(module, target, |block, idx, _| block.stmts.remove(idx))
}

/// Attach a pragma line above the statement `target` — the core
/// instrumentation primitive (`#pragma unroll $n`, `omp parallel for`, …).
pub fn add_pragma(
    module: &mut Module,
    target: NodeId,
    text: impl Into<String>,
) -> Result<(), EditError> {
    let text = text.into();
    with_containing_block(module, target, move |block, idx, next_id| {
        let id = NodeId(*next_id);
        *next_id += 1;
        block.stmts[idx].pragmas.push(Pragma {
            id,
            span: Span::SYNTHETIC,
            text,
        });
    })
}

/// Remove all pragmas whose head word is `head` from the statement `target`.
/// Returns how many were removed.
pub fn remove_pragmas(module: &mut Module, target: NodeId, head: &str) -> Result<usize, EditError> {
    let head = head.to_string();
    with_containing_block(module, target, move |block, idx, _| {
        let pragmas = &mut block.stmts[idx].pragmas;
        let before = pragmas.len();
        pragmas.retain(|p| p.head() != head);
        before - pragmas.len()
    })
}

/// Replace any existing `unroll` pragma with `unroll factor` — the DSE tasks
/// re-instrument the same loop each iteration.
pub fn set_unroll_pragma(
    module: &mut Module,
    target: NodeId,
    factor: u64,
) -> Result<(), EditError> {
    remove_pragmas(module, target, "unroll")?;
    add_pragma(module, target, format!("unroll {factor}"))
}

/// Wrap the statement `target` in `__psa_timer_start(id)` /
/// `__psa_timer_stop(id)` probes — how the hotspot-detection meta-program
/// instruments candidate loops with timers.
pub fn wrap_with_timer(
    module: &mut Module,
    target: NodeId,
    timer_id: i64,
) -> Result<(), EditError> {
    use psa_minicpp::ast::build;
    let start = build::expr_stmt(build::call("__psa_timer_start", vec![build::int(timer_id)]));
    let stop = build::expr_stmt(build::call("__psa_timer_stop", vec![build::int(timer_id)]));
    insert_stmt(module, target, Position::Before, start)?;
    insert_stmt(module, target, Position::After, stop)?;
    Ok(())
}

/// Replace the statement `target` with the statements produced by `f`.
/// `f` receives the original statement (by value) and the module's id
/// counter; every returned statement is re-keyed with fresh ids. This is the
/// general primitive behind loop unrolling and reduction rewriting.
pub fn rewrite_stmt(
    module: &mut Module,
    target: NodeId,
    f: impl FnOnce(Stmt, &mut u32) -> Vec<Stmt>,
) -> Result<(), EditError> {
    with_containing_block(module, target, move |block, idx, next_id| {
        let original = block.stmts.remove(idx);
        let mut replacements = f(original, next_id);
        for stmt in &mut replacements {
            ast::refresh_stmt_ids(next_id, stmt);
        }
        // splice in place
        for (offset, stmt) in replacements.into_iter().enumerate() {
            block.stmts.insert(idx + offset, stmt);
        }
    })
}

/// Append a function to the module (kernel extraction creates new
/// functions). Ids inside `func` must already be fresh; this only registers
/// the item.
pub fn add_function(module: &mut Module, func: psa_minicpp::Function) {
    module.items.push(Item::Function(func));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;
    use psa_minicpp::ast::build;
    use psa_minicpp::{parse_module, print_module};

    const SRC: &str =
        "void knl(double* a, int n) {\nfor (int i = 0; i < n; i++) {\na[i] = 0.0;\n}\n}";

    fn first_loop_stmt(m: &Module) -> NodeId {
        query::loops(m, |_| true)[0].stmt_id
    }

    #[test]
    fn insert_before_and_after() {
        let mut m = parse_module(SRC, "t").unwrap();
        let target = first_loop_stmt(&m);
        insert_stmt(
            &mut m,
            target,
            Position::Before,
            build::expr_stmt(build::call("sink", vec![build::int(1)])),
        )
        .unwrap();
        insert_stmt(
            &mut m,
            target,
            Position::After,
            build::expr_stmt(build::call("sink", vec![build::int(2)])),
        )
        .unwrap();
        let out = print_module(&m);
        let p1 = out.find("sink(1);").unwrap();
        let pf = out.find("for (").unwrap();
        let p2 = out.find("sink(2);").unwrap();
        assert!(p1 < pf && pf < p2, "{out}");
    }

    #[test]
    fn inserted_subtrees_get_fresh_ids() {
        let mut m = parse_module(SRC, "t").unwrap();
        let target = first_loop_stmt(&m);
        let before = m.next_id;
        let new_id = insert_stmt(
            &mut m,
            target,
            Position::Before,
            build::expr_stmt(build::int(0)),
        )
        .unwrap();
        assert!(new_id.0 >= before);
        assert!(m.next_id > before);
    }

    #[test]
    fn add_and_remove_pragmas() {
        let mut m = parse_module(SRC, "t").unwrap();
        let target = first_loop_stmt(&m);
        add_pragma(&mut m, target, "unroll 2").unwrap();
        assert!(print_module(&m).contains("#pragma unroll 2"));
        set_unroll_pragma(&mut m, target, 8).unwrap();
        let out = print_module(&m);
        assert!(out.contains("#pragma unroll 8"));
        assert!(
            !out.contains("#pragma unroll 2"),
            "old factor replaced: {out}"
        );
        let removed = remove_pragmas(&mut m, target, "unroll").unwrap();
        assert_eq!(removed, 1);
        assert!(!print_module(&m).contains("#pragma"));
    }

    #[test]
    fn timer_wrapping_is_executable() {
        use psa_interp::{Interpreter, RunConfig};
        let mut m = parse_module(
            "int main() { int s = 0; for (int i = 0; i < 50; i++) { s += i; } return s; }",
            "t",
        )
        .unwrap();
        let target = first_loop_stmt(&m);
        wrap_with_timer(&mut m, target, 42).unwrap();
        let mut interp = Interpreter::new(&m, RunConfig::default());
        let v = interp.run_main().unwrap();
        assert_eq!(v, psa_interp::Value::Int(1225));
        let t = interp.profile().timers[&42];
        assert_eq!(t.starts, 1);
        assert!(t.cycles > 0);
    }

    #[test]
    fn replace_and_take() {
        let mut m = parse_module(SRC, "t").unwrap();
        let target = first_loop_stmt(&m);
        let original = replace_stmt(
            &mut m,
            target,
            build::expr_stmt(build::call("knl2", vec![])),
        )
        .unwrap();
        assert!(matches!(original.kind, StmtKind::For(_)));
        let out = print_module(&m);
        assert!(out.contains("knl2();"));
        assert!(!out.contains("for ("));
    }

    #[test]
    fn editing_nested_statement() {
        let mut m = parse_module(
            "void f(int n, double* a) { for (int i = 0; i < n; i++) { if (i > 0) { a[i] = 1.0; } } }",
            "t",
        )
        .unwrap();
        // Target the innermost assignment.
        let assign_id = {
            let f = m.function("f").unwrap();
            let psa_minicpp::StmtKind::For(l) = &f.body.stmts[0].kind else {
                panic!()
            };
            let psa_minicpp::StmtKind::If { then, .. } = &l.body.stmts[0].kind else {
                panic!()
            };
            then.stmts[0].id
        };
        add_pragma(&mut m, assign_id, "psa note").unwrap();
        assert!(print_module(&m).contains("#pragma psa note"));
    }

    #[test]
    fn missing_target_is_an_error() {
        let mut m = parse_module(SRC, "t").unwrap();
        let err = add_pragma(&mut m, NodeId(123456), "x").unwrap_err();
        assert!(err.to_string().contains("not found"));
    }
}
