//! The query mechanism: programmatic AST search with contextual predicates.
//!
//! Queries return *match records* carrying the context the paper's
//! predicates need — enclosing function, nesting depth, outermost-ness,
//! static trip counts — so a design-flow task can express e.g. the Fig. 2
//! query:
//!
//! ```
//! # use psa_artisan::{Ast, query};
//! let ast = Ast::from_source(
//!     "void knl(double* a, int n) { for (int i = 0; i < n; i++) { a[i] = 0.0; } }",
//!     "app.cpp",
//! ).unwrap();
//! let loops = query::loops(&ast.module, |m| m.function == "knl" && m.is_outermost);
//! assert_eq!(loops.len(), 1);
//! ```

use psa_minicpp::ast::*;
use psa_minicpp::Span;
use std::collections::HashSet;

/// A matched loop together with its structural context.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopMatch {
    /// Node id of the [`ForLoop`].
    pub id: NodeId,
    /// Node id of the enclosing [`Stmt`] (the `StmtKind::For` wrapper),
    /// which is the handle `edit` operations take.
    pub stmt_id: NodeId,
    /// Name of the enclosing function.
    pub function: String,
    /// Loop nesting depth inside the function (0 = outermost).
    pub depth: usize,
    /// Induction variable name.
    pub var: String,
    /// True if no `for` loop encloses this one within the function.
    pub is_outermost: bool,
    /// True if the loop body contains no further `for` loops.
    pub is_innermost: bool,
    /// Compile-time trip count if the bounds are literal.
    pub static_trip_count: Option<u64>,
    /// Node ids of enclosing loops, outermost first.
    pub ancestors: Vec<NodeId>,
    /// Source location.
    pub span: Span,
}

/// Find all `for` loops satisfying `pred`, in source order.
pub fn loops<F: FnMut(&LoopMatch) -> bool>(module: &Module, mut pred: F) -> Vec<LoopMatch> {
    let mut out = Vec::new();
    for item in &module.items {
        if let Item::Function(f) = item {
            let mut ancestors = Vec::new();
            collect(&f.body, f, &mut ancestors, &mut |m| {
                if pred(m) {
                    out.push(m.clone());
                }
            });
        }
    }
    out
}

fn collect<'a>(
    block: &'a Block,
    func: &'a Function,
    ancestors: &mut Vec<NodeId>,
    sink: &mut impl FnMut(&LoopMatch),
) {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::For(l) => {
                let m = LoopMatch {
                    id: l.id,
                    stmt_id: stmt.id,
                    function: func.name.clone(),
                    depth: ancestors.len(),
                    var: l.var.clone(),
                    is_outermost: ancestors.is_empty(),
                    is_innermost: !contains_for(&l.body),
                    static_trip_count: l.static_trip_count(),
                    ancestors: ancestors.clone(),
                    span: l.span,
                };
                sink(&m);
                ancestors.push(l.id);
                collect(&l.body, func, ancestors, sink);
                ancestors.pop();
            }
            StmtKind::If { then, els, .. } => {
                collect(then, func, ancestors, sink);
                if let Some(els) = els {
                    collect(els, func, ancestors, sink);
                }
            }
            StmtKind::While { body, .. } => collect(body, func, ancestors, sink),
            StmtKind::Block(b) => collect(b, func, ancestors, sink),
            _ => {}
        }
    }
}

fn contains_for(block: &Block) -> bool {
    block.stmts.iter().any(|s| match &s.kind {
        StmtKind::For(_) => true,
        StmtKind::If { then, els, .. } => {
            contains_for(then) || els.as_ref().is_some_and(contains_for)
        }
        StmtKind::While { body, .. } => contains_for(body),
        StmtKind::Block(b) => contains_for(b),
        _ => false,
    })
}

/// Look up a `for` loop by node id anywhere in the module.
pub fn find_loop(module: &Module, id: NodeId) -> Option<&ForLoop> {
    fn in_block(block: &Block, id: NodeId) -> Option<&ForLoop> {
        for stmt in &block.stmts {
            match &stmt.kind {
                StmtKind::For(l) => {
                    if l.id == id {
                        return Some(l);
                    }
                    if let Some(found) = in_block(&l.body, id) {
                        return Some(found);
                    }
                }
                StmtKind::If { then, els, .. } => {
                    if let Some(found) = in_block(then, id) {
                        return Some(found);
                    }
                    if let Some(els) = els {
                        if let Some(found) = in_block(els, id) {
                            return Some(found);
                        }
                    }
                }
                StmtKind::While { body, .. } | StmtKind::Block(body) => {
                    let b: &Block = body;
                    if let Some(found) = in_block(b, id) {
                        return Some(found);
                    }
                }
                _ => {}
            }
        }
        None
    }
    module.items.iter().find_map(|item| match item {
        Item::Function(f) => in_block(&f.body, id),
        _ => None,
    })
}

/// Find the statement with the given id anywhere in the module.
pub fn find_stmt(module: &Module, id: NodeId) -> Option<&Stmt> {
    fn in_block(block: &Block, id: NodeId) -> Option<&Stmt> {
        for stmt in &block.stmts {
            if stmt.id == id {
                return Some(stmt);
            }
            let found = match &stmt.kind {
                StmtKind::For(l) => in_block(&l.body, id),
                StmtKind::If { then, els, .. } => {
                    in_block(then, id).or_else(|| els.as_ref().and_then(|b| in_block(b, id)))
                }
                StmtKind::While { body, .. } | StmtKind::Block(body) => in_block(body, id),
                _ => None,
            };
            if found.is_some() {
                return found;
            }
        }
        None
    }
    module.items.iter().find_map(|item| match item {
        Item::Function(f) => in_block(&f.body, id),
        Item::Global(s) => (s.id == id).then_some(s),
    })
}

/// Which function (if any) encloses a statement — the `fn.encloses(loop)`
/// predicate.
pub fn enclosing_function(module: &Module, stmt_id: NodeId) -> Option<&Function> {
    module.items.iter().find_map(|item| match item {
        Item::Function(f) => contains_stmt(&f.body, stmt_id).then_some(f),
        _ => None,
    })
}

fn contains_stmt(block: &Block, id: NodeId) -> bool {
    block.stmts.iter().any(|stmt| {
        stmt.id == id
            || match &stmt.kind {
                StmtKind::For(l) => contains_stmt(&l.body, id),
                StmtKind::If { then, els, .. } => {
                    contains_stmt(then, id) || els.as_ref().is_some_and(|b| contains_stmt(b, id))
                }
                StmtKind::While { body, .. } | StmtKind::Block(body) => contains_stmt(body, id),
                _ => false,
            }
    })
}

/// Names of all functions called within a subtree (direct calls only).
pub fn called_functions(block: &Block) -> Vec<String> {
    use psa_minicpp::visit::{self, Visit};
    struct Calls {
        seen: HashSet<String>,
        order: Vec<String>,
    }
    impl Visit for Calls {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Call { callee, .. } = &e.kind {
                if self.seen.insert(callee.clone()) {
                    self.order.push(callee.clone());
                }
            }
            visit::walk_expr(self, e);
        }
    }
    let mut c = Calls {
        seen: HashSet::new(),
        order: Vec::new(),
    };
    c.visit_block(block);
    c.order
}

/// All identifiers *read* in an expression subtree.
pub fn idents_read(expr: &Expr, out: &mut HashSet<String>) {
    use psa_minicpp::visit::{self, Visit};
    struct Reads<'a> {
        out: &'a mut HashSet<String>,
    }
    impl Visit for Reads<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Ident(name) = &e.kind {
                self.out.insert(name.clone());
            }
            visit::walk_expr(self, e);
        }
    }
    Reads { out }.visit_expr(expr);
}

/// Variables assigned (as scalar lvalue base or through array writes) in a
/// block, split into scalar targets and array/pointer targets.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WriteSet {
    /// Names assigned directly (`x = …`, `x += …`).
    pub scalars: HashSet<String>,
    /// Names written through indexing (`a[i] = …`).
    pub arrays: HashSet<String>,
}

/// Compute the write set of a block (recursing through nested control flow).
pub fn write_set(block: &Block) -> WriteSet {
    let mut ws = WriteSet::default();
    fn walk(block: &Block, ws: &mut WriteSet) {
        for stmt in &block.stmts {
            match &stmt.kind {
                StmtKind::Assign { target, .. } => match &target.kind {
                    ExprKind::Ident(name) => {
                        ws.scalars.insert(name.clone());
                    }
                    ExprKind::Index { .. } => {
                        if let Some(base) = target.lvalue_base() {
                            ws.arrays.insert(base.to_string());
                        }
                    }
                    _ => {}
                },
                StmtKind::For(l) => {
                    ws.scalars.insert(l.var.clone());
                    walk(&l.body, ws);
                }
                StmtKind::If { then, els, .. } => {
                    walk(then, ws);
                    if let Some(els) = els {
                        walk(els, ws);
                    }
                }
                StmtKind::While { body, .. } | StmtKind::Block(body) => walk(body, ws),
                _ => {}
            }
        }
    }
    walk(block, &mut ws);
    ws
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_minicpp::parse_module;

    const NESTED: &str = "void knl(double* a, int n) {\
        for (int i = 0; i < n; i++) {\
          for (int j = 0; j < 4; j++) { a[i * 4 + j] = 0.0; }\
        }\
      }\
      int main() { for (int k = 0; k < 2; k++) { knl(0, 0); } return 0; }";

    #[test]
    fn fig2_query_outermost_in_kernel() {
        let m = parse_module(NESTED, "t").unwrap();
        let matches = loops(&m, |l| l.function == "knl" && l.is_outermost);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].var, "i");
        // The nested j-loop and main's k-loop are excluded, as in Fig. 2.
        let all = loops(&m, |_| true);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn loop_context_fields() {
        let m = parse_module(NESTED, "t").unwrap();
        let all = loops(&m, |_| true);
        let j = all.iter().find(|l| l.var == "j").unwrap();
        assert_eq!(j.depth, 1);
        assert!(!j.is_outermost);
        assert!(j.is_innermost);
        assert_eq!(j.static_trip_count, Some(4));
        assert_eq!(j.ancestors.len(), 1);
        let i = all.iter().find(|l| l.var == "i").unwrap();
        assert!(i.is_outermost);
        assert!(!i.is_innermost);
        assert_eq!(i.static_trip_count, None);
    }

    #[test]
    fn find_loop_and_stmt_by_id() {
        let m = parse_module(NESTED, "t").unwrap();
        let all = loops(&m, |_| true);
        let l = find_loop(&m, all[1].id).unwrap();
        assert_eq!(l.var, "j");
        let s = find_stmt(&m, all[0].stmt_id).unwrap();
        assert!(matches!(s.kind, StmtKind::For(_)));
        assert!(find_loop(&m, NodeId(9999)).is_none());
    }

    #[test]
    fn enclosing_function_resolves() {
        let m = parse_module(NESTED, "t").unwrap();
        let all = loops(&m, |_| true);
        assert_eq!(enclosing_function(&m, all[0].stmt_id).unwrap().name, "knl");
        assert_eq!(enclosing_function(&m, all[2].stmt_id).unwrap().name, "main");
    }

    #[test]
    fn called_functions_in_order() {
        let m = parse_module(
            "void f(double* a) { a[0] = sqrt(2.0) + sqrt(3.0); g(); } void g() { }",
            "t",
        )
        .unwrap();
        let calls = called_functions(&m.function("f").unwrap().body);
        assert_eq!(calls, vec!["sqrt".to_string(), "g".to_string()]);
    }

    #[test]
    fn write_set_distinguishes_scalars_and_arrays() {
        let m = parse_module(
            "void f(double* a, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += a[i]; a[i] = 0.0; } }",
            "t",
        )
        .unwrap();
        let ws = write_set(&m.function("f").unwrap().body);
        assert!(ws.scalars.contains("s"));
        assert!(ws.scalars.contains("i"), "loop vars count as scalar writes");
        assert!(ws.arrays.contains("a"));
        assert!(!ws.arrays.contains("s"));
    }

    #[test]
    fn loops_inside_conditionals_are_found() {
        let m = parse_module(
            "void f(int n, bool p) { if (p) { for (int i = 0; i < n; i++) { } } else { for (int j = 0; j < n; j++) { } } }",
            "t",
        )
        .unwrap();
        assert_eq!(loops(&m, |_| true).len(), 2);
    }
}
