//! # psa-artisan — the meta-programming layer
//!
//! A Rust re-implementation of the mechanisms the paper's design-flow tasks
//! are built from (the paper uses the Artisan framework, §II-A):
//!
//! * **query** — programmatic AST search with contextual predicates
//!   (`loop.isForStmt ∧ fn.encloses(loop) ∧ loop.is_outermost`), see
//!   [`query`];
//! * **instrument** — splice statements/pragmas relative to existing nodes
//!   (`instrument(before, loop, #pragma unroll $n)`), see [`edit`];
//! * **transforms** — the source-to-source rewrites the task repository
//!   uses: full loop unrolling, hotspot/kernel extraction (outlining),
//!   reduction-dependency removal, single-precision conversion, specialised
//!   math substitution, see [`transforms`];
//! * **export** — ASTs "closely mirror the source-code as written", so
//!   [`Ast::export`] prints human-readable code at any point.
//!
//! Meta-programs in `psaflow-core` compose these mechanisms with tool/
//! platform access (the simulated HLS compiler, GPU occupancy model, …) to
//! form complete design-flow tasks.

pub mod edit;
pub mod query;
pub mod sym;
pub mod transforms;

use psa_minicpp::{parse_module, print_module, Module, Result};

/// The Artisan-style AST handle: owns a module, supports query /
/// instrument / transform / export.
///
/// Mirrors `ast ⇐ Ast(src)` from the paper's Fig. 2 meta-program.
#[derive(Debug, Clone, PartialEq)]
pub struct Ast {
    /// The underlying module; tasks may operate on it directly.
    pub module: Module,
}

impl Ast {
    /// Parse source text into an AST handle.
    pub fn from_source(source: &str, name: &str) -> Result<Ast> {
        Ok(Ast {
            module: parse_module(source, name)?,
        })
    }

    /// Wrap an already-built module.
    pub fn from_module(module: Module) -> Ast {
        Ast { module }
    }

    /// Export back to human-readable source (the `design.export(mod_src)`
    /// step of the paper's meta-programs).
    pub fn export(&self) -> String {
        print_module(&self.module)
    }

    /// Stable structural fingerprint of the module — the content address
    /// the evaluation cache keys dynamic results by. Ignores node ids and
    /// spans, so re-parsing the exported source preserves it while any
    /// transform produces a fresh one.
    pub fn fingerprint(&self) -> u64 {
        psa_minicpp::module_fingerprint(&self.module)
    }

    /// Lines of code of the exported design — the paper's productivity
    /// metric (Table I). Counts non-blank lines.
    pub fn loc(&self) -> usize {
        self.export()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_roundtrip_and_loc() {
        let ast = Ast::from_source("int main() {\n  return 0;\n}", "app.cpp").unwrap();
        assert_eq!(ast.loc(), 3);
        let reparsed = Ast::from_source(&ast.export(), "app.cpp").unwrap();
        assert_eq!(reparsed.export(), ast.export());
    }
}
