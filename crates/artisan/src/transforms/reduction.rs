//! "Remove Array `+=` Dependency" — rewrite loop-carried memory
//! accumulations into scalar accumulators.
//!
//! A statement `out[e] += v` inside a loop whose index `e` does not depend
//! on the loop variable forces every iteration to read-modify-write the same
//! memory location: a loop-carried dependence that blocks parallelisation
//! and pipelining. The transform hoists the location into a scalar:
//!
//! ```c
//! for (int j = 0; j < n; j++) { fx[i] += f(j); }
//! // becomes
//! double __psa_acc0 = fx[i];
//! for (int j = 0; j < n; j++) { __psa_acc0 += f(j); }
//! fx[i] = __psa_acc0;
//! ```
//!
//! which leaves only a scalar reduction — recognised and handled efficiently
//! by every backend (OpenMP reduction clauses, GPU per-thread registers,
//! FPGA accumulator trees).

use super::TransformError;
use crate::sym::function_symbols;
use crate::{edit, query};
use psa_minicpp::ast::*;
use std::collections::HashSet;

/// Apply the rewrite to every eligible accumulation directly inside the
/// body of the loop with statement id `loop_stmt`. Returns how many
/// accumulators were introduced.
pub fn remove_array_accumulation(
    module: &mut Module,
    loop_stmt: NodeId,
) -> Result<usize, TransformError> {
    let host = query::enclosing_function(module, loop_stmt)
        .ok_or_else(|| TransformError::new(format!("statement {loop_stmt} not in a function")))?;
    let symbols = function_symbols(module, host);

    let stmt = query::find_stmt(module, loop_stmt).expect("in function implies found");
    let StmtKind::For(l) = &stmt.kind else {
        return Err(TransformError::new("target statement is not a for-loop"));
    };
    let loop_var = l.var.clone();

    // Identify eligible accumulations: `arr[idx] op= value` at the top level
    // of the body, where `idx` does not read the loop variable (so it names
    // one fixed location per loop execution) and `arr` is not otherwise
    // written in the body (so the hoisted copy cannot go stale).
    let arrays_written_elsewhere = count_array_writes(&l.body);
    let mut targets = Vec::new();
    for (pos, s) in l.body.stmts.iter().enumerate() {
        if let StmtKind::Assign { target, op, .. } = &s.kind {
            if op.bin_op().is_none() {
                continue;
            }
            let ExprKind::Index { base, index } = &target.kind else {
                continue;
            };
            let Some(arr) = base.as_ident() else { continue };
            let mut read: HashSet<String> = HashSet::new();
            query::idents_read(index, &mut read);
            if read.contains(&loop_var) {
                continue;
            }
            if arrays_written_elsewhere.get(arr).copied().unwrap_or(0) > 1 {
                continue; // other writes to the same array: stay conservative
            }
            let scalar = symbols
                .get(arr)
                .filter(|t| t.is_pointer())
                .map(|t| t.scalar)
                .ok_or_else(|| {
                    TransformError::new(format!("`{arr}` is not a known pointer/array"))
                })?;
            targets.push((pos, scalar));
        }
    }
    if targets.is_empty() {
        return Ok(0);
    }

    let n = targets.len();
    edit::rewrite_stmt(module, loop_stmt, move |stmt, _next_id| {
        let StmtKind::For(mut l) = stmt.kind else {
            unreachable!()
        };
        let mut before: Vec<Stmt> = Vec::with_capacity(n);
        let mut after: Vec<Stmt> = Vec::with_capacity(n);
        for (i, (pos, scalar)) in targets.iter().enumerate() {
            let acc = format!("__psa_acc{i}");
            let body_stmt = &mut l.body.stmts[*pos];
            let StmtKind::Assign { target, op, value } = &mut body_stmt.kind else {
                unreachable!()
            };
            // double __psa_accN = arr[idx];
            before.push(Stmt {
                id: NodeId(u32::MAX),
                span: psa_minicpp::Span::SYNTHETIC,
                pragmas: Vec::new(),
                kind: StmtKind::Decl(VarDecl {
                    id: NodeId(u32::MAX),
                    span: psa_minicpp::Span::SYNTHETIC,
                    ty: Type::scalar(*scalar),
                    name: acc.clone(),
                    array_len: None,
                    init: Some(target.clone()),
                }),
            });
            // arr[idx] = __psa_accN;
            after.push(build::assign(
                target.clone(),
                AssignOp::Set,
                build::ident(&acc),
            ));
            // __psa_accN op= value;  (in place)
            *body_stmt = Stmt {
                id: NodeId(u32::MAX),
                span: body_stmt.span,
                pragmas: std::mem::take(&mut body_stmt.pragmas),
                kind: StmtKind::Assign {
                    target: build::ident(&acc),
                    op: *op,
                    value: value.clone(),
                },
            };
        }
        let mut out = before;
        out.push(Stmt {
            id: NodeId(u32::MAX),
            span: psa_minicpp::Span::SYNTHETIC,
            pragmas: Vec::new(),
            kind: StmtKind::For(l),
        });
        out.extend(after);
        out
    })?;
    Ok(n)
}

/// Count direct array-write statements per base name in a block (recursive).
fn count_array_writes(block: &Block) -> std::collections::HashMap<String, usize> {
    let mut counts = std::collections::HashMap::new();
    fn walk(block: &Block, counts: &mut std::collections::HashMap<String, usize>) {
        for stmt in &block.stmts {
            match &stmt.kind {
                StmtKind::Assign { target, .. } => {
                    if let ExprKind::Index { .. } = &target.kind {
                        if let Some(base) = target.lvalue_base() {
                            *counts.entry(base.to_string()).or_insert(0) += 1;
                        }
                    }
                }
                StmtKind::For(l) => walk(&l.body, counts),
                StmtKind::If { then, els, .. } => {
                    walk(then, counts);
                    if let Some(els) = els {
                        walk(els, counts);
                    }
                }
                StmtKind::While { body, .. } | StmtKind::Block(body) => walk(body, counts),
                _ => {}
            }
        }
    }
    walk(block, &mut counts);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_interp::{Interpreter, RunConfig};
    use psa_minicpp::{parse_module, print_module};

    const NBODY_LIKE: &str = "int main() {\
        int n = 16;\
        double* fx = alloc_double(n);\
        double* px = alloc_double(n);\
        fill_random(px, n, 9);\
        for (int i = 0; i < n; i++) {\
          for (int j = 0; j < n; j++) {\
            fx[i] += px[j] * 0.5;\
          }\
        }\
        double s = 0.0;\
        for (int i = 0; i < n; i++) { s += fx[i]; }\
        return (int)(s * 100.0);\
      }";

    #[test]
    fn hoists_accumulator_and_preserves_semantics() {
        let reference = {
            let m = parse_module(NBODY_LIKE, "t").unwrap();
            Interpreter::new(&m, RunConfig::default())
                .run_main()
                .unwrap()
        };
        let mut m = parse_module(NBODY_LIKE, "t").unwrap();
        let inner = query::loops(&m, |l| l.depth == 1)[0].stmt_id;
        let count = remove_array_accumulation(&mut m, inner).unwrap();
        assert_eq!(count, 1);
        let out = print_module(&m);
        assert!(out.contains("double __psa_acc0 = fx[i];"), "{out}");
        assert!(out.contains("__psa_acc0 += px[j] * 0.5;"), "{out}");
        assert!(out.contains("fx[i] = __psa_acc0;"), "{out}");
        let result = Interpreter::new(&m, RunConfig::default())
            .run_main()
            .unwrap();
        assert_eq!(reference, result);
    }

    #[test]
    fn skips_index_depending_on_loop_var() {
        let src = "void f(double* a, int n) { for (int j = 0; j < n; j++) { a[j] += 1.0; } }";
        let mut m = parse_module(src, "t").unwrap();
        let target = query::loops(&m, |_| true)[0].stmt_id;
        assert_eq!(remove_array_accumulation(&mut m, target).unwrap(), 0);
        assert!(print_module(&m).contains("a[j] += 1.0;"));
    }

    #[test]
    fn skips_when_array_written_elsewhere() {
        let src = "void f(double* a, int i, int n) { for (int j = 0; j < n; j++) { a[i] += 1.0; a[j + 1] = 0.0; } }";
        let mut m = parse_module(src, "t").unwrap();
        let target = query::loops(&m, |_| true)[0].stmt_id;
        assert_eq!(remove_array_accumulation(&mut m, target).unwrap(), 0);
    }

    #[test]
    fn handles_multiple_accumulations() {
        let src = "void f(double* fx, double* fy, int i, int n) {\
                     for (int j = 0; j < n; j++) { fx[i] += 1.0; fy[i] += 2.0; }\
                   }";
        let mut m = parse_module(src, "t").unwrap();
        let target = query::loops(&m, |_| true)[0].stmt_id;
        assert_eq!(remove_array_accumulation(&mut m, target).unwrap(), 2);
        let out = print_module(&m);
        assert!(
            out.contains("__psa_acc0") && out.contains("__psa_acc1"),
            "{out}"
        );
        // Result must re-parse.
        parse_module(&out, "t").unwrap();
    }

    #[test]
    fn float_arrays_get_float_accumulators() {
        let src =
            "void f(float* a, int i, int n) { for (int j = 0; j < n; j++) { a[i] += 1.0f; } }";
        let mut m = parse_module(src, "t").unwrap();
        let target = query::loops(&m, |_| true)[0].stmt_id;
        remove_array_accumulation(&mut m, target).unwrap();
        assert!(print_module(&m).contains("float __psa_acc0 = a[i];"));
    }
}
