//! Single-precision conversion — "Employ SP Numeric Literals" and
//! "Employ SP Math Fns".
//!
//! Both GPU and FPGA paths in the paper's flow apply these: consumer GPUs
//! have far higher FP32 than FP64 throughput, and FP32 FPGA datapaths use a
//! fraction of the DSP/LUT area. The transforms operate on one function
//! (the extracted kernel); the host code keeps double precision.

use super::TransformError;
use psa_interp::intrinsics::sp_variant;
use psa_minicpp::ast::*;
use psa_minicpp::visit::{self, VisitMut};

/// Convert every `double` literal, declaration, parameter, and cast in
/// function `fn_name` to `float`. Returns the number of rewrites.
pub fn employ_sp_literals(module: &mut Module, fn_name: &str) -> Result<usize, TransformError> {
    struct ToSp {
        count: usize,
    }
    impl VisitMut for ToSp {
        fn visit_expr_mut(&mut self, e: &mut Expr) {
            match &mut e.kind {
                ExprKind::FloatLit { single, .. } if !*single => {
                    *single = true;
                    self.count += 1;
                }
                ExprKind::Cast { ty, .. } if ty.scalar == Scalar::Double => {
                    ty.scalar = Scalar::Float;
                    self.count += 1;
                }
                _ => {}
            }
            visit::walk_expr_mut(self, e);
        }

        fn visit_stmt_mut(&mut self, s: &mut Stmt) {
            if let StmtKind::Decl(d) = &mut s.kind {
                if d.ty.scalar == Scalar::Double {
                    d.ty.scalar = Scalar::Float;
                    self.count += 1;
                }
            }
            visit::walk_stmt_mut(self, s);
        }
    }

    let func = module
        .function_mut(fn_name)
        .ok_or_else(|| TransformError::new(format!("no function `{fn_name}`")))?;
    let mut v = ToSp { count: 0 };
    for p in &mut func.params {
        if p.ty.scalar == Scalar::Double {
            p.ty.scalar = Scalar::Float;
            v.count += 1;
        }
    }
    if func.ret.scalar == Scalar::Double {
        func.ret.scalar = Scalar::Float;
        v.count += 1;
    }
    v.visit_function_mut(func);
    Ok(v.count)
}

/// Replace double-precision math calls (`sqrt`, `exp`, …) with their
/// single-precision variants (`sqrtf`, `expf`, …) in function `fn_name`.
/// Returns the number of calls rewritten.
pub fn employ_sp_math(module: &mut Module, fn_name: &str) -> Result<usize, TransformError> {
    struct ToSpMath {
        count: usize,
    }
    impl VisitMut for ToSpMath {
        fn visit_expr_mut(&mut self, e: &mut Expr) {
            if let ExprKind::Call { callee, .. } = &mut e.kind {
                if let Some(sp) = sp_variant(callee) {
                    *callee = sp.to_string();
                    self.count += 1;
                }
            }
            visit::walk_expr_mut(self, e);
        }
    }
    let func = module
        .function_mut(fn_name)
        .ok_or_else(|| TransformError::new(format!("no function `{fn_name}`")))?;
    let mut v = ToSpMath { count: 0 };
    v.visit_function_mut(func);
    Ok(v.count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_minicpp::{parse_module, print_module};

    const KNL: &str = "void knl(double* a, int n) {\
        for (int i = 0; i < n; i++) {\
          double x = (double)i;\
          a[i] = sqrt(x) * 2.0 + exp(x * 0.5);\
        }\
      }";

    #[test]
    fn sp_literals_rewrites_types_and_literals() {
        let mut m = parse_module(KNL, "t").unwrap();
        let n = employ_sp_literals(&mut m, "knl").unwrap();
        assert!(n >= 4, "param, decl, cast, two literals: got {n}");
        let out = print_module(&m);
        assert!(out.contains("void knl(float* a, int n)"), "{out}");
        assert!(out.contains("float x = (float)i;"), "{out}");
        assert!(out.contains("2.0f"), "{out}");
        assert!(out.contains("0.5f"), "{out}");
        parse_module(&out, "t").unwrap();
    }

    #[test]
    fn sp_math_rewrites_calls_only() {
        let mut m = parse_module(KNL, "t").unwrap();
        let n = employ_sp_math(&mut m, "knl").unwrap();
        assert_eq!(n, 2);
        let out = print_module(&m);
        assert!(out.contains("sqrtf("), "{out}");
        assert!(out.contains("expf("), "{out}");
        // Types untouched by the math transform.
        assert!(out.contains("double* a"), "{out}");
    }

    #[test]
    fn transforms_scope_to_named_function_only() {
        let src = format!("{KNL} void host() {{ double y = sqrt(2.0); sink(y); }}");
        let mut m = parse_module(&src, "t").unwrap();
        employ_sp_literals(&mut m, "knl").unwrap();
        employ_sp_math(&mut m, "knl").unwrap();
        let out = print_module(&m);
        assert!(
            out.contains("double y = sqrt(2.0);"),
            "host untouched: {out}"
        );
    }

    #[test]
    fn unknown_function_is_an_error() {
        let mut m = parse_module(KNL, "t").unwrap();
        assert!(employ_sp_literals(&mut m, "nope").is_err());
        assert!(employ_sp_math(&mut m, "nope").is_err());
    }

    #[test]
    fn idempotent_on_second_application() {
        let mut m = parse_module(KNL, "t").unwrap();
        employ_sp_literals(&mut m, "knl").unwrap();
        let again = employ_sp_literals(&mut m, "knl").unwrap();
        assert_eq!(again, 0);
        employ_sp_math(&mut m, "knl").unwrap();
        assert_eq!(employ_sp_math(&mut m, "knl").unwrap(), 0);
    }
}
