//! "Employ Specialised Math Fns" — peephole strength reduction into the
//! hardware-friendly intrinsics GPUs provide:
//!
//! * `1.0 / sqrt(x)`  → `rsqrt(x)` (one SFU instruction on NVIDIA parts),
//! * `1.0 / sqrtf(x)` → `rsqrtf(x)`,
//! * `pow(x, 2.0)`    → `x * x` (avoids the transcendental pipeline).

use super::TransformError;
use psa_minicpp::ast::*;
use psa_minicpp::visit::{self, VisitMut};

/// Apply the specialised-math rewrites within function `fn_name`. Returns
/// the number of rewrites performed.
pub fn employ_specialised_math(
    module: &mut Module,
    fn_name: &str,
) -> Result<usize, TransformError> {
    struct Rewriter {
        count: usize,
    }

    impl VisitMut for Rewriter {
        fn visit_expr_mut(&mut self, e: &mut Expr) {
            // Bottom-up: rewrite children first so nested patterns compose.
            visit::walk_expr_mut(self, e);

            // 1.0 / sqrt(x)  →  rsqrt(x)
            if let ExprKind::Binary {
                op: BinOp::Div,
                lhs,
                rhs,
            } = &e.kind
            {
                let one = matches!(lhs.kind, ExprKind::FloatLit { value, .. } if value == 1.0)
                    || matches!(lhs.kind, ExprKind::IntLit(1));
                if one {
                    if let ExprKind::Call { callee, args } = &rhs.kind {
                        let target = match callee.as_str() {
                            "sqrt" => Some("rsqrt"),
                            "sqrtf" => Some("rsqrtf"),
                            _ => None,
                        };
                        if let (Some(name), 1) = (target, args.len()) {
                            let arg = args[0].clone();
                            e.kind = ExprKind::Call {
                                callee: name.to_string(),
                                args: vec![arg],
                            };
                            self.count += 1;
                            return;
                        }
                    }
                }
            }

            // pow(x, 2) → x * x (only when x is a simple operand: repeating
            // a complex expression would duplicate work and side-effect-free
            // analysis is out of scope for a peephole pass).
            if let ExprKind::Call { callee, args } = &e.kind {
                if (callee == "pow" || callee == "powf") && args.len() == 2 {
                    let is_two = matches!(args[1].kind, ExprKind::IntLit(2))
                        || matches!(args[1].kind, ExprKind::FloatLit { value, .. } if value == 2.0);
                    let is_simple = matches!(
                        args[0].kind,
                        ExprKind::Ident(_)
                            | ExprKind::Index { .. }
                            | ExprKind::IntLit(_)
                            | ExprKind::FloatLit { .. }
                    );
                    if is_two && is_simple {
                        let x = args[0].clone();
                        e.kind = ExprKind::Binary {
                            op: BinOp::Mul,
                            lhs: Box::new(x.clone()),
                            rhs: Box::new(x),
                        };
                        self.count += 1;
                    }
                }
            }
        }
    }

    let func = module
        .function_mut(fn_name)
        .ok_or_else(|| TransformError::new(format!("no function `{fn_name}`")))?;
    let mut r = Rewriter { count: 0 };
    r.visit_function_mut(func);
    // Re-key: cloned subexpressions must not share ids.
    let mut body = std::mem::replace(
        &mut module.function_mut(fn_name).expect("still there").body,
        Block {
            id: NodeId(0),
            span: psa_minicpp::Span::SYNTHETIC,
            stmts: Vec::new(),
        },
    );
    let mut next = module.next_id;
    psa_minicpp::ast::refresh_block_ids(&mut next, &mut body);
    module.next_id = next;
    module.function_mut(fn_name).expect("still there").body = body;
    Ok(r.count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_interp::{Interpreter, RunConfig, Value};
    use psa_minicpp::{parse_module, print_module};

    #[test]
    fn rsqrt_pattern() {
        let mut m = parse_module(
            "void knl(double* a, int n) { for (int i = 0; i < n; i++) { a[i] = 1.0 / sqrt(a[i]); } }",
            "t",
        )
        .unwrap();
        assert_eq!(employ_specialised_math(&mut m, "knl").unwrap(), 1);
        let out = print_module(&m);
        assert!(out.contains("a[i] = rsqrt(a[i]);"), "{out}");
    }

    #[test]
    fn rsqrtf_pattern_after_sp() {
        let mut m = parse_module(
            "void knl(float* a, int n) { for (int i = 0; i < n; i++) { a[i] = 1.0f / sqrtf(a[i]); } }",
            "t",
        )
        .unwrap();
        assert_eq!(employ_specialised_math(&mut m, "knl").unwrap(), 1);
        assert!(print_module(&m).contains("rsqrtf(a[i])"));
    }

    #[test]
    fn pow_squared_becomes_multiply() {
        let mut m = parse_module(
            "double knl(double x) { return pow(x, 2.0) + pow(x + 1.0, 2.0); }",
            "t",
        )
        .unwrap();
        // Only the simple-operand pow is rewritten.
        assert_eq!(employ_specialised_math(&mut m, "knl").unwrap(), 1);
        let out = print_module(&m);
        assert!(out.contains("x * x"), "{out}");
        assert!(
            out.contains("pow(x + 1.0, 2.0)"),
            "complex operand kept: {out}"
        );
    }

    #[test]
    fn semantics_preserved() {
        let src = "double knl(double x) { return 1.0 / sqrt(x) + pow(x, 2.0); } \
                   int main() { return (int)(knl(4.0) * 10.0); }";
        let reference = {
            let m = parse_module(src, "t").unwrap();
            Interpreter::new(&m, RunConfig::default())
                .run_main()
                .unwrap()
        };
        let mut m = parse_module(src, "t").unwrap();
        employ_specialised_math(&mut m, "knl").unwrap();
        let result = Interpreter::new(&m, RunConfig::default())
            .run_main()
            .unwrap();
        assert_eq!(reference, result);
        assert_eq!(result, Value::Int(165)); // (0.5 + 16) * 10
    }

    #[test]
    fn nested_patterns_compose() {
        // pow(x,2) inside 1.0/sqrt(...)'s argument: both rewrites must not
        // interfere (bottom-up traversal).
        let mut m = parse_module(
            "double knl(double x) { return 1.0 / sqrt(pow(x, 2.0)); }",
            "t",
        )
        .unwrap();
        assert_eq!(employ_specialised_math(&mut m, "knl").unwrap(), 2);
        assert!(print_module(&m).contains("rsqrt(x * x)"));
    }
}
