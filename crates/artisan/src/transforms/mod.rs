//! The source-to-source transform library.
//!
//! These are the reusable building blocks the paper's task repository
//! classifies as **T** (Transform) in Fig. 4:
//!
//! | Paper task                       | Implementation                        |
//! |----------------------------------|---------------------------------------|
//! | Hotspot Loop Extraction          | [`extract::extract_kernel`]            |
//! | Remove Array `+=` Dependency     | [`reduction::remove_array_accumulation`] |
//! | Unroll Fixed Loops               | [`unroll::fully_unroll`]               |
//! | Employ SP Numeric Literals       | [`precision::employ_sp_literals`]      |
//! | Employ SP Math Fns               | [`precision::employ_sp_math`]          |
//! | Employ Specialised Math Fns      | [`mathopt::employ_specialised_math`]   |
//! | Multi-Thread Parallel Loops      | pragma insertion via [`crate::edit`]   |
//!
//! Every transform is a pure AST rewrite that leaves the module printable
//! and re-parseable; semantic preservation for the value-level transforms is
//! checked by property tests against the interpreter.

pub mod extract;
pub mod mathopt;
pub mod precision;
pub mod reduction;
pub mod subst;
pub mod unroll;

use std::fmt;

/// Errors raised by transforms that refuse to apply (preconditions guard
/// soundness — a transform never silently produces wrong code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformError {
    pub message: String,
}

impl TransformError {
    pub fn new(message: impl Into<String>) -> Self {
        TransformError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transform error: {}", self.message)
    }
}

impl std::error::Error for TransformError {}

impl From<crate::edit::EditError> for TransformError {
    fn from(e: crate::edit::EditError) -> Self {
        TransformError::new(e.to_string())
    }
}
