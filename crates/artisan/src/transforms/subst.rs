//! Identifier substitution — the workhorse of unrolling.

use psa_minicpp::ast::*;
use psa_minicpp::visit::{self, VisitMut};

struct Subst<'a> {
    name: &'a str,
    replacement: &'a Expr,
    count: usize,
}

impl VisitMut for Subst<'_> {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        if let ExprKind::Ident(name) = &e.kind {
            if name == self.name {
                let id = e.id;
                *e = self.replacement.clone();
                e.id = id; // keep the slot's identity; children re-keyed later
                self.count += 1;
                return;
            }
        }
        visit::walk_expr_mut(self, e);
    }
}

/// Replace every *read* of identifier `name` in `block` with a clone of
/// `replacement`. Returns the number of substitutions. The caller is
/// responsible for checking that `name` is not assigned or redeclared inside
/// `block` (see [`is_subst_safe`]) and for refreshing node ids afterwards.
pub fn substitute_ident(block: &mut Block, name: &str, replacement: &Expr) -> usize {
    let mut s = Subst {
        name,
        replacement,
        count: 0,
    };
    s.visit_block_mut(block);
    s.count
}

/// A block is safe for substituting `name` if nothing inside declares or
/// assigns `name`.
pub fn is_subst_safe(block: &Block, name: &str) -> bool {
    fn check(block: &Block, name: &str) -> bool {
        block.stmts.iter().all(|stmt| match &stmt.kind {
            StmtKind::Decl(d) => d.name != name,
            StmtKind::Assign { target, .. } => target.as_ident() != Some(name),
            StmtKind::For(l) => l.var != name && check(&l.body, name),
            StmtKind::If { then, els, .. } => {
                check(then, name) && els.as_ref().is_none_or(|b| check(b, name))
            }
            StmtKind::While { body, .. } | StmtKind::Block(body) => check(body, name),
            _ => true,
        })
    }
    check(block, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_minicpp::ast::build;
    use psa_minicpp::{parse_module, print_module, StmtKind};

    fn loop_body(src: &str) -> (psa_minicpp::Module, Block) {
        let m = parse_module(src, "t").unwrap();
        let f = m.function("f").unwrap();
        let StmtKind::For(l) = &f.body.stmts[0].kind else {
            panic!()
        };
        let body = l.body.clone();
        (m, body)
    }

    #[test]
    fn substitutes_reads_only() {
        let (_, mut body) = loop_body(
            "void f(double* a, int n) { for (int i = 0; i < n; i++) { a[i] = a[i + 1]; } }",
        );
        let n = substitute_ident(&mut body, "i", &build::int(7));
        assert_eq!(n, 2);
        let printed = print_module(&{
            let mut m = psa_minicpp::Module::new("t");
            m.items
                .push(psa_minicpp::Item::Global(build::expr_stmt(build::int(0))));
            m
        });
        drop(printed);
        // Render the body through a throwaway statement for inspection.
        let as_text = psa_minicpp::printer::print_stmt(&psa_minicpp::Stmt {
            id: psa_minicpp::NodeId(0),
            span: psa_minicpp::Span::SYNTHETIC,
            pragmas: vec![],
            kind: StmtKind::Block(body),
        });
        assert!(as_text.contains("a[7] = a[7 + 1];"), "{as_text}");
    }

    #[test]
    fn safety_detects_assignment_and_shadowing() {
        let (_, body) =
            loop_body("void f(int n) { for (int i = 0; i < n; i++) { int x = i; sink(x); } }");
        assert!(is_subst_safe(&body, "i"));
        assert!(!is_subst_safe(&body, "x"), "x is declared inside");
        let (_, body2) = loop_body(
            "void f(int n) { for (int i = 0; i < n; i++) { for (int j = 0; j < 2; j++) { sink(j); } } }",
        );
        assert!(!is_subst_safe(&body2, "j"), "j is an inner loop variable");
        let (_, body3) =
            loop_body("void f(int n, int k) { for (int i = 0; i < n; i++) { k += 1; } }");
        assert!(!is_subst_safe(&body3, "k"), "k is assigned");
    }
}
