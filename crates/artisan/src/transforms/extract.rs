//! Hotspot loop extraction (function outlining) — the partitioning step.
//!
//! "Once a hotspot is identified, it is extracted into an isolated function
//! for further analysis and eventual offloading, replacing the original loop
//! with a function call." (§II-B)

use super::TransformError;
use crate::sym::function_symbols;
use crate::{edit, query};
use psa_minicpp::ast::*;
use psa_minicpp::Span;
use std::collections::HashSet;

/// What extraction produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedKernel {
    /// Name of the new kernel function.
    pub name: String,
    /// Kernel parameters in call order.
    pub params: Vec<(String, Type)>,
    /// Name of the function the hotspot was extracted from.
    pub host: String,
}

/// Extract the `for` loop with statement id `loop_stmt` into a new function
/// `kernel_name`, replacing the loop with a call.
pub fn extract_kernel(
    module: &mut Module,
    loop_stmt: NodeId,
    kernel_name: &str,
) -> Result<ExtractedKernel, TransformError> {
    if module.function(kernel_name).is_some() {
        return Err(TransformError::new(format!(
            "function `{kernel_name}` already exists"
        )));
    }
    let host = query::enclosing_function(module, loop_stmt)
        .ok_or_else(|| TransformError::new(format!("statement {loop_stmt} not in a function")))?
        .name
        .clone();
    let stmt = query::find_stmt(module, loop_stmt).expect("enclosing function implies stmt");
    let StmtKind::For(l) = &stmt.kind else {
        return Err(TransformError::new("extraction target is not a for-loop"));
    };

    // Globals stay visible inside the kernel; they never become parameters.
    let globals: HashSet<String> = module
        .items
        .iter()
        .filter_map(|item| match item {
            Item::Global(s) => match &s.kind {
                StmtKind::Decl(d) => Some(d.name.clone()),
                _ => None,
            },
            _ => None,
        })
        .collect();

    // Names declared inside the loop (locals, inner loop vars, own var).
    let mut declared: HashSet<String> = HashSet::new();
    if l.declares_var {
        declared.insert(l.var.clone());
    }
    collect_declared(&l.body, &mut declared);

    // Free variables in order of first appearance.
    let mut order: Vec<String> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    {
        let mut push = |name: &str| {
            if !declared.contains(name) && !globals.contains(name) && seen.insert(name.to_string())
            {
                order.push(name.to_string());
            }
        };
        visit_idents(&l.init, &mut push);
        visit_idents(&l.bound, &mut push);
        visit_idents(&l.step, &mut push);
        visit_idents_block(&l.body, &mut push);
    }

    // Scalar free variables must not be written inside the hotspot — there
    // is no out-parameter mechanism, so refusing keeps extraction sound.
    let func = module.function(&host).expect("host exists");
    let symbols = function_symbols(module, func);
    let ws = query::write_set(&l.body);
    for name in &order {
        let ty = symbols
            .get(name)
            .ok_or_else(|| TransformError::new(format!("cannot type free variable `{name}`")))?;
        if !ty.is_pointer() && ws.scalars.contains(name) {
            return Err(TransformError::new(format!(
                "hotspot writes scalar `{name}` that is live outside the loop; \
                 extraction would change semantics"
            )));
        }
    }
    if symbols.duplicates.iter().any(|d| seen.contains(d)) {
        return Err(TransformError::new(
            "free variables of the hotspot are shadowed elsewhere in the function",
        ));
    }

    let params: Vec<(String, Type)> = order
        .iter()
        .map(|name| (name.clone(), symbols.get(name).expect("typed above")))
        .collect();

    // Swap the loop out, replacing it with a call.
    let call_args: Vec<Expr> = order.iter().map(build::ident).collect();
    let call = build::expr_stmt(build::call(kernel_name, call_args));
    let original = edit::replace_stmt(module, loop_stmt, call)?;

    // Build the kernel function around the original loop.
    let mut body_stmt = original;
    module.refresh_stmt_ids(&mut body_stmt);
    let body = Block {
        id: module.fresh_id(),
        span: body_stmt.span,
        stmts: vec![body_stmt],
    };
    let func = Function {
        id: module.fresh_id(),
        span: Span::SYNTHETIC,
        pragmas: vec![Pragma {
            id: module.fresh_id(),
            span: Span::SYNTHETIC,
            text: "psa kernel".to_string(),
        }],
        ret: Type::VOID,
        name: kernel_name.to_string(),
        params: {
            let mut ps = Vec::with_capacity(params.len());
            for (name, ty) in &params {
                ps.push(Param {
                    id: module.fresh_id(),
                    span: Span::SYNTHETIC,
                    ty: *ty,
                    name: name.clone(),
                });
            }
            ps
        },
        body,
    };
    edit::add_function(module, func);

    Ok(ExtractedKernel {
        name: kernel_name.to_string(),
        params,
        host,
    })
}

fn collect_declared(block: &Block, out: &mut HashSet<String>) {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Decl(d) => {
                out.insert(d.name.clone());
            }
            StmtKind::For(l) => {
                if l.declares_var {
                    out.insert(l.var.clone());
                }
                collect_declared(&l.body, out);
            }
            StmtKind::If { then, els, .. } => {
                collect_declared(then, out);
                if let Some(els) = els {
                    collect_declared(els, out);
                }
            }
            StmtKind::While { body, .. } | StmtKind::Block(body) => collect_declared(body, out),
            _ => {}
        }
    }
}

fn visit_idents(expr: &Expr, push: &mut impl FnMut(&str)) {
    use psa_minicpp::visit::{self, Visit};
    struct V<'a, F: FnMut(&str)> {
        push: &'a mut F,
    }
    impl<F: FnMut(&str)> Visit for V<'_, F> {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Ident(name) = &e.kind {
                (self.push)(name);
            }
            visit::walk_expr(self, e);
        }
    }
    V { push }.visit_expr(expr);
}

fn visit_idents_block(block: &Block, push: &mut impl FnMut(&str)) {
    use psa_minicpp::visit::{self, Visit};
    struct V<'a, F: FnMut(&str)> {
        push: &'a mut F,
    }
    impl<F: FnMut(&str)> Visit for V<'_, F> {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Ident(name) = &e.kind {
                (self.push)(name);
            }
            visit::walk_expr(self, e);
        }
    }
    V { push }.visit_block(block);
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_interp::{Interpreter, RunConfig};
    use psa_minicpp::{parse_module, print_module};

    const APP: &str = "int main() {\
        int n = 32;\
        double* a = alloc_double(n);\
        double* b = alloc_double(n);\
        fill_random(a, n, 5);\
        for (int i = 0; i < n; i++) { b[i] = a[i] * 2.0 + 1.0; }\
        double s = 0.0;\
        for (int i = 0; i < n; i++) { s += b[i]; }\
        return (int)s;\
      }";

    fn hotspot(m: &Module) -> NodeId {
        query::loops(m, |l| l.function == "main")[0].stmt_id
    }

    #[test]
    fn extraction_preserves_semantics() {
        let reference = {
            let m = parse_module(APP, "t").unwrap();
            Interpreter::new(&m, RunConfig::default())
                .run_main()
                .unwrap()
        };
        let mut m = parse_module(APP, "t").unwrap();
        let target = hotspot(&m);
        let k = extract_kernel(&mut m, target, "hotspot_0").unwrap();
        assert_eq!(k.host, "main");
        let result = Interpreter::new(&m, RunConfig::default())
            .run_main()
            .unwrap();
        assert_eq!(reference, result);
    }

    #[test]
    fn kernel_signature_covers_free_variables() {
        let mut m = parse_module(APP, "t").unwrap();
        let target = hotspot(&m);
        let k = extract_kernel(&mut m, target, "hotspot_0").unwrap();
        let names: Vec<&str> = k.params.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["n", "b", "a"],
            "first-appearance order: bound, then body"
        );
        let types: Vec<Type> = k.params.iter().map(|(_, t)| *t).collect();
        assert_eq!(types[0], Type::INT);
        assert_eq!(types[1], Type::pointer(Scalar::Double));
        let out = print_module(&m);
        assert!(out.contains("hotspot_0(n, b, a);"), "{out}");
        assert!(
            out.contains("void hotspot_0(int n, double* b, double* a) {"),
            "{out}"
        );
        assert!(out.contains("#pragma psa kernel"), "{out}");
    }

    #[test]
    fn kernel_is_watchable_after_extraction() {
        let mut m = parse_module(APP, "t").unwrap();
        let target = hotspot(&m);
        extract_kernel(&mut m, target, "knl").unwrap();
        let config = RunConfig {
            watch_function: Some("knl".into()),
            ..Default::default()
        };
        let mut interp = Interpreter::new(&m, config);
        interp.run_main().unwrap();
        assert_eq!(interp.profile().kernel_calls, 1);
        assert!(interp.profile().kernel_flops >= 64, "mul+add per element");
    }

    #[test]
    fn refuses_scalar_reduction_hotspots() {
        let mut m = parse_module(APP, "t").unwrap();
        // The second loop reduces into `s` — extraction must refuse.
        let target = query::loops(&m, |_| true)[1].stmt_id;
        let err = extract_kernel(&mut m, target, "bad").unwrap_err();
        assert!(err.to_string().contains("`s`"), "{err}");
    }

    #[test]
    fn refuses_duplicate_kernel_names() {
        let mut m = parse_module(APP, "t").unwrap();
        let target = hotspot(&m);
        extract_kernel(&mut m, target, "knl").unwrap();
        let remaining = query::loops(&m, |l| l.function == "main");
        assert_eq!(remaining.len(), 1);
        assert!(extract_kernel(&mut m, remaining[0].stmt_id, "knl").is_err());
    }

    #[test]
    fn globals_do_not_become_parameters() {
        let src = "double scale = 3.0;\
                   int main() { double* a = alloc_double(4); \
                   for (int i = 0; i < 4; i++) { a[i] = scale; } return (int)a[0]; }";
        let mut m = parse_module(src, "t").unwrap();
        let target = query::loops(&m, |_| true)[0].stmt_id;
        let k = extract_kernel(&mut m, target, "knl").unwrap();
        let names: Vec<&str> = k.params.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a"]);
        let result = Interpreter::new(&m, RunConfig::default())
            .run_main()
            .unwrap();
        assert_eq!(result, psa_interp::Value::Int(3));
    }

    #[test]
    fn extracted_module_reparses() {
        let mut m = parse_module(APP, "t").unwrap();
        let target = hotspot(&m);
        extract_kernel(&mut m, target, "knl").unwrap();
        let out = print_module(&m);
        let re = parse_module(&out, "t").unwrap();
        assert!(re.function("knl").is_some());
    }
}
