//! Full loop unrolling — the "Unroll Fixed Loops" transform.
//!
//! FPGA pipelines benefit from inner loops with small fixed bounds being
//! flattened into straight-line code (the paper's FPGA path applies this
//! before the unroll-until-overmap DSE on the *outer* loop, which stays a
//! `#pragma unroll N` hint consumed by the HLS resource model).

use super::subst::{is_subst_safe, substitute_ident};
use super::TransformError;
use crate::{edit, query};
use psa_minicpp::ast::*;

/// Upper bound on trip counts we will fully flatten; larger loops are a DSE
/// concern, not a straight-line-code concern.
pub const MAX_FULL_UNROLL: u64 = 256;

/// Fully unroll the `for` loop whose *statement* id is `loop_stmt`.
///
/// Preconditions (checked, not assumed):
/// * static trip count known and ≤ [`MAX_FULL_UNROLL`];
/// * the induction variable is declared by the loop header and neither
///   assigned nor redeclared in the body;
/// * the loop carries its own `declares_var` (so the variable is dead after
///   the loop).
///
/// The loop is replaced by `trip_count` copies of the body with the
/// induction variable folded to a constant in each.
pub fn fully_unroll(module: &mut Module, loop_stmt: NodeId) -> Result<u64, TransformError> {
    let stmt = query::find_stmt(module, loop_stmt)
        .ok_or_else(|| TransformError::new(format!("no statement {loop_stmt}")))?;
    let StmtKind::For(l) = &stmt.kind else {
        return Err(TransformError::new("target statement is not a for-loop"));
    };
    let trip = l
        .static_trip_count()
        .ok_or_else(|| TransformError::new("loop bounds are not compile-time constants"))?;
    if trip > MAX_FULL_UNROLL {
        return Err(TransformError::new(format!(
            "trip count {trip} exceeds full-unroll limit {MAX_FULL_UNROLL}"
        )));
    }
    if !l.declares_var {
        return Err(TransformError::new(
            "loop does not own its induction variable; it may be live after the loop",
        ));
    }
    if !is_subst_safe(&l.body, &l.var) {
        return Err(TransformError::new(format!(
            "induction variable `{}` is assigned or shadowed in the loop body",
            l.var
        )));
    }

    edit::rewrite_stmt(module, loop_stmt, |stmt, _next_id| {
        let StmtKind::For(l) = stmt.kind else {
            unreachable!("checked above")
        };
        let init = l.init.as_int().expect("static trip implies literal init");
        let step = l.step.as_int().expect("static trip implies literal step");
        let signed_step = if l.step_negative { -step } else { step };
        let mut out = Vec::with_capacity(trip as usize);
        for k in 0..trip {
            let value = init + signed_step * k as i64;
            let mut body = l.body.clone();
            substitute_ident(&mut body, &l.var, &build::int(value));
            // Splice body statements directly (no extra brace nesting) when
            // the body has a single statement; otherwise keep a block so
            // local declarations stay scoped per iteration.
            if body.stmts.len() == 1 && !matches!(body.stmts[0].kind, StmtKind::Decl(_)) {
                out.push(body.stmts.into_iter().next().expect("one statement"));
            } else {
                out.push(Stmt {
                    id: NodeId(u32::MAX),
                    span: l.span,
                    pragmas: Vec::new(),
                    kind: StmtKind::Block(body),
                });
            }
        }
        out
    })?;
    Ok(trip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_interp::{Interpreter, RunConfig, Value};
    use psa_minicpp::{parse_module, print_module};

    fn first_loop_stmt(m: &Module, func: &str) -> NodeId {
        query::loops(m, |l| l.function == func)[0].stmt_id
    }

    #[test]
    fn unrolls_fixed_loop_to_straight_line() {
        let mut m = parse_module(
            "void f(double* a) { for (int i = 0; i < 3; i++) { a[i] = (double)i; } }",
            "t",
        )
        .unwrap();
        let target = first_loop_stmt(&m, "f");
        assert_eq!(fully_unroll(&mut m, target).unwrap(), 3);
        let out = print_module(&m);
        assert!(!out.contains("for ("), "{out}");
        assert!(out.contains("a[0] = (double)0;"), "{out}");
        assert!(out.contains("a[2] = (double)2;"), "{out}");
    }

    #[test]
    fn unrolled_code_computes_the_same_result() {
        let src = "int main() { double* a = alloc_double(8); double s = 0.0;\
                    for (int i = 0; i < 8; i++) { a[i] = (double)i * 1.5; }\
                    for (int i = 0; i < 8; i++) { s += a[i]; }\
                    return (int)(s * 10.0); }";
        let reference = {
            let m = parse_module(src, "t").unwrap();
            Interpreter::new(&m, RunConfig::default())
                .run_main()
                .unwrap()
        };
        let mut m = parse_module(src, "t").unwrap();
        // Unroll both loops.
        for _ in 0..2 {
            let target = query::loops(&m, |_| true)[0].stmt_id;
            fully_unroll(&mut m, target).unwrap();
        }
        assert!(query::loops(&m, |_| true).is_empty());
        let unrolled = Interpreter::new(&m, RunConfig::default())
            .run_main()
            .unwrap();
        assert_eq!(reference, unrolled);
        assert_eq!(unrolled, Value::Int(420));
    }

    #[test]
    fn descending_and_strided_loops_unroll() {
        let mut m = parse_module(
            "void f(double* a) { for (int i = 6; i > 0; i -= 2) { a[i] = 1.0; } }",
            "t",
        )
        .unwrap();
        let target = first_loop_stmt(&m, "f");
        assert_eq!(fully_unroll(&mut m, target).unwrap(), 3);
        let out = print_module(&m);
        assert!(
            out.contains("a[6] = 1.0;")
                && out.contains("a[4] = 1.0;")
                && out.contains("a[2] = 1.0;"),
            "{out}"
        );
    }

    #[test]
    fn refuses_runtime_bounds() {
        let mut m = parse_module(
            "void f(double* a, int n) { for (int i = 0; i < n; i++) { a[i] = 0.0; } }",
            "t",
        )
        .unwrap();
        let target = first_loop_stmt(&m, "f");
        let err = fully_unroll(&mut m, target).unwrap_err();
        assert!(err.to_string().contains("compile-time"));
    }

    #[test]
    fn refuses_oversized_trip_counts() {
        let mut m = parse_module(
            "void f(double* a) { for (int i = 0; i < 100000; i++) { sink(i); } }",
            "t",
        )
        .unwrap();
        let target = first_loop_stmt(&m, "f");
        assert!(fully_unroll(&mut m, target).is_err());
    }

    #[test]
    fn refuses_mutated_induction_variable() {
        let mut m = parse_module(
            "void f(double* a) { for (int i = 0; i < 4; i++) { i += 1; a[i] = 0.0; } }",
            "t",
        )
        .unwrap();
        let target = first_loop_stmt(&m, "f");
        assert!(fully_unroll(&mut m, target).is_err());
    }

    #[test]
    fn multi_statement_bodies_stay_scoped() {
        let mut m = parse_module(
            "void f(double* a) { for (int i = 0; i < 2; i++) { double t = (double)i; a[i] = t; } }",
            "t",
        )
        .unwrap();
        let target = first_loop_stmt(&m, "f");
        fully_unroll(&mut m, target).unwrap();
        // The per-iteration `t` declarations must not collide: bodies stay
        // wrapped in blocks, and the program re-parses.
        let out = print_module(&m);
        let reparsed = parse_module(&out, "t").unwrap();
        assert_eq!(query::loops(&reparsed, |_| true).len(), 0);
    }

    #[test]
    fn nested_inner_loop_can_be_unrolled() {
        let mut m = parse_module(
            "void f(double* a, int n) { for (int i = 0; i < n; i++) { for (int j = 0; j < 4; j++) { a[i * 4 + j] = 0.0; } } }",
            "t",
        )
        .unwrap();
        let inner = query::loops(&m, |l| l.depth == 1)[0].stmt_id;
        fully_unroll(&mut m, inner).unwrap();
        let remaining = query::loops(&m, |_| true);
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].var, "i");
        let out = print_module(&m);
        assert!(out.contains("a[i * 4 + 0]"), "{out}");
        assert!(out.contains("a[i * 4 + 3]"), "{out}");
    }
}
