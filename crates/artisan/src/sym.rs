//! Lightweight symbol tables: what type does a name have inside a function?
//!
//! Kernel extraction needs to turn the free variables of a hotspot loop into
//! typed parameters of the new kernel function; this module provides the
//! name → type map it consults. MiniC++ transforms assume names are unique
//! within a function (shadowing across sibling scopes is legal to *run* but
//! extraction refuses it to stay conservative).

use psa_minicpp::ast::*;
use std::collections::HashMap;

/// Name → declared type, for one function (params, locals, loop variables)
/// plus module globals.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    map: HashMap<String, Type>,
    /// Names declared more than once (shadowing) — extraction treats these
    /// as errors.
    pub duplicates: Vec<String>,
}

impl SymbolTable {
    /// Type of `name`, if declared.
    pub fn get(&self, name: &str) -> Option<Type> {
        self.map.get(name).copied()
    }

    /// Iterate (name, type) pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Type)> {
        self.map.iter()
    }

    fn insert(&mut self, name: &str, ty: Type) {
        if self.map.insert(name.to_string(), ty).is_some() {
            self.duplicates.push(name.to_string());
        }
    }
}

/// Build the symbol table for a function, including module globals (which
/// never count as duplicates of themselves).
pub fn function_symbols(module: &Module, func: &Function) -> SymbolTable {
    let mut table = SymbolTable::default();
    for item in &module.items {
        if let Item::Global(stmt) = item {
            if let StmtKind::Decl(d) = &stmt.kind {
                table.map.insert(d.name.clone(), decl_type(d));
            }
        }
    }
    for p in &func.params {
        table.insert(&p.name, p.ty);
    }
    collect_block(&func.body, &mut table);
    table
}

fn decl_type(d: &VarDecl) -> Type {
    if d.array_len.is_some() {
        // Local arrays decay to pointers when passed onward.
        Type {
            scalar: d.ty.scalar,
            ptr: d.ty.ptr + 1,
            is_const: false,
        }
    } else {
        d.ty
    }
}

fn collect_block(block: &Block, table: &mut SymbolTable) {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Decl(d) => table.insert(&d.name, decl_type(d)),
            StmtKind::For(l) => {
                if l.declares_var {
                    table.insert(&l.var, Type::INT);
                }
                collect_block(&l.body, table);
            }
            StmtKind::If { then, els, .. } => {
                collect_block(then, table);
                if let Some(els) = els {
                    collect_block(els, table);
                }
            }
            StmtKind::While { body, .. } | StmtKind::Block(body) => collect_block(body, table),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_minicpp::parse_module;

    #[test]
    fn collects_params_locals_and_loop_vars() {
        let m = parse_module(
            "double g = 1.0;\
             void f(double* a, int n) { double acc[4]; float t = 0.0f; for (int i = 0; i < n; i++) { } }",
            "t",
        )
        .unwrap();
        let f = m.function("f").unwrap();
        let table = function_symbols(&m, f);
        assert_eq!(table.get("a"), Some(Type::pointer(Scalar::Double)));
        assert_eq!(table.get("n"), Some(Type::INT));
        assert_eq!(
            table.get("acc"),
            Some(Type::pointer(Scalar::Double)),
            "local array decays"
        );
        assert_eq!(table.get("t"), Some(Type::FLOAT));
        assert_eq!(table.get("i"), Some(Type::INT));
        assert_eq!(table.get("g"), Some(Type::DOUBLE));
        assert_eq!(table.get("missing"), None);
        assert!(table.duplicates.is_empty());
    }

    #[test]
    fn detects_shadowing_duplicates() {
        let m = parse_module(
            "void f(int n) { int x = 0; if (n > 0) { double x = 1.0; sink(x); } }",
            "t",
        )
        .unwrap();
        let table = function_symbols(&m, m.function("f").unwrap());
        assert_eq!(table.duplicates, vec!["x".to_string()]);
    }
}
