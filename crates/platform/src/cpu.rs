//! The CPU performance model: single-thread reference timing and the
//! OpenMP multi-thread estimate.

use crate::devices::CpuSpec;
use crate::work::KernelWork;
use crate::Seconds;
use psa_evalcache::{EvalCache, KeyBuilder};

/// Analytic multicore CPU model.
#[derive(Debug, Clone)]
pub struct CpuModel {
    pub spec: CpuSpec,
}

impl CpuModel {
    pub fn new(spec: CpuSpec) -> Self {
        CpuModel { spec }
    }

    /// Single-thread execution time: virtual cycles retired at the core's
    /// sustained IPC. This is the paper's baseline (`unoptimised reference
    /// executed on a single CPU thread`).
    pub fn time_single_thread(&self, w: &KernelWork) -> Seconds {
        w.cycles_1t / (self.spec.clock_ghz * 1e9 * self.spec.ipc)
    }

    /// OpenMP execution time on `threads` threads: compute scales by the
    /// effective thread count (fork/join + NUMA efficiency decays mildly
    /// with thread count); memory-bound kernels saturate at the socket's
    /// DRAM bandwidth (roofline).
    pub fn time_openmp(&self, w: &KernelWork, threads: u32) -> Seconds {
        psa_obs::counter_add(
            "psa_platform_estimates_total",
            &[("model", "cpu-omp"), ("device", &self.spec.name)],
            1,
        );
        let threads = threads.max(1);
        let hw = threads.min(self.spec.cores) as f64;
        // Oversubscription beyond physical cores only adds scheduling noise.
        let oversub = if threads > self.spec.cores {
            1.0 + 0.05 * f64::from(threads - self.spec.cores) / f64::from(self.spec.cores)
        } else {
            1.0
        };
        let eff = (self.spec.omp_base_eff - self.spec.omp_eff_slope * hw).clamp(0.05, 1.0);
        // The exposed parallelism caps useful threads.
        let usable = hw.min(w.threads.max(1.0));
        let compute = self.time_single_thread(w) / (usable * eff) * oversub;
        // CPU caches absorb reuse: the bandwidth roof applies to the
        // *streamed footprint* (≈ the kernel's in/out data), not to raw
        // access traffic.
        let memory = (w.bytes_in + w.bytes_out) / (self.spec.mem_bw_gbs * 1e9);
        compute.max(memory)
    }

    /// Cached [`CpuModel::time_openmp`], addressed by device spec, workload
    /// content and thread count — one entry serves every flow instance (and
    /// every OMP-DSE sweep) probing the same configuration.
    pub fn time_openmp_cached(&self, w: &KernelWork, threads: u32, cache: &EvalCache) -> Seconds {
        // Flight-recorder witness first, so an estimate that then faults
        // (the `apply` below can panic) still leaves its event in the ring.
        if psa_obs::recorder::enabled() {
            psa_obs::recorder::record_estimate(&format!("cpu-omp/{}", self.spec.name));
        }
        // Fault-injection seam for the (simulated) profiled OpenMP run.
        psa_faults::apply(psa_faults::Seam::Estimate, || {
            format!("cpu-omp/{}", self.spec.name)
        });
        let key = KeyBuilder::new("platform/cpu-omp")
            .u64(self.spec.content_hash())
            .u64(w.content_hash())
            .u32(threads)
            .finish();
        *cache.get_or_compute(key, || self.time_openmp(w, threads))
    }

    /// Speedup of `threads`-way OpenMP over single-thread.
    pub fn omp_speedup(&self, w: &KernelWork, threads: u32) -> f64 {
        self.time_single_thread(w) / self.time_openmp(w, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::epyc_7543;

    fn compute_bound_work() -> KernelWork {
        KernelWork {
            cycles_1t: 84e9, // 10 s single-thread at 2.8 GHz × IPC 3
            flops_fma: 30e9,
            bytes_mem: 1e9,
            threads: 1e6,
            ..Default::default()
        }
    }

    #[test]
    fn single_thread_time_follows_clock_and_ipc() {
        let m = CpuModel::new(epyc_7543());
        let t = m.time_single_thread(&compute_bound_work());
        assert!((t - 10.0).abs() < 1e-9, "{t}");
    }

    #[test]
    fn omp_speedup_is_near_core_count_for_parallel_compute() {
        let m = CpuModel::new(epyc_7543());
        let s = m.omp_speedup(&compute_bound_work(), 32);
        // The paper reports 28–30× on 32 cores.
        assert!((27.0..31.0).contains(&s), "speedup {s}");
    }

    #[test]
    fn speedup_monotone_in_threads_up_to_core_count() {
        let m = CpuModel::new(epyc_7543());
        let w = compute_bound_work();
        let mut prev = 0.0;
        for t in [1, 2, 4, 8, 16, 32] {
            let s = m.omp_speedup(&w, t);
            assert!(s > prev, "t={t}: {s} <= {prev}");
            prev = s;
        }
        // Oversubscription does not help.
        assert!(m.omp_speedup(&w, 64) <= m.omp_speedup(&w, 32));
    }

    #[test]
    fn memory_bound_kernels_hit_the_bandwidth_roof() {
        let m = CpuModel::new(epyc_7543());
        let w = KernelWork {
            cycles_1t: 84e9,
            bytes_in: 1_024e9, // streamed footprint: 10 s at 204.8 GB/s
            bytes_out: 1_024e9,
            threads: 1e6,
            ..Default::default()
        };
        let t32 = m.time_openmp(&w, 32);
        assert!((t32 - 10.0).abs() < 0.2, "bandwidth bound: {t32}");
        let s = m.omp_speedup(&w, 32);
        assert!(s < 1.5, "memory-bound speedup must collapse: {s}");
    }

    #[test]
    fn limited_parallelism_caps_threads() {
        let m = CpuModel::new(epyc_7543());
        let w = KernelWork {
            cycles_1t: 84e9,
            threads: 4.0,
            ..Default::default()
        };
        let s = m.omp_speedup(&w, 32);
        assert!(s <= 4.5, "only 4 work items: {s}");
    }

    #[test]
    fn single_thread_equals_one_thread_omp_within_eff() {
        let m = CpuModel::new(epyc_7543());
        let w = compute_bound_work();
        let ratio = m.time_openmp(&w, 1) / m.time_single_thread(&w);
        assert!((1.0..1.2).contains(&ratio), "{ratio}");
    }
}
