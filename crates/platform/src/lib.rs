//! # psa-platform — simulated hardware: device catalog + analytic models
//!
//! The paper evaluates on real hardware (AMD EPYC 7543, NVIDIA GTX 1080 Ti /
//! RTX 2080 Ti via hipcc, Intel PAC Arria10 / Stratix10 via dpcpp). None of
//! that exists here, so this crate provides the *tools & platforms* half of
//! the meta-programming contract (Fig. 2's "Tools & Platforms" box): given a
//! kernel's measured work profile, each model produces the estimated
//! execution time and — for FPGAs — the HLS-style resource report the
//! unroll-until-overmap DSE iterates against.
//!
//! The models are deliberately *analytic and parametric* rather than
//! cycle-accurate: the design-flow only needs the quantities real tools
//! expose (runtimes, occupancy, LUT utilisation), and parametric models keep
//! every decision the PSA strategy makes reproducible and testable. Where a
//! constant had to be calibrated (architecture efficiency factors, shell
//! overheads), it is documented on the field and covered by monotonicity
//! property tests rather than treated as ground truth.
//!
//! Modules:
//! * [`devices`] — the five-device catalog with published spec numbers;
//! * [`work`] — [`work::KernelWork`], the workload-characterisation record
//!   every model consumes (built from `psa-analyses` output);
//! * [`resources`] — static op-count extraction and FPGA resource costing;
//! * [`cpu`] — single-thread reference + OpenMP multi-thread model;
//! * [`gpu`] — SIMT occupancy/roofline model (HIP targets);
//! * [`fpga`] — pipeline/II model with HLS report generation (oneAPI);
//! * [`pricing`] — cloud price modelling for the Fig. 6 cost study.

pub mod cpu;
pub mod devices;
pub mod fpga;
pub mod gpu;
pub mod pricing;
pub mod resources;
pub mod work;

pub use cpu::CpuModel;
pub use devices::{
    arria10, epyc_7543, gtx_1080_ti, rtx_2080_ti, stratix10, CpuSpec, FpgaSpec, GpuSpec,
};
pub use fpga::{FpgaModel, FpgaReport, FpgaTimeError};
pub use gpu::GpuModel;
pub use resources::OpCounts;
pub use work::KernelWork;

/// Seconds, the unit every model reports in.
pub type Seconds = f64;

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline sanity check: a compute-bound, massively parallel,
    /// SP-safe kernel (N-Body-like) must be dramatically faster on a GPU
    /// than on one CPU thread, and the newer GPU must win.
    #[test]
    fn cross_device_ordering_for_compute_bound_kernel() {
        let w = KernelWork {
            flops_fma: 50e9,
            flops_sfu: 10e9,
            cycles_1t: 200e9,
            bytes_mem: 4e9,
            gather_fraction: 0.0,
            bytes_in: 2e6,
            bytes_out: 1e6,
            threads: 65536.0,
            pipeline_iters: 1e9,
            fp64: false,
            regs_per_thread: 48,
            flat_pipeline: false,
            ops: OpCounts::default(),
        };
        let cpu = CpuModel::new(epyc_7543());
        let t1 = cpu.time_single_thread(&w);
        let tomp = cpu.time_openmp(&w, 32);
        let g2080 = GpuModel::new(rtx_2080_ti());
        let g1080 = GpuModel::new(gtx_1080_ti());
        let t2080 = g2080.total_time(&w, 256, true);
        let t1080 = g1080.total_time(&w, 256, true);
        assert!(tomp < t1, "OpenMP must beat single-thread");
        assert!(t2080 < tomp, "GPU must beat OpenMP for this kernel");
        assert!(t2080 < t1080, "2080 Ti must beat 1080 Ti");
        let speedup = t1 / t2080;
        assert!(speedup > 100.0, "GPU speedup {speedup:.0}x too small");
    }
}
