//! The SIMT GPU performance model (HIP targets).
//!
//! Structure follows how real CUDA/HIP kernels behave:
//!
//! * **occupancy** — resident threads per SM are limited by the register
//!   file (`regs_per_thread × blocksize` per block) and the architecture's
//!   resident-thread ceiling; below an occupancy knee the SM can no longer
//!   hide latency (the Rush Larsen effect: 255 regs/thread saturates the
//!   Pascal card but not the Turing one);
//! * **throughput** — FMA-class work runs against `peak_fp32 × arch_eff`,
//!   transcendental work against the SFU rate; FP64 work pays the consumer
//!   1/32 ratio (FMA) or a software-expansion divisor (SFU);
//! * **utilisation** — kernels exposing fewer threads than the card can
//!   keep resident scale down proportionally (the Bezier effect: neither
//!   GPU saturated ⇒ similar speedups);
//! * **roofline** — memory-bound kernels sit at `bytes / mem_bw`;
//! * **transfer** — PCIe cost each way, reduced by pinned host memory
//!   (the "Employ HIP Pinned Memory" task).

use crate::devices::GpuSpec;
use crate::work::KernelWork;
use crate::Seconds;
use psa_evalcache::{EvalCache, KeyBuilder};
use serde::{Deserialize, Serialize};

/// FLOP-equivalents per native SFU operation (the work measures count a
/// sqrt as 4 and a transcendental as 8 FLOP-equivalents; the SFU retires
/// roughly one sqrt or half a transcendental per op).
const SFU_FLOPS_PER_OP: f64 = 4.0;

/// SFU-op expansion factor for double-precision transcendentals (software
/// polynomial expansion on consumer parts).
const FP64_SFU_MULT: f64 = 16.0;

/// Achieved fraction of peak DRAM bandwidth for strided-but-coalesced
/// kernels.
const MEM_EFF: f64 = 0.65;

/// Achieved fraction of peak DRAM bandwidth for data-dependent gathers:
/// each 32-thread warp touches scattered cache lines, so most of every
/// fetched line is wasted.
const GATHER_EFF: f64 = 0.015;

/// Detailed timing breakdown for one launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuEstimate {
    pub kernel_s: f64,
    pub transfer_s: f64,
    pub total_s: f64,
    /// Achieved occupancy in [0, 1].
    pub occupancy: f64,
    /// True when the register file (not the thread ceiling) limited
    /// occupancy.
    pub regs_limited: bool,
}

/// Analytic GPU model for one device.
#[derive(Debug, Clone)]
pub struct GpuModel {
    pub spec: GpuSpec,
}

impl GpuModel {
    pub fn new(spec: GpuSpec) -> Self {
        GpuModel { spec }
    }

    /// Occupancy achieved at `blocksize` with `regs` registers per thread.
    /// Returns `(occupancy, regs_limited)`; occupancy 0 means the block
    /// cannot launch at all (one block's registers exceed the file).
    pub fn occupancy(&self, blocksize: u32, regs: u32) -> (f64, bool) {
        let b = blocksize.clamp(32, 1024);
        let regs = regs.clamp(16, 255);
        let per_block = u64::from(regs) * u64::from(b);
        let blocks_by_regs = u64::from(self.spec.regs_per_sm) / per_block;
        if blocks_by_regs == 0 {
            return (0.0, true);
        }
        let resident_by_regs = blocks_by_regs * u64::from(b);
        let ceiling = u64::from(self.spec.max_threads_per_sm);
        let resident = resident_by_regs.min(ceiling);
        (resident as f64 / ceiling as f64, resident_by_regs < ceiling)
    }

    /// Kernel execution time at the given blocksize.
    pub fn kernel_time(&self, w: &KernelWork, blocksize: u32) -> Option<Seconds> {
        let (occ, _) = self.occupancy(blocksize, w.regs_per_thread);
        if occ == 0.0 {
            return None;
        }
        let s = &self.spec;

        // Throughput rates.
        let fma_rate = if w.fp64 {
            s.peak_fp32() * s.fp64_ratio * 0.8
        } else {
            s.peak_fp32() * s.arch_eff
        };
        // Convert FLOP-equivalents to native SFU operations.
        let sfu_ops = w.flops_sfu / SFU_FLOPS_PER_OP * if w.fp64 { FP64_SFU_MULT } else { 1.0 };
        let sfu_rate = s.peak_sfu();

        // Latency hiding degrades below the knee (square-root falloff:
        // partially-hidden latency, not a cliff).
        let latency_factor = (occ / s.occupancy_knee).min(1.0).sqrt();

        // Under-utilisation when the grid exposes fewer threads than the
        // card can keep resident at this occupancy.
        let resident_capacity = f64::from(s.sms) * f64::from(s.max_threads_per_sm) * occ;
        let utilisation = (w.threads / resident_capacity).min(1.0);

        let compute =
            (w.flops_fma / fma_rate + sfu_ops / sfu_rate) / (latency_factor * utilisation);
        let gather_bytes = w.bytes_mem * w.gather_fraction.clamp(0.0, 1.0);
        let linear_bytes = w.bytes_mem - gather_bytes;
        let memory = linear_bytes / (s.mem_bw_gbs * 1e9 * MEM_EFF)
            + gather_bytes / (s.mem_bw_gbs * 1e9 * GATHER_EFF);
        Some(compute.max(memory) + s.launch_overhead_s)
    }

    /// Host↔device transfer time; `pinned` models the "Employ HIP Pinned
    /// Memory" optimisation.
    pub fn transfer_time(&self, w: &KernelWork, pinned: bool) -> Seconds {
        let bw = self.spec.pcie_gbs * 1e9 * if pinned { self.spec.pinned_factor } else { 1.0 };
        (w.bytes_in + w.bytes_out) / bw + 20e-6
    }

    /// Full estimate (kernel + transfers) for one launch configuration.
    /// `None` when the blocksize cannot launch.
    pub fn estimate(&self, w: &KernelWork, blocksize: u32, pinned: bool) -> Option<GpuEstimate> {
        psa_obs::counter_add(
            "psa_platform_estimates_total",
            &[("model", "gpu-estimate"), ("device", &self.spec.name)],
            1,
        );
        let kernel_s = self.kernel_time(w, blocksize)?;
        let transfer_s = self.transfer_time(w, pinned);
        let (occupancy, regs_limited) = self.occupancy(blocksize, w.regs_per_thread);
        Some(GpuEstimate {
            kernel_s,
            transfer_s,
            total_s: kernel_s + transfer_s,
            occupancy,
            regs_limited,
        })
    }

    /// Cached [`GpuModel::estimate`], addressed by device spec, workload
    /// content and launch configuration. Un-launchable configurations are
    /// cached too (the stored value is the `Option`), so blocksize sweeps
    /// never re-probe a known-bad point.
    pub fn estimate_cached(
        &self,
        w: &KernelWork,
        blocksize: u32,
        pinned: bool,
        cache: &EvalCache,
    ) -> Option<GpuEstimate> {
        // Flight-recorder witness first, so an estimate that then faults
        // (the `apply` below can panic) still leaves its event in the ring.
        if psa_obs::recorder::enabled() {
            psa_obs::recorder::record_estimate(&format!("gpu-estimate/{}", self.spec.name));
        }
        // Fault-injection seam for the (simulated) vendor GPU model probe.
        psa_faults::apply(psa_faults::Seam::Estimate, || {
            format!("gpu-estimate/{}", self.spec.name)
        });
        let key = KeyBuilder::new("platform/gpu-estimate")
            .u64(self.spec.content_hash())
            .u64(w.content_hash())
            .u32(blocksize)
            .bool(pinned)
            .finish();
        *cache.get_or_compute(key, || self.estimate(w, blocksize, pinned))
    }

    /// Total time; infinity when the configuration cannot launch (lets DSE
    /// sweeps compare uniformly).
    pub fn total_time(&self, w: &KernelWork, blocksize: u32, pinned: bool) -> Seconds {
        self.estimate(w, blocksize, pinned)
            .map_or(f64::INFINITY, |e| e.total_s)
    }

    /// Cached [`GpuModel::total_time`].
    pub fn total_time_cached(
        &self,
        w: &KernelWork,
        blocksize: u32,
        pinned: bool,
        cache: &EvalCache,
    ) -> Seconds {
        self.estimate_cached(w, blocksize, pinned, cache)
            .map_or(f64::INFINITY, |e| e.total_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{gtx_1080_ti, rtx_2080_ti};

    fn parallel_fp32_work() -> KernelWork {
        KernelWork {
            flops_fma: 20e9,
            flops_sfu: 8e9,
            cycles_1t: 100e9,
            bytes_mem: 2e9,
            bytes_in: 8e6,
            bytes_out: 8e6,
            threads: 200_000.0,
            fp64: false,
            regs_per_thread: 48,
            ..Default::default()
        }
    }

    #[test]
    fn occupancy_limits() {
        let g = GpuModel::new(rtx_2080_ti());
        // Light kernel: full occupancy at 256 threads/block.
        let (occ, limited) = g.occupancy(256, 32);
        assert_eq!(occ, 1.0);
        assert!(!limited);
        // 255-register kernel: register file caps residency at 256 threads.
        let (occ, limited) = g.occupancy(256, 255);
        assert!(limited);
        assert!((occ - 0.25).abs() < 1e-9, "{occ}");
        // Pascal's 2048-thread ceiling makes the same kernel look worse.
        let p = GpuModel::new(gtx_1080_ti());
        let (occ_p, _) = p.occupancy(256, 255);
        assert!((occ_p - 0.125).abs() < 1e-9, "{occ_p}");
    }

    #[test]
    fn oversized_blocks_cannot_launch() {
        let g = GpuModel::new(rtx_2080_ti());
        let (occ, limited) = g.occupancy(512, 255);
        assert_eq!(occ, 0.0);
        assert!(limited);
        let w = KernelWork {
            regs_per_thread: 255,
            ..parallel_fp32_work()
        };
        assert!(g.kernel_time(&w, 512).is_none());
        assert_eq!(g.total_time(&w, 512, true), f64::INFINITY);
    }

    #[test]
    fn register_pressure_hurts_pascal_more() {
        let w = KernelWork {
            regs_per_thread: 255,
            ..parallel_fp32_work()
        };
        let light = parallel_fp32_work();
        let turing = GpuModel::new(rtx_2080_ti());
        let pascal = GpuModel::new(gtx_1080_ti());
        let slowdown_turing =
            turing.kernel_time(&w, 128).unwrap() / turing.kernel_time(&light, 128).unwrap();
        let slowdown_pascal =
            pascal.kernel_time(&w, 128).unwrap() / pascal.kernel_time(&light, 128).unwrap();
        assert!(
            slowdown_pascal > slowdown_turing,
            "pascal {slowdown_pascal} vs turing {slowdown_turing}"
        );
    }

    #[test]
    fn fp64_pays_a_heavy_penalty() {
        let g = GpuModel::new(rtx_2080_ti());
        let sp = parallel_fp32_work();
        let dp = KernelWork {
            fp64: true,
            ..parallel_fp32_work()
        };
        let ratio = g.kernel_time(&dp, 256).unwrap() / g.kernel_time(&sp, 256).unwrap();
        assert!(ratio > 4.0, "{ratio}");
    }

    #[test]
    fn undersaturated_grids_lose_throughput() {
        let g = GpuModel::new(rtx_2080_ti());
        let full = parallel_fp32_work();
        // Same total work from only 2k threads.
        let narrow = KernelWork {
            threads: 2_000.0,
            ..parallel_fp32_work()
        };
        assert!(g.kernel_time(&narrow, 256).unwrap() > 5.0 * g.kernel_time(&full, 256).unwrap());
    }

    #[test]
    fn undersaturated_grids_equalise_the_two_gpus() {
        // The Bezier effect: when neither GPU is saturated, their times
        // converge (clocks are near-identical).
        let narrow = KernelWork {
            threads: 8_000.0,
            ..parallel_fp32_work()
        };
        let t_turing = GpuModel::new(rtx_2080_ti())
            .kernel_time(&narrow, 128)
            .unwrap();
        let t_pascal = GpuModel::new(gtx_1080_ti())
            .kernel_time(&narrow, 128)
            .unwrap();
        let full = parallel_fp32_work();
        let f_turing = GpuModel::new(rtx_2080_ti())
            .kernel_time(&full, 128)
            .unwrap();
        let f_pascal = GpuModel::new(gtx_1080_ti())
            .kernel_time(&full, 128)
            .unwrap();
        let narrow_gap = t_pascal / t_turing;
        let full_gap = f_pascal / f_turing;
        assert!(
            narrow_gap < full_gap,
            "narrow {narrow_gap} vs saturated {full_gap}"
        );
    }

    #[test]
    fn pinned_memory_speeds_up_transfers() {
        let g = GpuModel::new(rtx_2080_ti());
        let w = parallel_fp32_work();
        assert!(g.transfer_time(&w, true) < g.transfer_time(&w, false));
    }

    #[test]
    fn memory_bound_work_sits_on_the_roofline() {
        let g = GpuModel::new(rtx_2080_ti());
        let w = KernelWork {
            flops_fma: 1e6,
            bytes_mem: 4.004e9, // 10 ms at 616 GB/s × MEM_EFF (0.65)
            threads: 1e6,
            fp64: false,
            ..Default::default()
        };
        let t = g.kernel_time(&w, 256).unwrap();
        assert!((t - 0.01).abs() < 0.001, "{t}");
    }

    #[test]
    fn estimate_reports_breakdown() {
        let g = GpuModel::new(rtx_2080_ti());
        let w = parallel_fp32_work();
        let e = g.estimate(&w, 256, true).unwrap();
        assert!(e.kernel_s > 0.0 && e.transfer_s > 0.0);
        assert!((e.total_s - (e.kernel_s + e.transfer_s)).abs() < 1e-12);
        assert!(e.occupancy > 0.9);
        assert!(!e.regs_limited);
    }
}
