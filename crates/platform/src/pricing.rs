//! Cloud pricing model — the Fig. 6 cost/performance trade-off study.
//!
//! "Cloud resources are typically priced based on the time for which they
//! are provisioned… the most performant design for a given application and
//! workload might not be the most cost effective." (§IV-D)
//!
//! Fig. 6 plots the *relative cost* of FPGA vs GPU execution as the price
//! ratio between the two resources sweeps from 1/4 to 4: cost is
//! `time × price`, so `cost_fpga / cost_gpu = (t_fpga / t_gpu) × (p_fpga /
//! p_gpu)` and the crossover sits at `p_fpga / p_gpu = t_gpu / t_fpga`.

use serde::{Deserialize, Serialize};

/// One application's cost curve inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostCase {
    pub app: String,
    /// Measured FPGA (Stratix10) execution time, seconds.
    pub t_fpga_s: f64,
    /// Measured GPU (2080 Ti) execution time, seconds.
    pub t_gpu_s: f64,
}

impl CostCase {
    /// `cost_fpga / cost_gpu` at a given `p_fpga / p_gpu` price ratio.
    pub fn relative_cost(&self, price_ratio: f64) -> f64 {
        (self.t_fpga_s / self.t_gpu_s) * price_ratio
    }

    /// The price ratio at which FPGA and GPU cost the same. Above it the
    /// GPU is more cost-effective; below it the FPGA is.
    pub fn crossover_price_ratio(&self) -> f64 {
        self.t_gpu_s / self.t_fpga_s
    }

    /// Is the FPGA the cheaper resource at this price ratio?
    pub fn fpga_more_cost_effective(&self, price_ratio: f64) -> bool {
        self.relative_cost(price_ratio) < 1.0
    }
}

/// The standard Fig. 6 sweep points (price ratios 1/4 … 4).
pub fn fig6_price_ratios() -> Vec<f64> {
    vec![0.25, 1.0 / 3.0, 0.5, 1.0, 2.0, 3.0, 4.0]
}

/// A whole Fig. 6 dataset: one curve per application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostStudy {
    pub cases: Vec<CostCase>,
}

impl CostStudy {
    /// Evaluate every case at every standard ratio:
    /// rows = (app, ratio, relative cost).
    pub fn table(&self) -> Vec<(String, f64, f64)> {
        let mut rows = Vec::new();
        for case in &self.cases {
            for r in fig6_price_ratios() {
                rows.push((case.app.clone(), r, case.relative_cost(r)));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_matches_the_papers_adpredictor_story() {
        // AdPredictor runs ~3.2× faster on the Stratix10 than the 2080 Ti
        // (32× vs 10× speedups): GPU only becomes more cost-effective when
        // the FPGA price exceeds 3.2× the GPU price.
        let case = CostCase {
            app: "AdPredictor".into(),
            t_fpga_s: 1.0,
            t_gpu_s: 3.2,
        };
        assert!((case.crossover_price_ratio() - 3.2).abs() < 1e-12);
        assert!(case.fpga_more_cost_effective(3.0));
        assert!(!case.fpga_more_cost_effective(3.5));
    }

    #[test]
    fn crossover_matches_the_papers_bezier_story() {
        // Bezier runs ~2.5× faster on the 2080 Ti (67× vs 27×): the FPGA
        // becomes more cost-effective when the GPU price exceeds ~2.5× the
        // FPGA price, i.e. price ratio below 1/2.5.
        let case = CostCase {
            app: "Bezier".into(),
            t_fpga_s: 2.5,
            t_gpu_s: 1.0,
        };
        let crossover = case.crossover_price_ratio();
        assert!((crossover - 0.4).abs() < 1e-12);
        assert!(case.fpga_more_cost_effective(0.3));
        assert!(!case.fpga_more_cost_effective(1.0));
    }

    #[test]
    fn relative_cost_is_linear_in_price_ratio() {
        let case = CostCase {
            app: "x".into(),
            t_fpga_s: 2.0,
            t_gpu_s: 1.0,
        };
        let c1 = case.relative_cost(1.0);
        let c2 = case.relative_cost(2.0);
        assert!((c2 / c1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_covers_the_figures_axis() {
        let ratios = fig6_price_ratios();
        assert_eq!(ratios.first(), Some(&0.25));
        assert_eq!(ratios.last(), Some(&4.0));
        assert!(ratios.windows(2).all(|w| w[0] < w[1]));
        let study = CostStudy {
            cases: vec![CostCase {
                app: "a".into(),
                t_fpga_s: 1.0,
                t_gpu_s: 1.0,
            }],
        };
        assert_eq!(study.table().len(), ratios.len());
    }
}
