//! Static kernel characterisation: operation counts (FPGA resource
//! estimation input) and GPU register-pressure estimation.
//!
//! Both are what real toolchains surface: an HLS partial compile reports
//! per-op resource usage, and `nvcc`/`hipcc` report registers per thread.
//! The paper's Rush Larsen discussion hinges on exactly these quantities
//! ("the GPU design requires 255 registers per thread"; FPGA designs
//! "exceed the capacity of our current FPGA devices").

use psa_minicpp::ast::*;
use psa_minicpp::Module;
use serde::{Deserialize, Serialize};

/// Straight-line operation counts for one pipeline iteration of a kernel.
///
/// Loops with static trip counts are counted multiplied (an HLS unroll
/// pragma flattens them into hardware); loops with runtime bounds count
/// once (the datapath is shared across their iterations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OpCounts {
    pub fp_add: f64,
    pub fp_mul: f64,
    pub fp_div: f64,
    pub sqrt: f64,
    pub transcendental: f64,
    pub int_ops: f64,
    /// Memory ports touched per iteration (loads + stores).
    pub mem_ops: f64,
}

impl OpCounts {
    /// Estimated LUTs for one replica of this datapath.
    ///
    /// Per-op costs approximate Intel FPGA floating-point IP in ALMs;
    /// `fp64` datapaths cost ~3.5× the single-precision ones (wider
    /// mantissa multipliers dominate).
    pub fn luts(&self, fp64: bool) -> f64 {
        let scale = if fp64 { 3.5 } else { 1.0 };
        scale
            * (self.fp_add * 500.0
                + self.fp_mul * 400.0
                + self.fp_div * 3_000.0
                + self.sqrt * 4_500.0
                + self.transcendental * 10_000.0
                + self.int_ops * 40.0
                + self.mem_ops * 350.0)
    }

    /// Estimated DSP blocks for one replica.
    pub fn dsps(&self, fp64: bool) -> f64 {
        let scale = if fp64 { 4.0 } else { 1.0 };
        scale
            * (self.fp_mul * 1.0 + self.fp_div * 2.0 + self.sqrt * 2.0 + self.transcendental * 4.0)
    }

    /// Elementwise sum.
    pub fn add(&self, other: &OpCounts, weight: f64) -> OpCounts {
        OpCounts {
            fp_add: self.fp_add + other.fp_add * weight,
            fp_mul: self.fp_mul + other.fp_mul * weight,
            fp_div: self.fp_div + other.fp_div * weight,
            sqrt: self.sqrt + other.sqrt * weight,
            transcendental: self.transcendental + other.transcendental * weight,
            int_ops: self.int_ops + other.int_ops * weight,
            mem_ops: self.mem_ops + other.mem_ops * weight,
        }
    }

    /// Fraction of FLOP-equivalents in SFU-class ops (sqrt +
    /// transcendental, using the interpreter's FLOP-equivalents).
    pub fn sfu_flop_fraction(&self) -> f64 {
        let sfu = self.sqrt * 4.0 + self.transcendental * 8.0;
        let fma = self.fp_add + self.fp_mul + self.fp_div;
        if sfu + fma == 0.0 {
            0.0
        } else {
            sfu / (sfu + fma)
        }
    }

    /// Deterministic content hash of the counts (floats by `to_bits`) —
    /// the datapath part of a cached HLS report's address.
    pub fn content_hash(&self) -> u64 {
        psa_evalcache::fnv64_of(&(
            self.fp_add.to_bits(),
            self.fp_mul.to_bits(),
            self.fp_div.to_bits(),
            self.sqrt.to_bits(),
            self.transcendental.to_bits(),
            self.int_ops.to_bits(),
            self.mem_ops.to_bits(),
        ))
    }
}

/// Extract op counts for function `kernel`.
pub fn op_counts(module: &Module, kernel: &str) -> Option<OpCounts> {
    let func = module.function(kernel)?;
    let mut out = OpCounts::default();
    count_block(&func.body, 1.0, &mut out);
    Some(out)
}

fn count_block(block: &Block, weight: f64, out: &mut OpCounts) {
    for stmt in &block.stmts {
        count_stmt(stmt, weight, out);
    }
}

fn count_stmt(stmt: &Stmt, weight: f64, out: &mut OpCounts) {
    match &stmt.kind {
        StmtKind::Decl(d) => {
            if let Some(e) = &d.init {
                count_expr(e, weight, out);
            }
        }
        StmtKind::Assign { target, op, value } => {
            count_expr(value, weight, out);
            if let ExprKind::Index { index, .. } = &target.kind {
                count_expr(index, weight, out);
                out.mem_ops += weight;
                if op.bin_op().is_some() {
                    out.mem_ops += weight;
                    out.fp_add += weight;
                }
            } else if op.bin_op().is_some() {
                out.fp_add += weight;
            }
        }
        StmtKind::Expr(e) => count_expr(e, weight, out),
        StmtKind::If { cond, then, els } => {
            count_expr(cond, weight, out);
            // Hardware instantiates both arms.
            count_block(then, weight, out);
            if let Some(els) = els {
                count_block(els, weight, out);
            }
        }
        StmtKind::For(l) => {
            // Static bound: the HLS unroll pragma flattens it into
            // replicated hardware. Runtime bound: the datapath is shared.
            let w = match l.static_trip_count() {
                Some(t) => weight * t as f64,
                None => weight,
            };
            count_block(&l.body, w, out);
        }
        StmtKind::While { body, .. } => count_block(body, weight, out),
        StmtKind::Return(Some(e)) => count_expr(e, weight, out),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Block(b) => count_block(b, weight, out),
    }
}

fn count_expr(e: &Expr, weight: f64, out: &mut OpCounts) {
    match &e.kind {
        ExprKind::Binary { op, lhs, rhs } => {
            count_expr(lhs, weight, out);
            count_expr(rhs, weight, out);
            match op {
                BinOp::Add | BinOp::Sub => out.fp_add += weight,
                BinOp::Mul => out.fp_mul += weight,
                BinOp::Div => out.fp_div += weight,
                // `%` is integer-only in MiniC++: cheap LUT logic.
                BinOp::Rem => out.int_ops += weight * 4.0,
                _ => out.int_ops += weight,
            }
        }
        ExprKind::Unary { expr, .. } => {
            count_expr(expr, weight, out);
            out.int_ops += weight;
        }
        ExprKind::Call { callee, args } => {
            for a in args {
                count_expr(a, weight, out);
            }
            use psa_interp::intrinsics::{lookup, Intrinsic, MathCost};
            if let Some(Intrinsic::Math(f)) = lookup(callee) {
                match f.op.cost_class() {
                    MathCost::Cheap => out.fp_add += weight,
                    MathCost::Sqrt => out.sqrt += weight,
                    MathCost::Transcendental => out.transcendental += weight,
                }
            }
        }
        ExprKind::Index { index, .. } => {
            count_expr(index, weight, out);
            out.mem_ops += weight;
        }
        ExprKind::Cast { expr, .. } => count_expr(expr, weight, out),
        ExprKind::Ternary { cond, then, els } => {
            count_expr(cond, weight, out);
            count_expr(then, weight, out);
            count_expr(els, weight, out);
        }
        _ => {}
    }
}

/// Fraction of a kernel's memory operations whose subscripts are
/// data-dependent (contain a modulo, an inner memory load, or a variable
/// derived from one). These gathers defeat GPU coalescing; FPGA on-chip
/// tables and CPU caches absorb them. Returns the weighted fraction in
/// [0, 1].
pub fn gather_fraction(module: &Module, kernel: &str) -> f64 {
    let Some(func) = module.function(kernel) else {
        return 0.0;
    };

    // Fixpoint: variables whose values derive from memory loads or modulo
    // arithmetic are "irregular".
    let mut irregular: std::collections::HashSet<String> = std::collections::HashSet::new();
    loop {
        let before = irregular.len();
        mark_irregular(&func.body, &mut irregular);
        if irregular.len() == before {
            break;
        }
    }

    let mut total = 0.0;
    let mut gathered = 0.0;
    tally_gathers(&func.body, 1.0, &irregular, &mut total, &mut gathered);
    if total == 0.0 {
        0.0
    } else {
        (gathered / total).clamp(0.0, 1.0)
    }
}

fn expr_is_irregular(e: &Expr, irregular: &std::collections::HashSet<String>) -> bool {
    match &e.kind {
        ExprKind::Binary { op: BinOp::Rem, .. } => true,
        ExprKind::Binary { lhs, rhs, .. } => {
            expr_is_irregular(lhs, irregular) || expr_is_irregular(rhs, irregular)
        }
        ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } => {
            expr_is_irregular(expr, irregular)
        }
        ExprKind::Index { .. } => true, // subscript computed from a load
        ExprKind::Ident(name) => irregular.contains(name),
        ExprKind::Call { args, .. } => args.iter().any(|a| expr_is_irregular(a, irregular)),
        ExprKind::Ternary { cond, then, els } => {
            expr_is_irregular(cond, irregular)
                || expr_is_irregular(then, irregular)
                || expr_is_irregular(els, irregular)
        }
        _ => false,
    }
}

fn mark_irregular(block: &Block, irregular: &mut std::collections::HashSet<String>) {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Decl(d) => {
                if let Some(init) = &d.init {
                    if expr_is_irregular(init, irregular) {
                        irregular.insert(d.name.clone());
                    }
                }
            }
            StmtKind::Assign { target, value, .. } => {
                if let ExprKind::Ident(name) = &target.kind {
                    if expr_is_irregular(value, irregular) {
                        irregular.insert(name.clone());
                    }
                }
            }
            StmtKind::For(l) => mark_irregular(&l.body, irregular),
            StmtKind::If { then, els, .. } => {
                mark_irregular(then, irregular);
                if let Some(els) = els {
                    mark_irregular(els, irregular);
                }
            }
            StmtKind::While { body, .. } | StmtKind::Block(body) => mark_irregular(body, irregular),
            _ => {}
        }
    }
}

fn tally_gathers(
    block: &Block,
    weight: f64,
    irregular: &std::collections::HashSet<String>,
    total: &mut f64,
    gathered: &mut f64,
) {
    fn tally_expr(
        e: &Expr,
        weight: f64,
        irregular: &std::collections::HashSet<String>,
        total: &mut f64,
        gathered: &mut f64,
    ) {
        match &e.kind {
            ExprKind::Index { base, index } => {
                tally_expr(index, weight, irregular, total, gathered);
                let _ = base;
                *total += weight;
                if expr_is_irregular(index, irregular) {
                    *gathered += weight;
                }
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                tally_expr(lhs, weight, irregular, total, gathered);
                tally_expr(rhs, weight, irregular, total, gathered);
            }
            ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } => {
                tally_expr(expr, weight, irregular, total, gathered)
            }
            ExprKind::Call { args, .. } => {
                for a in args {
                    tally_expr(a, weight, irregular, total, gathered);
                }
            }
            ExprKind::Ternary { cond, then, els } => {
                tally_expr(cond, weight, irregular, total, gathered);
                tally_expr(then, weight, irregular, total, gathered);
                tally_expr(els, weight, irregular, total, gathered);
            }
            _ => {}
        }
    }

    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Decl(d) => {
                if let Some(init) = &d.init {
                    tally_expr(init, weight, irregular, total, gathered);
                }
            }
            StmtKind::Assign { target, value, .. } => {
                tally_expr(value, weight, irregular, total, gathered);
                if let ExprKind::Index { index, .. } = &target.kind {
                    tally_expr(index, weight, irregular, total, gathered);
                    *total += weight;
                    if expr_is_irregular(index, irregular) {
                        *gathered += weight;
                    }
                }
            }
            StmtKind::Expr(e) => tally_expr(e, weight, irregular, total, gathered),
            StmtKind::If { cond, then, els } => {
                tally_expr(cond, weight, irregular, total, gathered);
                tally_gathers(then, weight, irregular, total, gathered);
                if let Some(els) = els {
                    tally_gathers(els, weight, irregular, total, gathered);
                }
            }
            StmtKind::For(l) => {
                let w = match l.static_trip_count() {
                    Some(t) => weight * t as f64,
                    None => weight,
                };
                tally_gathers(&l.body, w, irregular, total, gathered);
            }
            StmtKind::While { body, .. } => tally_gathers(body, weight, irregular, total, gathered),
            StmtKind::Return(Some(e)) => tally_expr(e, weight, irregular, total, gathered),
            _ => {}
        }
    }
}

/// Maximum registers a GPU compiler will allocate per thread.
pub const MAX_REGS_PER_THREAD: u32 = 255;

/// Estimate GPU registers per thread for one outer-loop iteration of
/// `kernel`.
///
/// Heuristic modelled on how register pressure actually accrues: each live
/// scalar needs a register pair (fp64) or single register; transcendental
/// call sites keep wide intermediate state alive; deep nests add address
/// registers. Clamped to [`MAX_REGS_PER_THREAD`] as real compilers do
/// (spilling beyond it).
pub fn estimate_registers(module: &Module, kernel: &str) -> Option<u32> {
    let func = module.function(kernel)?;
    let mut scalars = 0u32;
    let mut transcendentals = 0.0;
    let mut depth = 0u32;

    fn walk(block: &Block, scalars: &mut u32, depth: &mut u32, max_depth: &mut u32) {
        for stmt in &block.stmts {
            match &stmt.kind {
                StmtKind::Decl(d) if d.array_len.is_none() => *scalars += 1,
                StmtKind::For(l) => {
                    *depth += 1;
                    *max_depth = (*max_depth).max(*depth);
                    walk(&l.body, scalars, depth, max_depth);
                    *depth -= 1;
                }
                StmtKind::If { then, els, .. } => {
                    walk(then, scalars, depth, max_depth);
                    if let Some(els) = els {
                        walk(els, scalars, depth, max_depth);
                    }
                }
                StmtKind::While { body, .. } | StmtKind::Block(body) => {
                    walk(body, scalars, depth, max_depth)
                }
                _ => {}
            }
        }
    }
    let mut max_depth = 0;
    walk(&func.body, &mut scalars, &mut depth, &mut max_depth);

    if let Some(ops) = op_counts(module, kernel) {
        transcendentals = ops.transcendental + ops.sqrt;
    }

    let fp64 = kernel_uses_fp64(module, kernel);
    let per_scalar = if fp64 { 2 } else { 1 };
    let estimate = 16
        + scalars * per_scalar * 2
        + (transcendentals as u32) * if fp64 { 3 } else { 2 }
        + max_depth * 4
        + func.params.len() as u32 * 2;
    Some(estimate.min(MAX_REGS_PER_THREAD))
}

/// Does the kernel still use double precision anywhere (params, decls,
/// literals)? Drives the GPU FP64-throughput penalty and the FPGA datapath
/// width.
pub fn kernel_uses_fp64(module: &Module, kernel: &str) -> bool {
    let Some(func) = module.function(kernel) else {
        return true;
    };
    if func.params.iter().any(|p| p.ty.scalar == Scalar::Double) {
        return true;
    }
    fn block_has_double(block: &Block) -> bool {
        block.stmts.iter().any(|stmt| match &stmt.kind {
            StmtKind::Decl(d) => d.ty.scalar == Scalar::Double,
            StmtKind::For(l) => block_has_double(&l.body),
            StmtKind::If { then, els, .. } => {
                block_has_double(then) || els.as_ref().is_some_and(block_has_double)
            }
            StmtKind::While { body, .. } | StmtKind::Block(body) => block_has_double(body),
            _ => false,
        })
    }
    block_has_double(&func.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_minicpp::parse_module;

    #[test]
    fn counts_straight_line_ops() {
        let m = parse_module(
            "void knl(double* a, int n) { for (int i = 0; i < n; i++) { a[i] = sqrt(a[i]) * 2.0 + exp(a[i]); } }",
            "t",
        )
        .unwrap();
        let ops = op_counts(&m, "knl").unwrap();
        assert_eq!(ops.sqrt, 1.0);
        assert_eq!(ops.transcendental, 1.0);
        assert_eq!(ops.fp_mul, 1.0);
        assert_eq!(ops.fp_add, 1.0);
        assert_eq!(ops.mem_ops, 3.0); // two loads + one store
    }

    #[test]
    fn fixed_inner_loops_multiply_hardware() {
        let m = parse_module(
            "void knl(double* a, int n) { for (int i = 0; i < n; i++) { for (int j = 0; j < 8; j++) { a[j] = a[j] * 2.0; } } }",
            "t",
        )
        .unwrap();
        let ops = op_counts(&m, "knl").unwrap();
        assert_eq!(ops.fp_mul, 8.0);
        assert_eq!(ops.mem_ops, 16.0);
    }

    #[test]
    fn runtime_inner_loops_share_hardware() {
        let m = parse_module(
            "void knl(double* a, int n) { for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { a[j] = a[j] * 2.0; } } }",
            "t",
        )
        .unwrap();
        let ops = op_counts(&m, "knl").unwrap();
        assert_eq!(ops.fp_mul, 1.0);
    }

    #[test]
    fn fp64_datapaths_cost_more() {
        let ops = OpCounts {
            fp_mul: 10.0,
            transcendental: 2.0,
            ..Default::default()
        };
        assert!(ops.luts(true) > 3.0 * ops.luts(false));
        assert!(ops.dsps(true) > ops.dsps(false));
    }

    #[test]
    fn register_estimate_scales_with_body_complexity() {
        let small = parse_module(
            "void knl(float* a, int n) { for (int i = 0; i < n; i++) { float t = a[i]; a[i] = t * 2.0f; } }",
            "t",
        )
        .unwrap();
        // A transcendental-soup kernel like Rush Larsen.
        let mut big_src =
            String::from("void knl(double* s, int n) { for (int i = 0; i < n; i++) {");
        for g in 0..30 {
            big_src.push_str(&format!(
                "double m{g} = exp(s[i] * 0.1) / (1.0 + exp(s[i] * 0.2)); double h{g} = exp(0.3 * s[i]); s[i] += m{g} * h{g};"
            ));
        }
        big_src.push_str("} }");
        let big = parse_module(&big_src, "t").unwrap();
        let r_small = estimate_registers(&small, "knl").unwrap();
        let r_big = estimate_registers(&big, "knl").unwrap();
        assert!(r_small < 48, "{r_small}");
        assert_eq!(
            r_big, MAX_REGS_PER_THREAD,
            "ODE-style kernels saturate the register file"
        );
    }

    #[test]
    fn fp64_detection() {
        let d = parse_module("void knl(double* a) { a[0] = 1.0; }", "t").unwrap();
        assert!(kernel_uses_fp64(&d, "knl"));
        let f = parse_module("void knl(float* a) { float t = 1.0f; a[0] = t; }", "t").unwrap();
        assert!(!kernel_uses_fp64(&f, "knl"));
    }

    #[test]
    fn gather_fraction_detects_table_lookups() {
        // AdPredictor shape: hashed index into weight tables.
        let m = parse_module(
            "void knl(double* wmu, double* pred, int n) {\
               for (int i = 0; i < n; i++) {\
                 double acc = 0.0;\
                 for (int f = 0; f < 4; f++) {\
                   int idx = (i * 2654435761 + f * 40503) % 4096;\
                   acc += wmu[idx];\
                 }\
                 pred[i] = acc;\
               }\
             }",
            "t",
        )
        .unwrap();
        let g = gather_fraction(&m, "knl");
        // 4 gathered loads vs 1 linear store per outer iteration.
        assert!(g > 0.7, "{g}");
        let linear = parse_module(
            "void knl(double* a, double* b, int n) { for (int i = 0; i < n; i++) { b[i] = a[i]; } }",
            "t",
        )
        .unwrap();
        assert_eq!(gather_fraction(&linear, "knl"), 0.0);
    }

    #[test]
    fn gather_fraction_tracks_derived_indices() {
        // Index loaded from memory (indirect access).
        let m = parse_module(
            "void knl(int* idx, double* w, double* out, int n) {\
               for (int i = 0; i < n; i++) {\
                 int j = idx[i];\
                 out[i] = w[j];\
               }\
             }",
            "t",
        )
        .unwrap();
        let g = gather_fraction(&m, "knl");
        // idx[i] and out[i] linear; w[j] gathered → 1 of 3.
        assert!((g - 1.0 / 3.0).abs() < 0.01, "{g}");
    }

    #[test]
    fn sfu_fraction_reflects_op_mix() {
        let heavy = OpCounts {
            transcendental: 10.0,
            fp_add: 10.0,
            ..Default::default()
        };
        assert!(heavy.sfu_flop_fraction() > 0.8);
        let light = OpCounts {
            fp_add: 100.0,
            sqrt: 1.0,
            ..Default::default()
        };
        assert!(light.sfu_flop_fraction() < 0.1);
    }
}
