//! The device catalog: the five platforms from the paper's evaluation
//! (§IV-A), with published datasheet figures where available and calibrated
//! efficiency factors where the datasheet says nothing (documented per
//! field).

use serde::{Deserialize, Serialize};

/// A multicore CPU target (OpenMP path + the single-thread reference).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    pub name: String,
    /// Physical cores.
    pub cores: u32,
    /// Base clock in GHz.
    pub clock_ghz: f64,
    /// Sustained scalar instructions-per-cycle against the interpreter's
    /// virtual-cycle scale (calibrated: an OoO core retires ~3 of our
    /// "cycles" per real cycle).
    pub ipc: f64,
    /// Aggregate DRAM bandwidth, GB/s (8-channel DDR4-3200).
    pub mem_bw_gbs: f64,
    /// Per-thread OpenMP efficiency loss per extra thread (fork/join,
    /// NUMA): effective threads = t × (base_eff - eff_slope·t).
    pub omp_base_eff: f64,
    pub omp_eff_slope: f64,
}

/// A discrete GPU target (HIP path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    pub name: String,
    /// Streaming multiprocessors.
    pub sms: u32,
    /// FP32 lanes per SM.
    pub cores_per_sm: u32,
    /// Boost clock, GHz.
    pub clock_ghz: f64,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Maximum resident threads per SM (2048 Pascal, 1024 Turing).
    pub max_threads_per_sm: u32,
    /// Special-function units per SM (transcendental throughput).
    pub sfu_per_sm: u32,
    /// FP64 throughput as a fraction of FP32 (1/32 on consumer parts).
    pub fp64_ratio: f64,
    /// Device memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Host↔device PCIe bandwidth, GB/s (effective, pageable).
    pub pcie_gbs: f64,
    /// Bandwidth multiplier when pinned host memory is employed.
    pub pinned_factor: f64,
    /// Sustained fraction of peak FLOPs a tuned but straightforward kernel
    /// achieves (calibrated; Turing's concurrent FP+INT pipes roughly
    /// double Pascal's sustained rate on address-heavy loops).
    pub arch_eff: f64,
    /// Occupancy below this knee no longer hides latency (fraction).
    pub occupancy_knee: f64,
    /// Fixed kernel-launch + driver overhead, seconds.
    pub launch_overhead_s: f64,
}

impl GpuSpec {
    /// Peak FP32 FLOPs/s (2 ops per lane-clock via FMA).
    pub fn peak_fp32(&self) -> f64 {
        f64::from(self.sms) * f64::from(self.cores_per_sm) * 2.0 * self.clock_ghz * 1e9
    }

    /// Peak transcendental op rate (SFU ops/s).
    pub fn peak_sfu(&self) -> f64 {
        f64::from(self.sms) * f64::from(self.sfu_per_sm) * self.clock_ghz * 1e9
    }
}

/// An FPGA accelerator card (oneAPI path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaSpec {
    pub name: String,
    /// Logic budget in ALM/LUT units.
    pub luts: u64,
    /// Hardened DSP blocks.
    pub dsps: u64,
    /// Achievable kernel clock for a mapped design, MHz.
    pub clock_mhz: f64,
    /// On-card DDR bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Host↔card PCIe bandwidth, GB/s.
    pub pcie_gbs: f64,
    /// Unified-shared-memory zero-copy host access (Stratix10 BSPs only,
    /// per the paper §III): transfers overlap the pipeline instead of
    /// serialising before/after it.
    pub usm_zero_copy: bool,
    /// Fraction of logic consumed by the static shell / BSP.
    pub shell_overhead: f64,
    /// Utilisation ceiling before the paper's DSE calls a design
    /// overmapped (`report.LUT ≥ 0.9`).
    pub overmap_threshold: f64,
}

impl FpgaSpec {
    /// LUTs available to the kernel after the shell.
    pub fn usable_luts(&self) -> f64 {
        self.luts as f64 * (1.0 - self.shell_overhead)
    }

    /// Deterministic content hash of every model-relevant field — the
    /// device part of a cached evaluation's address.
    pub fn content_hash(&self) -> u64 {
        psa_evalcache::fnv64_of(&(
            self.name.as_str(),
            self.luts,
            self.dsps,
            self.clock_mhz.to_bits(),
            self.mem_bw_gbs.to_bits(),
            self.pcie_gbs.to_bits(),
            self.usm_zero_copy,
            self.shell_overhead.to_bits(),
            self.overmap_threshold.to_bits(),
        ))
    }
}

impl CpuSpec {
    /// Deterministic content hash of every model-relevant field — the
    /// device part of a cached evaluation's address.
    pub fn content_hash(&self) -> u64 {
        psa_evalcache::fnv64_of(&(
            self.name.as_str(),
            self.cores,
            self.clock_ghz.to_bits(),
            self.ipc.to_bits(),
            self.mem_bw_gbs.to_bits(),
            self.omp_base_eff.to_bits(),
            self.omp_eff_slope.to_bits(),
        ))
    }
}

impl GpuSpec {
    /// Deterministic content hash of every model-relevant field — the
    /// device part of a cached evaluation's address.
    pub fn content_hash(&self) -> u64 {
        psa_evalcache::fnv64_of(&(
            (
                self.name.as_str(),
                self.sms,
                self.cores_per_sm,
                self.clock_ghz.to_bits(),
                self.regs_per_sm,
                self.max_threads_per_sm,
                self.sfu_per_sm,
            ),
            (
                self.fp64_ratio.to_bits(),
                self.mem_bw_gbs.to_bits(),
                self.pcie_gbs.to_bits(),
                self.pinned_factor.to_bits(),
                self.arch_eff.to_bits(),
                self.occupancy_knee.to_bits(),
                self.launch_overhead_s.to_bits(),
            ),
        ))
    }
}

/// AMD EPYC 7543, 32 cores @ 2.8 GHz — the paper's CPU host.
pub fn epyc_7543() -> CpuSpec {
    CpuSpec {
        name: "AMD EPYC 7543".into(),
        cores: 32,
        clock_ghz: 2.8,
        ipc: 3.0,
        mem_bw_gbs: 204.8,
        omp_base_eff: 0.95,
        omp_eff_slope: 0.0016,
    }
}

/// NVIDIA GeForce GTX 1080 Ti (Pascal, 28 SMs × 128 lanes).
pub fn gtx_1080_ti() -> GpuSpec {
    GpuSpec {
        name: "GeForce GTX 1080 Ti".into(),
        sms: 28,
        cores_per_sm: 128,
        clock_ghz: 1.582,
        regs_per_sm: 65536,
        max_threads_per_sm: 2048,
        sfu_per_sm: 32,
        fp64_ratio: 1.0 / 32.0,
        mem_bw_gbs: 484.0,
        pcie_gbs: 10.0,
        pinned_factor: 1.05,
        arch_eff: 0.10,
        occupancy_knee: 0.35,
        launch_overhead_s: 50e-6,
    }
}

/// NVIDIA GeForce RTX 2080 Ti (Turing, 68 SMs × 64 lanes).
pub fn rtx_2080_ti() -> GpuSpec {
    GpuSpec {
        name: "GeForce RTX 2080 Ti".into(),
        sms: 68,
        cores_per_sm: 64,
        clock_ghz: 1.545,
        regs_per_sm: 65536,
        max_threads_per_sm: 1024,
        sfu_per_sm: 16,
        fp64_ratio: 1.0 / 32.0,
        mem_bw_gbs: 616.0,
        pcie_gbs: 11.0,
        pinned_factor: 1.05,
        arch_eff: 0.19,
        occupancy_knee: 0.30,
        launch_overhead_s: 50e-6,
    }
}

/// Intel PAC with Arria 10 GX 1150.
pub fn arria10() -> FpgaSpec {
    FpgaSpec {
        name: "PAC Arria10".into(),
        luts: 427_200,
        dsps: 1518,
        clock_mhz: 240.0,
        mem_bw_gbs: 34.0,
        pcie_gbs: 6.0,
        usm_zero_copy: false,
        shell_overhead: 0.20,
        overmap_threshold: 0.90,
    }
}

/// Intel Stratix 10 SX 2800 PAC (D5005).
pub fn stratix10() -> FpgaSpec {
    FpgaSpec {
        name: "PAC Stratix10".into(),
        luts: 933_120,
        dsps: 5760,
        clock_mhz: 400.0,
        mem_bw_gbs: 76.8,
        pcie_gbs: 8.0,
        usm_zero_copy: true,
        shell_overhead: 0.18,
        overmap_threshold: 0.90,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rates_match_datasheets() {
        // 1080 Ti ≈ 11.3 TFLOPs FP32; 2080 Ti ≈ 13.4 TFLOPs.
        let p1080 = gtx_1080_ti().peak_fp32();
        let p2080 = rtx_2080_ti().peak_fp32();
        assert!((p1080 / 1e12 - 11.3).abs() < 0.2, "{p1080}");
        assert!((p2080 / 1e12 - 13.45).abs() < 0.2, "{p2080}");
        assert!(p2080 > p1080);
    }

    #[test]
    fn stratix10_is_the_bigger_newer_card() {
        let a10 = arria10();
        let s10 = stratix10();
        assert!(s10.luts > 2 * a10.luts);
        assert!(s10.clock_mhz > a10.clock_mhz);
        assert!(s10.usm_zero_copy && !a10.usm_zero_copy);
        assert!(s10.usable_luts() < s10.luts as f64);
    }

    #[test]
    fn epyc_matches_paper_setup() {
        let c = epyc_7543();
        assert_eq!(c.cores, 32);
        assert!((c.clock_ghz - 2.8).abs() < 1e-9);
    }
}
