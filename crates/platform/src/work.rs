//! The workload-characterisation record shared by all platform models.

use crate::resources::OpCounts;
use serde::{Deserialize, Serialize};

/// Everything a platform model needs to know about one kernel + workload.
///
/// Built by the design-flow from the target-independent analysis reports
/// (dynamic FLOP/byte/trip measurements) plus the static op-count and
/// register-pressure extraction in [`crate::resources`], then scaled from
/// the analysis workload to the evaluation workload by the benchmark's
/// scaling rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelWork {
    /// FLOP-equivalents executed in the kernel that map to FMA-class
    /// pipelines (add/sub/mul/div).
    pub flops_fma: f64,
    /// FLOP-equivalents that map to special-function pipelines
    /// (sqrt, exp, log, trig, erf).
    pub flops_sfu: f64,
    /// Virtual cycles of the single-thread reference execution — the basis
    /// of `T_CPU`.
    pub cycles_1t: f64,
    /// Bytes moved between the compute units and device memory inside the
    /// kernel (roofline denominator).
    pub bytes_mem: f64,
    /// The fraction of `bytes_mem` accessed through data-dependent
    /// (gather/scatter) subscripts. GPUs lose coalescing on these; FPGA
    /// on-chip tables and CPU caches do not care.
    pub gather_fraction: f64,
    /// Bytes that must cross the host↔device interconnect before launch.
    pub bytes_in: f64,
    /// Bytes that must cross back after completion.
    pub bytes_out: f64,
    /// Independent work-items exposed by the (parallel) outer loop.
    pub threads: f64,
    /// Total innermost pipeline iterations (FPGA initiation count).
    pub pipeline_iters: f64,
    /// True when the kernel must run in double precision (SP transforms
    /// not applicable / not numerically safe).
    pub fp64: bool,
    /// Estimated registers per GPU thread (capped at 255 like real
    /// compilers).
    pub regs_per_thread: u32,
    /// True when every dependence-carrying inner loop has been fully
    /// unrolled (or none exist): the FPGA pipeline processes one *outer*
    /// iteration per initiation and outer-loop unrolling replicates the
    /// whole datapath.
    pub flat_pipeline: bool,
    /// Straight-line operation counts of one pipeline iteration (FPGA
    /// resource estimation input).
    pub ops: OpCounts,
}

impl KernelWork {
    /// Total FLOP-equivalents.
    pub fn flops(&self) -> f64 {
        self.flops_fma + self.flops_sfu
    }

    /// Fraction of work in special-function pipelines.
    pub fn sfu_fraction(&self) -> f64 {
        let total = self.flops();
        if total == 0.0 {
            0.0
        } else {
            self.flops_sfu / total
        }
    }

    /// Deterministic content hash of the whole record (floats by
    /// `to_bits`) — the workload part of a cached estimate's address.
    pub fn content_hash(&self) -> u64 {
        psa_evalcache::fnv64_of(&(
            (
                self.flops_fma.to_bits(),
                self.flops_sfu.to_bits(),
                self.cycles_1t.to_bits(),
                self.bytes_mem.to_bits(),
                self.gather_fraction.to_bits(),
                self.bytes_in.to_bits(),
                self.bytes_out.to_bits(),
            ),
            (
                self.threads.to_bits(),
                self.pipeline_iters.to_bits(),
                self.fp64,
                self.regs_per_thread,
                self.flat_pipeline,
            ),
            self.ops.content_hash(),
        ))
    }

    /// Scale the workload-dependent measures from the analysis workload to
    /// the evaluation workload: `compute` multiplies FLOPs/cycles/bytes_mem/
    /// pipeline iterations, `data` multiplies transfer bytes, `threads`
    /// multiplies the exposed parallelism.
    pub fn scaled(&self, compute: f64, data: f64, threads: f64) -> KernelWork {
        KernelWork {
            flops_fma: self.flops_fma * compute,
            flops_sfu: self.flops_sfu * compute,
            cycles_1t: self.cycles_1t * compute,
            bytes_mem: self.bytes_mem * compute,
            bytes_in: self.bytes_in * data,
            bytes_out: self.bytes_out * data,
            threads: self.threads * threads,
            pipeline_iters: self.pipeline_iters * compute,
            ..self.clone()
        }
    }
}

impl Default for KernelWork {
    fn default() -> Self {
        KernelWork {
            flops_fma: 0.0,
            flops_sfu: 0.0,
            cycles_1t: 0.0,
            bytes_mem: 0.0,
            gather_fraction: 0.0,
            bytes_in: 0.0,
            bytes_out: 0.0,
            threads: 1.0,
            pipeline_iters: 1.0,
            fp64: true,
            regs_per_thread: 32,
            flat_pipeline: false,
            ops: OpCounts::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_multiplies_the_right_fields() {
        let w = KernelWork {
            flops_fma: 10.0,
            flops_sfu: 5.0,
            cycles_1t: 100.0,
            bytes_mem: 50.0,
            bytes_in: 8.0,
            bytes_out: 4.0,
            threads: 16.0,
            pipeline_iters: 64.0,
            ..Default::default()
        };
        let s = w.scaled(4.0, 2.0, 2.0);
        assert_eq!(s.flops(), 60.0);
        assert_eq!(s.cycles_1t, 400.0);
        assert_eq!(s.bytes_mem, 200.0);
        assert_eq!(s.bytes_in, 16.0);
        assert_eq!(s.bytes_out, 8.0);
        assert_eq!(s.threads, 32.0);
        assert_eq!(s.pipeline_iters, 256.0);
        assert_eq!(s.regs_per_thread, w.regs_per_thread);
    }

    #[test]
    fn sfu_fraction_bounds() {
        let mut w = KernelWork::default();
        assert_eq!(w.sfu_fraction(), 0.0);
        w.flops_fma = 3.0;
        w.flops_sfu = 1.0;
        assert!((w.sfu_fraction() - 0.25).abs() < 1e-12);
    }
}
