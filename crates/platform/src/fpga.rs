//! The HLS FPGA model (oneAPI targets): resource estimation ("partial
//! compile report") and pipeline timing.
//!
//! Mirrors how the paper's `unroll_until_overmap` meta-program interacts
//! with real tooling (Fig. 2): the DSE inserts `#pragma unroll N`, runs a
//! partial compile, reads estimated LUT utilisation from the report, and
//! doubles the factor until `report.LUT ≥ 0.9`. [`FpgaModel::hls_report`]
//! is that report generator; [`FpgaModel::estimate`] is the corresponding
//! performance model:
//!
//! * a **flat pipeline** (all dependence-carrying inner loops fully
//!   unrolled, or none present) initiates one *outer* iteration per II
//!   cycles, and outer-loop unrolling by U replicates the datapath for U×
//!   throughput — the AdPredictor case;
//! * a **shared datapath** (inner loops with runtime bounds) initiates one
//!   *innermost* iteration per cycle and unrolling cannot replicate it —
//!   the N-Body case, whose FPGA designs barely beat one CPU thread;
//! * initiation interval grows when one iteration needs more memory ports
//!   than the board provides;
//! * designs whose base (U = 1) resource demand exceeds the overmap
//!   threshold are **not synthesizable** — the Rush Larsen case, reported
//!   as an error exactly like the paper excludes those designs.

use crate::devices::FpgaSpec;
use crate::resources::OpCounts;
use crate::work::KernelWork;
use crate::Seconds;
use psa_evalcache::{EvalCache, KeyBuilder};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Memory ports available to one kernel datapath (HLS banks and replicates
/// on-chip tables to feed unrolled lanes).
const MEM_PORTS: f64 = 16.0;

/// Effective fraction of PCIe bandwidth a zero-copy USM stream sustains
/// (host-memory access latency is only partially hidden by prefetching).
const USM_STREAM_EFF: f64 = 0.55;

/// The HLS-style resource report the unroll DSE consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaReport {
    pub unroll: u64,
    pub luts_used: f64,
    pub lut_util: f64,
    pub dsps_used: f64,
    pub dsp_util: f64,
    /// Achievable clock after place-and-route pressure, MHz.
    pub fmax_mhz: f64,
    /// `true` when utilisation exceeds the overmap threshold — the DSE's
    /// stop condition.
    pub overmapped: bool,
}

/// Why a timing estimate could not be produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FpgaTimeError {
    /// The design exceeds device resources even at unroll 1 — the paper's
    /// "designs are sizeable and exceed the capacity of our current FPGA
    /// devices" (Rush Larsen).
    NotSynthesizable { lut_util_at_unroll1: String },
}

impl fmt::Display for FpgaTimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaTimeError::NotSynthesizable {
                lut_util_at_unroll1,
            } => {
                write!(
                    f,
                    "design not synthesizable: LUT utilisation {lut_util_at_unroll1} at unroll 1"
                )
            }
        }
    }
}

impl std::error::Error for FpgaTimeError {}

/// Timing breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaEstimate {
    pub pipeline_s: f64,
    pub ddr_s: f64,
    pub transfer_s: f64,
    pub total_s: f64,
    pub ii: f64,
    pub report: FpgaReport,
}

/// Analytic HLS/FPGA model for one card.
#[derive(Debug, Clone)]
pub struct FpgaModel {
    pub spec: FpgaSpec,
}

impl FpgaModel {
    pub fn new(spec: FpgaSpec) -> Self {
        FpgaModel { spec }
    }

    /// Produce the "partial compile" resource report for a datapath of
    /// `ops` replicated `unroll` times.
    pub fn hls_report(&self, ops: &OpCounts, fp64: bool, unroll: u64) -> FpgaReport {
        psa_obs::counter_add(
            "psa_platform_estimates_total",
            &[("model", "fpga-hls"), ("device", &self.spec.name)],
            1,
        );
        let unroll = unroll.max(1);
        let shell = self.spec.luts as f64 * self.spec.shell_overhead;
        let luts_used = shell + ops.luts(fp64) * unroll as f64;
        let dsps_used = ops.dsps(fp64) * unroll as f64;
        let lut_util = luts_used / self.spec.luts as f64;
        let dsp_util = if self.spec.dsps == 0 {
            0.0
        } else {
            dsps_used / self.spec.dsps as f64
        };
        // Routing pressure erodes Fmax as the device fills.
        let pressure = (lut_util.max(dsp_util) - 0.5).max(0.0);
        let fmax_mhz = self.spec.clock_mhz * (1.0 - 0.3 * pressure);
        FpgaReport {
            unroll,
            luts_used,
            lut_util,
            dsps_used,
            dsp_util,
            fmax_mhz,
            overmapped: lut_util >= self.spec.overmap_threshold
                || dsp_util >= self.spec.overmap_threshold,
        }
    }

    /// Initiation interval of one pipeline iteration.
    pub fn initiation_interval(&self, w: &KernelWork) -> f64 {
        if w.flat_pipeline {
            // One outer iteration per initiation; memory ports bound II.
            (w.ops.mem_ops / MEM_PORTS).ceil().max(1.0)
        } else {
            // Shared datapath streams innermost iterations at II = 1.
            1.0
        }
    }

    /// Cached [`FpgaModel::hls_report`]: the analytic partial compile is
    /// memoized by device spec, datapath op counts, precision and unroll
    /// factor — exactly the inputs the report is a pure function of. The
    /// unroll DSE's doubling probes and the subsequent estimate's clamping
    /// probes all land on these entries.
    pub fn hls_report_cached(
        &self,
        ops: &OpCounts,
        fp64: bool,
        unroll: u64,
        cache: &EvalCache,
    ) -> FpgaReport {
        // Flight-recorder witness first, so an estimate that then faults
        // (the `apply` below can panic) still leaves its event in the ring.
        if psa_obs::recorder::enabled() {
            psa_obs::recorder::record_estimate(&format!("fpga-hls/{}", self.spec.name));
        }
        // Fault-injection seam for the (simulated) HLS partial compile.
        psa_faults::apply(psa_faults::Seam::Estimate, || {
            format!("fpga-hls/{}", self.spec.name)
        });
        let key = KeyBuilder::new("platform/fpga-hls")
            .u64(self.spec.content_hash())
            .u64(ops.content_hash())
            .bool(fp64)
            .u64(unroll.max(1))
            .finish();
        *cache.get_or_compute(key, || self.hls_report(ops, fp64, unroll))
    }

    /// Full timing estimate at the given unroll factor.
    pub fn estimate(&self, w: &KernelWork, unroll: u64) -> Result<FpgaEstimate, FpgaTimeError> {
        self.estimate_via(w, unroll, &|u| self.hls_report(&w.ops, w.fp64, u))
    }

    /// Cached [`FpgaModel::estimate`]: the whole breakdown is memoized by
    /// spec, workload and unroll, and on a miss the resource probes go
    /// through [`FpgaModel::hls_report_cached`], so entries warmed by the
    /// unroll DSE are reused. Unsynthesizable verdicts are recomputed (only
    /// successes are stored) but still hit the cached unroll-1 report.
    pub fn estimate_cached(
        &self,
        w: &KernelWork,
        unroll: u64,
        cache: &EvalCache,
    ) -> Result<FpgaEstimate, FpgaTimeError> {
        let key = KeyBuilder::new("platform/fpga-estimate")
            .u64(self.spec.content_hash())
            .u64(w.content_hash())
            .u64(unroll)
            .finish();
        cache
            .try_get_or_compute(key, || {
                self.estimate_via(w, unroll, &|u| {
                    self.hls_report_cached(&w.ops, w.fp64, u, cache)
                })
            })
            .map(|e| *e)
    }

    /// The estimate algorithm, parameterised over the report source so the
    /// cached and uncached paths share one implementation.
    fn estimate_via(
        &self,
        w: &KernelWork,
        unroll: u64,
        report_at: &dyn Fn(u64) -> FpgaReport,
    ) -> Result<FpgaEstimate, FpgaTimeError> {
        let base = report_at(1);
        if base.overmapped {
            return Err(FpgaTimeError::NotSynthesizable {
                lut_util_at_unroll1: format!("{:.0}%", base.lut_util * 100.0),
            });
        }
        // Clamp the requested unroll to the largest factor that still fits
        // (the DSE keeps the last fitting design). Shared datapaths ignore
        // unrolling entirely: HLS cannot replicate a pipeline whose inner
        // loop bounds are unknown, so the pragma neither helps nor costs.
        let mut fit = if w.flat_pipeline { unroll.max(1) } else { 1 };
        while fit > 1 && report_at(fit).overmapped {
            fit /= 2;
        }
        let report = report_at(fit);

        let ii = self.initiation_interval(w);
        let replicas = if w.flat_pipeline { fit as f64 } else { 1.0 };
        let clock = report.fmax_mhz * 1e6;
        let pipeline_s = w.pipeline_iters * ii / (replicas * clock);
        // On-chip BRAM holds the reused tables; DDR streams the kernel's
        // in/out footprint.
        let ddr_s = (w.bytes_in + w.bytes_out) / (self.spec.mem_bw_gbs * 1e9);
        let transfer_bytes = w.bytes_in + w.bytes_out;
        let (transfer_s, total_s) = if self.spec.usm_zero_copy {
            // Zero-copy USM: host memory is streamed while the pipeline
            // runs; transfers overlap compute but sustain only a fraction
            // of the link's peak.
            let t = transfer_bytes / (self.spec.pcie_gbs * 1e9 * USM_STREAM_EFF);
            (t, pipeline_s.max(ddr_s).max(t) + 200e-6)
        } else {
            let t = transfer_bytes / (self.spec.pcie_gbs * 1e9) + 100e-6;
            (t, pipeline_s.max(ddr_s) + t + 200e-6)
        };
        Ok(FpgaEstimate {
            pipeline_s,
            ddr_s,
            transfer_s,
            total_s,
            ii,
            report,
        })
    }

    /// Total seconds, or an error for unsynthesizable designs.
    pub fn total_time(&self, w: &KernelWork, unroll: u64) -> Result<Seconds, FpgaTimeError> {
        Ok(self.estimate(w, unroll)?.total_s)
    }

    /// Cached [`FpgaModel::total_time`].
    pub fn total_time_cached(
        &self,
        w: &KernelWork,
        unroll: u64,
        cache: &EvalCache,
    ) -> Result<Seconds, FpgaTimeError> {
        Ok(self.estimate_cached(w, unroll, cache)?.total_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{arria10, stratix10};

    fn flat_work(transcendentals: f64) -> KernelWork {
        KernelWork {
            flops_fma: 1e9,
            flops_sfu: 1e9,
            bytes_mem: 1e8,
            bytes_in: 1e7,
            bytes_out: 1e6,
            threads: 1e6,
            pipeline_iters: 1e6,
            fp64: false,
            flat_pipeline: true,
            ops: OpCounts {
                fp_add: 20.0,
                fp_mul: 10.0,
                transcendental: transcendentals,
                mem_ops: 8.0,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn report_grows_with_unroll_until_overmap() {
        let m = FpgaModel::new(arria10());
        let w = flat_work(4.0);
        let mut last_util = 0.0;
        let mut overmapped_at = None;
        for exp in 0..8 {
            let r = m.hls_report(&w.ops, w.fp64, 1 << exp);
            assert!(r.lut_util > last_util, "monotone in unroll");
            last_util = r.lut_util;
            if r.overmapped {
                overmapped_at = Some(1 << exp);
                break;
            }
        }
        assert!(overmapped_at.is_some(), "doubling must eventually overmap");
    }

    #[test]
    fn stratix10_fits_larger_unrolls() {
        let w = flat_work(4.0);
        let a10 = FpgaModel::new(arria10());
        let s10 = FpgaModel::new(stratix10());
        let max_fit = |m: &FpgaModel| {
            let mut u = 1u64;
            while !m.hls_report(&w.ops, w.fp64, u * 2).overmapped {
                u *= 2;
            }
            u
        };
        assert!(max_fit(&s10) > max_fit(&a10));
    }

    #[test]
    fn unrolling_speeds_up_flat_pipelines() {
        let m = FpgaModel::new(stratix10());
        let w = flat_work(2.0);
        let t1 = m.estimate(&w, 1).unwrap();
        let t4 = m.estimate(&w, 4).unwrap();
        assert!(t4.pipeline_s < t1.pipeline_s / 3.0);
    }

    #[test]
    fn unrolling_does_not_help_shared_datapaths() {
        let m = FpgaModel::new(stratix10());
        let w = KernelWork {
            flat_pipeline: false,
            ..flat_work(2.0)
        };
        let t1 = m.estimate(&w, 1).unwrap();
        let t8 = m.estimate(&w, 8).unwrap();
        assert!((t8.pipeline_s - t1.pipeline_s).abs() / t1.pipeline_s < 1e-9);
        assert_eq!(t1.ii, 1.0, "shared datapath streams at II=1");
    }

    #[test]
    fn memory_ports_bound_the_initiation_interval() {
        let m = FpgaModel::new(arria10());
        let mut w = flat_work(2.0);
        w.ops.mem_ops = 64.0;
        assert_eq!(m.initiation_interval(&w), 4.0);
        w.ops.mem_ops = 2.0;
        assert_eq!(m.initiation_interval(&w), 1.0);
    }

    #[test]
    fn transcendental_soup_is_not_synthesizable() {
        // Rush Larsen-like: ~65 fp64 transcendentals per iteration.
        let w = KernelWork {
            fp64: true,
            ops: OpCounts {
                transcendental: 65.0,
                fp_add: 120.0,
                fp_mul: 80.0,
                mem_ops: 10.0,
                ..Default::default()
            },
            ..flat_work(0.0)
        };
        for spec in [arria10(), stratix10()] {
            let m = FpgaModel::new(spec);
            let err = m.total_time(&w, 1).unwrap_err();
            assert!(
                matches!(err, FpgaTimeError::NotSynthesizable { .. }),
                "{err}"
            );
        }
    }

    #[test]
    fn requested_unroll_is_clamped_to_fit() {
        let m = FpgaModel::new(arria10());
        let w = flat_work(4.0);
        let e = m.estimate(&w, 1 << 20).unwrap();
        assert!(!e.report.overmapped);
        assert!(e.report.unroll >= 1);
        assert!(e.report.lut_util < m.spec.overmap_threshold);
    }

    #[test]
    fn zero_copy_overlaps_transfers() {
        let w = KernelWork {
            bytes_in: 4e9,
            ..flat_work(2.0)
        }; // large input
        let a10 = FpgaModel::new(arria10()).estimate(&w, 1).unwrap();
        // A10 serialises the transfer; its total must include it additively.
        assert!(a10.total_s >= a10.transfer_s + a10.pipeline_s.max(a10.ddr_s));
        let s10 = FpgaModel::new(stratix10()).estimate(&w, 1).unwrap();
        // S10 overlaps: total ≈ max(pipeline, transfer), not the sum.
        assert!(s10.total_s < s10.transfer_s + s10.pipeline_s + 1e-3);
    }

    #[test]
    fn fmax_degrades_under_routing_pressure() {
        let m = FpgaModel::new(arria10());
        let w = flat_work(4.0);
        let light = m.hls_report(&w.ops, false, 1);
        let mut heavy_unroll = 1;
        while !m.hls_report(&w.ops, false, heavy_unroll * 2).overmapped {
            heavy_unroll *= 2;
        }
        let heavy = m.hls_report(&w.ops, false, heavy_unroll);
        assert!(heavy.fmax_mhz <= light.fmax_mhz);
    }
}
