//! "Generate oneAPI Design" — the CPU+FPGA backend.
//!
//! Two device-specific styles, exactly the split the paper's branch point B
//! exploits (§III):
//!
//! * **Arria10** — classic SYCL buffer/accessor code: the runtime stages
//!   data over PCIe before and after the kernel;
//! * **Stratix10** — "Zero-Copy Data Transfer" via USM host allocations
//!   (`malloc_host`), available "on Intel Stratix10 FPGAs with support for
//!   unified shared memory (USM), but not on Arria10s". The extra USM
//!   management is also why the Stratix10 column of Table I is the largest.
//!
//! Both styles wrap the (possibly SP-converted, reduction-rewritten) kernel
//! loop in a `single_task` with the `#pragma unroll N` factor found by the
//! unroll-until-overmap DSE.

use crate::common::{alloc_extent, arg_list, kernel_shape, param_list, render_block};
use crate::openmp::step_suffix;
use crate::{Backend, CodegenError, Design};
use psa_minicpp::ast::*;
use psa_minicpp::printer;
use psa_minicpp::visit::{self, VisitMut};

/// FPGA-path configuration accumulated by the design-flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneApiConfig {
    /// Device name (Design metadata + comment header).
    pub device: String,
    /// Outer-loop unroll factor from the unroll-until-overmap DSE.
    pub unroll: u64,
    /// Stratix10-only zero-copy USM data movement.
    pub zero_copy: bool,
}

/// Emit the oneAPI CPU+FPGA design.
pub fn generate(
    module: &Module,
    kernel: &str,
    config: &OneApiConfig,
) -> Result<Design, CodegenError> {
    let shape = kernel_shape(module, kernel)?;
    let func = shape.func;
    let l = shape.outer;
    let ptr_params: Vec<&Param> = func.params.iter().filter(|p| p.ty.is_pointer()).collect();

    let mut out = String::new();
    out.push_str(&format!(
        "// Auto-generated oneAPI CPU+FPGA design for {} (psaflow).\n",
        config.device
    ));
    out.push_str("#include <sycl/sycl.hpp>\n");
    out.push_str("#include <sycl/ext/intel/fpga_extensions.hpp>\n");
    out.push_str("#include <cmath>\n\n");
    out.push_str(&format!("class {}Id;\n\n", camel(kernel)));

    out.push_str(&format!(
        "static void launch_{}({}) {{\n",
        kernel,
        param_list(func)
    ));
    out.push_str("    sycl::ext::intel::fpga_selector device_selector;\n");
    out.push_str("    sycl::queue q(device_selector);\n");

    if config.zero_copy {
        emit_zero_copy(&mut out, module, kernel, func, l, config, &ptr_params);
    } else {
        emit_buffered(&mut out, module, kernel, func, l, config, &ptr_params);
    }
    out.push_str("}\n\n");

    let call = format!("launch_{}({});", kernel, arg_list(func));
    out.push_str(&crate::common::render_host_without_kernel(
        module, kernel, &call,
    ));

    Ok(Design {
        backend: Backend::OneApi,
        device: config.device.clone(),
        source: out,
    })
}

/// Buffer/accessor style (Arria10).
fn emit_buffered(
    out: &mut String,
    module: &Module,
    kernel: &str,
    func: &Function,
    l: &ForLoop,
    config: &OneApiConfig,
    ptr_params: &[&Param],
) {
    out.push_str("    {\n");
    for p in ptr_params {
        let extent = alloc_extent(module, &p.name).unwrap_or_else(|| "1".to_string());
        out.push_str(&format!(
            "        sycl::buffer<{elem}, 1> buf_{n}({n}, sycl::range<1>({extent}));\n",
            elem = p.ty.scalar.c_name(),
            n = p.name
        ));
    }
    out.push_str("        q.submit([&](sycl::handler& h) {\n");
    for p in ptr_params {
        out.push_str(&format!(
            "            auto acc_{n} = buf_{n}.get_access<sycl::access::mode::read_write>(h);\n",
            n = p.name
        ));
    }
    out.push_str(&format!(
        "            h.single_task<{}Id>([=]() {{\n",
        camel(kernel)
    ));
    emit_kernel_loop(out, func, l, config, ptr_params, "acc_", 4);
    out.push_str("            });\n");
    out.push_str("        });\n");
    out.push_str("        q.wait();\n");
    out.push_str("    }\n");
}

/// USM zero-copy style (Stratix10).
fn emit_zero_copy(
    out: &mut String,
    module: &Module,
    kernel: &str,
    func: &Function,
    l: &ForLoop,
    config: &OneApiConfig,
    ptr_params: &[&Param],
) {
    out.push_str("    // Zero-copy data transfer: USM host allocations are accessed\n");
    out.push_str("    // directly by the kernel; no staging copies are required.\n");
    for p in ptr_params {
        let extent = alloc_extent(module, &p.name).unwrap_or_else(|| "1".to_string());
        let elem = p.ty.scalar.c_name();
        out.push_str(&format!(
            "    {elem}* usm_{n} = sycl::malloc_host<{elem}>({extent}, q);\n",
            n = p.name
        ));
        out.push_str(&format!(
            "    std::memcpy(usm_{n}, {n}, ({extent}) * sizeof({elem}));\n",
            n = p.name
        ));
    }
    out.push_str("    q.submit([&](sycl::handler& h) {\n");
    out.push_str(&format!(
        "        h.single_task<{}Id>([=]() {{\n",
        camel(kernel)
    ));
    emit_kernel_loop(out, func, l, config, ptr_params, "usm_", 3);
    out.push_str("        });\n");
    out.push_str("    });\n");
    out.push_str("    q.wait();\n");
    for p in ptr_params {
        let extent = alloc_extent(module, &p.name).unwrap_or_else(|| "1".to_string());
        let elem = p.ty.scalar.c_name();
        out.push_str(&format!(
            "    std::memcpy({n}, usm_{n}, ({extent}) * sizeof({elem}));\n",
            n = p.name
        ));
        out.push_str(&format!("    sycl::free(usm_{n}, q);\n", n = p.name));
    }
}

/// The pipelined kernel loop with its unroll pragma, pointer names
/// redirected to the device-visible handles.
fn emit_kernel_loop(
    out: &mut String,
    func: &Function,
    l: &ForLoop,
    config: &OneApiConfig,
    ptr_params: &[&Param],
    prefix: &str,
    indent: usize,
) {
    let pad = "    ".repeat(indent);
    if config.unroll > 1 {
        out.push_str(&format!("{pad}#pragma unroll {}\n", config.unroll));
    }
    out.push_str(&format!(
        "{pad}for (int {v} = {init}; {v} {op} {bound}; {v}{step}) {{\n",
        v = l.var,
        init = printer::print_expr(&l.init),
        op = l.cond_op.symbol(),
        bound = printer::print_expr(&l.bound),
        step = step_suffix(l),
    ));
    let mut body = l.body.clone();
    let names: Vec<String> = ptr_params.iter().map(|p| p.name.clone()).collect();
    rename_arrays(&mut body, &names, prefix);
    out.push_str(&render_block(&body, indent + 1));
    out.push_str(&format!("{pad}}}\n"));
    let _ = func;
}

/// Prefix every reference to the listed pointer names.
fn rename_arrays(block: &mut Block, names: &[String], prefix: &str) {
    struct Renamer<'a> {
        names: &'a [String],
        prefix: &'a str,
    }
    impl VisitMut for Renamer<'_> {
        fn visit_expr_mut(&mut self, e: &mut Expr) {
            if let ExprKind::Ident(name) = &mut e.kind {
                if self.names.contains(name) {
                    *name = format!("{}{}", self.prefix, name);
                }
            }
            visit::walk_expr_mut(self, e);
        }
    }
    Renamer { names, prefix }.visit_block_mut(block);
}

fn camel(name: &str) -> String {
    let mut out = String::new();
    let mut upper = true;
    for c in name.chars() {
        if c == '_' {
            upper = true;
        } else if upper {
            out.extend(c.to_uppercase());
            upper = false;
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_minicpp::parse_module;

    const APP: &str = "void knl(double* a, double* b, int n) { for (int i = 0; i < n; i++) { b[i] = a[i] * 2.0; } }\
                       int main() { int n = 64; double* a = alloc_double(n); double* b = alloc_double(n); fill_random(a, n, 1); knl(a, b, n); return 0; }";

    fn a10() -> OneApiConfig {
        OneApiConfig {
            device: "PAC Arria10".into(),
            unroll: 4,
            zero_copy: false,
        }
    }

    fn s10() -> OneApiConfig {
        OneApiConfig {
            device: "PAC Stratix10".into(),
            unroll: 8,
            zero_copy: true,
        }
    }

    #[test]
    fn buffered_style_for_arria10() {
        let m = parse_module(APP, "t").unwrap();
        let d = generate(&m, "knl", &a10()).unwrap();
        let s = &d.source;
        assert!(
            s.contains("sycl::buffer<double, 1> buf_a(a, sycl::range<1>(n));"),
            "{s}"
        );
        assert!(s.contains("single_task<KnlId>"), "{s}");
        assert!(s.contains("#pragma unroll 4"), "{s}");
        assert!(s.contains("acc_b[i] = acc_a[i] * 2.0;"), "{s}");
        assert!(!s.contains("malloc_host"), "A10 has no USM zero-copy");
    }

    #[test]
    fn zero_copy_style_for_stratix10() {
        let m = parse_module(APP, "t").unwrap();
        let d = generate(&m, "knl", &s10()).unwrap();
        let s = &d.source;
        assert!(s.contains("sycl::malloc_host<double>(n, q);"), "{s}");
        assert!(s.contains("usm_b[i] = usm_a[i] * 2.0;"), "{s}");
        assert!(s.contains("#pragma unroll 8"), "{s}");
        assert!(s.contains("sycl::free(usm_a, q);"), "{s}");
        assert!(
            !s.contains("sycl::buffer"),
            "S10 path avoids staging buffers"
        );
    }

    #[test]
    fn stratix_design_is_larger_than_arria() {
        // Table I: the S10 column exceeds the A10 column on every app.
        let m = parse_module(APP, "t").unwrap();
        let da = generate(&m, "knl", &a10()).unwrap();
        let ds = generate(&m, "knl", &s10()).unwrap();
        assert!(ds.loc() > da.loc(), "s10 {} vs a10 {}", ds.loc(), da.loc());
    }

    #[test]
    fn unroll_one_omits_the_pragma() {
        let m = parse_module(APP, "t").unwrap();
        let d = generate(&m, "knl", &OneApiConfig { unroll: 1, ..a10() }).unwrap();
        assert!(!d.source.contains("#pragma unroll"), "{}", d.source);
    }

    #[test]
    fn host_program_calls_the_wrapper() {
        let m = parse_module(APP, "t").unwrap();
        let d = generate(&m, "knl", &a10()).unwrap();
        assert!(d.source.contains("launch_knl(a, b, n);"), "{}", d.source);
        assert!(d.source.contains("int main()"));
    }
}
