//! "Generate OpenMP design" + "Multi-Thread Parallel Loops" output.
//!
//! The lightest backend: the reference structure is preserved; the kernel's
//! outer loop gains `#pragma omp parallel for`, and the host pins the
//! thread count chosen by the "OMP Num. Threads DSE" task. This is why
//! Table I's OpenMP column is only a few percent.

use crate::common::{kernel_shape, render_block};
use crate::{Backend, CodegenError, Design};
use psa_minicpp::ast::*;
use psa_minicpp::printer;

/// Configuration chosen by the CPU path of the flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmpConfig {
    /// Thread count selected by the DSE.
    pub threads: u32,
}

/// Emit the OpenMP design.
pub fn generate(module: &Module, kernel: &str, config: OmpConfig) -> Result<Design, CodegenError> {
    let shape = kernel_shape(module, kernel)?;
    let mut out = String::new();
    out.push_str("// Auto-generated OpenMP multi-thread CPU design (psaflow).\n");
    out.push_str("#include <omp.h>\n#include <cmath>\n\n");

    // Kernel function with the parallel-for annotation.
    out.push_str(&format!(
        "{} {}({}) {{\n",
        shape.func.ret,
        shape.func.name,
        crate::common::param_list(shape.func)
    ));
    for stmt in &shape.prologue {
        out.push_str(&crate::common::render_stmt(stmt, 1));
    }
    let l = shape.outer;
    out.push_str(&format!("    omp_set_num_threads({});\n", config.threads));
    out.push_str("    #pragma omp parallel for schedule(static)\n");
    out.push_str(&format!(
        "    for (int {v} = {init}; {v} {op} {bound}; {v}{step}) {{\n",
        v = l.var,
        init = printer::print_expr(&l.init),
        op = l.cond_op.symbol(),
        bound = printer::print_expr(&l.bound),
        step = step_suffix(l),
    ));
    out.push_str(&render_block(&l.body, 2));
    out.push_str("    }\n}\n\n");

    // Host code unchanged, calling the same kernel symbol.
    let call = format!("{}({});", kernel, crate::common::arg_list(shape.func));
    out.push_str(&crate::common::render_host_without_kernel(
        module, kernel, &call,
    ));

    Ok(Design {
        backend: Backend::OpenMp,
        device: "AMD EPYC 7543".into(),
        source: out,
    })
}

pub(crate) fn step_suffix(l: &ForLoop) -> String {
    match (&l.step.kind, l.step_negative) {
        (ExprKind::IntLit(1), false) => "++".to_string(),
        (ExprKind::IntLit(1), true) => "--".to_string(),
        (_, false) => format!(" += {}", printer::print_expr(&l.step)),
        (_, true) => format!(" -= {}", printer::print_expr(&l.step)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_minicpp::parse_module;

    const APP: &str = "void knl(double* a, int n) { for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; } }\
                       int main() { int n = 64; double* a = alloc_double(n); fill_random(a, n, 1); knl(a, n); return 0; }";

    #[test]
    fn emits_parallel_for_and_thread_pin() {
        let m = parse_module(APP, "t").unwrap();
        let d = generate(&m, "knl", OmpConfig { threads: 32 }).unwrap();
        assert!(
            d.source.contains("#pragma omp parallel for"),
            "{}",
            d.source
        );
        assert!(
            d.source.contains("omp_set_num_threads(32);"),
            "{}",
            d.source
        );
        assert!(d.source.contains("#include <omp.h>"));
        assert_eq!(d.backend, Backend::OpenMp);
    }

    #[test]
    fn loc_delta_is_small() {
        let m = parse_module(APP, "t").unwrap();
        let reference = psa_minicpp::print_module(&m);
        let d = generate(&m, "knl", OmpConfig { threads: 32 }).unwrap();
        let delta = d.loc_delta_pct(crate::count_loc(&reference));
        // Table I: OpenMP adds only a few percent (here the toy app is tiny,
        // so allow a generous bound).
        assert!(delta < 80.0, "delta {delta}% source:\n{}", d.source);
        assert!(d.loc() > crate::count_loc(&reference));
    }

    #[test]
    fn body_preserved_verbatim() {
        let m = parse_module(APP, "t").unwrap();
        let d = generate(&m, "knl", OmpConfig { threads: 16 }).unwrap();
        assert!(d.source.contains("a[i] = a[i] * 2.0;"));
        assert!(d.source.contains("int main()"));
        assert!(
            d.source.contains("knl(a, n);"),
            "host still calls the kernel"
        );
    }

    #[test]
    fn strided_loops_render() {
        let src = "void knl(double* a, int n) { for (int i = 0; i < n; i += 4) { a[i] = 0.0; } }\
                   int main() { double* a = alloc_double(64); knl(a, 64); return 0; }";
        let m = parse_module(src, "t").unwrap();
        let d = generate(&m, "knl", OmpConfig { threads: 8 }).unwrap();
        assert!(d.source.contains("i += 4"), "{}", d.source);
    }
}
