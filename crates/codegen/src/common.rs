//! Shared helpers for the design generators.

use crate::CodegenError;
use psa_minicpp::ast::*;
use psa_minicpp::printer;

/// The kernel's outer loop plus the context a generator needs.
pub struct KernelShape<'m> {
    pub func: &'m Function,
    /// The kernel's single outer `for` loop.
    pub outer: &'m ForLoop,
    /// Statements of the kernel body before the outer loop (rare).
    pub prologue: Vec<&'m Stmt>,
}

/// Extract the canonical kernel shape: a function whose body is (mostly)
/// one outer `for` loop — the shape hotspot extraction produces.
pub fn kernel_shape<'m>(module: &'m Module, kernel: &str) -> Result<KernelShape<'m>, CodegenError> {
    let func = module
        .function(kernel)
        .ok_or_else(|| CodegenError::new(format!("no kernel function `{kernel}`")))?;
    let mut outer = None;
    let mut prologue = Vec::new();
    for stmt in &func.body.stmts {
        match &stmt.kind {
            StmtKind::For(l) if outer.is_none() => outer = Some(l),
            _ if outer.is_none() => prologue.push(stmt),
            _ => {
                return Err(CodegenError::new(
                    "kernel has statements after its outer loop; unsupported shape",
                ))
            }
        }
    }
    let outer = outer
        .ok_or_else(|| CodegenError::new(format!("kernel `{kernel}` contains no outer loop")))?;
    Ok(KernelShape {
        func,
        outer,
        prologue,
    })
}

/// Render a block's statements at the given indent level (4 spaces per
/// level), reusing the MiniC++ printer per statement.
pub fn render_block(block: &Block, indent: usize) -> String {
    let mut out = String::new();
    let pad = "    ".repeat(indent);
    for stmt in &block.stmts {
        let text = printer::print_stmt(stmt);
        for line in text.lines() {
            out.push_str(&pad);
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Render a single statement at an indent level.
pub fn render_stmt(stmt: &Stmt, indent: usize) -> String {
    let pad = "    ".repeat(indent);
    printer::print_stmt(stmt)
        .lines()
        .map(|l| format!("{pad}{l}\n"))
        .collect()
}

/// Find the allocation-length expression of a pointer variable in the host
/// code: the `expr` of `double* name = alloc_double(expr);`. Generators use
/// it to size device buffers and transfers.
pub fn alloc_extent(module: &Module, var: &str) -> Option<String> {
    for item in &module.items {
        let Item::Function(f) = item else { continue };
        if let Some(e) = find_alloc_in_block(&f.body, var) {
            return Some(e);
        }
    }
    None
}

fn find_alloc_in_block(block: &Block, var: &str) -> Option<String> {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Decl(d) if d.name == var => {
                if let Some(init) = &d.init {
                    if let ExprKind::Call { callee, args } = &init.kind {
                        if callee.starts_with("alloc_") && args.len() == 1 {
                            return Some(printer::print_expr(&args[0]));
                        }
                    }
                }
            }
            StmtKind::For(l) => {
                if let Some(e) = find_alloc_in_block(&l.body, var) {
                    return Some(e);
                }
            }
            StmtKind::If { then, els, .. } => {
                if let Some(e) = find_alloc_in_block(then, var) {
                    return Some(e);
                }
                if let Some(els) = els {
                    if let Some(e) = find_alloc_in_block(els, var) {
                        return Some(e);
                    }
                }
            }
            StmtKind::While { body, .. } | StmtKind::Block(body) => {
                if let Some(e) = find_alloc_in_block(body, var) {
                    return Some(e);
                }
            }
            _ => {}
        }
    }
    None
}

/// The statement id of the call to `kernel` inside the host function, and
/// the host function's name.
pub fn kernel_call_site(module: &Module, kernel: &str) -> Option<(String, NodeId)> {
    for item in &module.items {
        let Item::Function(f) = item else { continue };
        if f.name == kernel {
            continue;
        }
        if let Some(id) = call_in_block(&f.body, kernel) {
            return Some((f.name.clone(), id));
        }
    }
    None
}

fn call_in_block(block: &Block, kernel: &str) -> Option<NodeId> {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Expr(e) => {
                if let ExprKind::Call { callee, .. } = &e.kind {
                    if callee == kernel {
                        return Some(stmt.id);
                    }
                }
            }
            StmtKind::For(l) => {
                if let Some(id) = call_in_block(&l.body, kernel) {
                    return Some(id);
                }
            }
            StmtKind::If { then, els, .. } => {
                if let Some(id) = call_in_block(then, kernel) {
                    return Some(id);
                }
                if let Some(els) = els {
                    if let Some(id) = call_in_block(els, kernel) {
                        return Some(id);
                    }
                }
            }
            StmtKind::While { body, .. } | StmtKind::Block(body) => {
                if let Some(id) = call_in_block(body, kernel) {
                    return Some(id);
                }
            }
            _ => {}
        }
    }
    None
}

/// Render everything in the module *except* the kernel function, replacing
/// the kernel call statement with `replacement_call` (a full line of code,
/// e.g. `launch_knl(a, b, n);`).
pub fn render_host_without_kernel(module: &Module, kernel: &str, replacement_call: &str) -> String {
    let mut host = String::new();
    for item in &module.items {
        match item {
            Item::Function(f) if f.name == kernel => continue,
            Item::Function(f) => {
                let printed = printer::print_function(f);
                // Swap the kernel call line.
                for line in printed.lines() {
                    let trimmed = line.trim_start();
                    if trimmed.starts_with(&format!("{kernel}(")) {
                        let indent = &line[..line.len() - trimmed.len()];
                        host.push_str(indent);
                        host.push_str(replacement_call);
                        host.push('\n');
                    } else {
                        host.push_str(line);
                        host.push('\n');
                    }
                }
                host.push('\n');
            }
            Item::Global(s) => {
                host.push_str(&printer::print_stmt(s));
                host.push('\n');
            }
        }
    }
    host
}

/// C parameter list for a function.
pub fn param_list(func: &Function) -> String {
    func.params
        .iter()
        .map(|p| format!("{} {}", p.ty, p.name))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Argument name list for calling a function.
pub fn arg_list(func: &Function) -> String {
    func.params
        .iter()
        .map(|p| p.name.clone())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_minicpp::parse_module;

    const APP: &str = "void knl(double* a, int n) { for (int i = 0; i < n; i++) { a[i] = 0.0; } }\
                       int main() { int n = 8; double* a = alloc_double(n * 2); knl(a, n); return 0; }";

    #[test]
    fn kernel_shape_extracts_outer_loop() {
        let m = parse_module(APP, "t").unwrap();
        let shape = kernel_shape(&m, "knl").unwrap();
        assert_eq!(shape.outer.var, "i");
        assert!(shape.prologue.is_empty());
        assert_eq!(param_list(shape.func), "double* a, int n");
        assert_eq!(arg_list(shape.func), "a, n");
    }

    #[test]
    fn kernel_shape_rejects_nonkernels() {
        let m = parse_module(APP, "t").unwrap();
        assert!(kernel_shape(&m, "missing").is_err());
        let m2 = parse_module("void f() { int x = 0; sink(x); }", "t").unwrap();
        assert!(kernel_shape(&m2, "f").is_err());
    }

    #[test]
    fn alloc_extent_finds_the_expression() {
        let m = parse_module(APP, "t").unwrap();
        assert_eq!(alloc_extent(&m, "a").unwrap(), "n * 2");
        assert!(alloc_extent(&m, "zz").is_none());
    }

    #[test]
    fn host_rendering_replaces_the_call() {
        let m = parse_module(APP, "t").unwrap();
        let host = render_host_without_kernel(&m, "knl", "launch_knl(a, n);");
        assert!(host.contains("launch_knl(a, n);"), "{host}");
        assert!(!host.contains("void knl("), "{host}");
        assert!(host.contains("int main()"), "{host}");
    }

    #[test]
    fn call_site_found() {
        let m = parse_module(APP, "t").unwrap();
        let (host, _) = kernel_call_site(&m, "knl").unwrap();
        assert_eq!(host, "main");
    }
}
