//! # psa-codegen — framework-specific design generation
//!
//! The **CG**-class tasks of the paper's repository (Fig. 4): given the
//! optimised application AST with its extracted kernel, emit the complete
//! specialised design in each target's programming model:
//!
//! * [`openmp`] — "Generate OpenMP design": annotated C++ + runtime setup;
//! * [`hip`] — "Generate HIP Design": `__global__` kernel, device buffers,
//!   transfers, launch configuration, optional pinned host memory and
//!   shared-memory tiling;
//! * [`oneapi`] — "Generate oneAPI Design": SYCL queue + `single_task`
//!   FPGA kernel with unroll pragmas; buffer/accessor style for the
//!   Arria10, USM zero-copy style for the Stratix10.
//!
//! The emitted text is what Table I counts: "quantifying the increase in
//! lines of code (LOC) for each automatically generated design in
//! comparison to the input source reference". Generators work from the AST
//! (not string templates of whole programs), so they inherit every upstream
//! transform — SP literals, reduction rewrites, unrolling — exactly like
//! the paper's flow.

pub mod common;
pub mod hip;
pub mod oneapi;
pub mod openmp;

use serde::{Deserialize, Serialize};

/// Which programming model a design targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// OpenMP multi-thread CPU.
    OpenMp,
    /// HIP CPU+GPU.
    Hip,
    /// oneAPI CPU+FPGA.
    OneApi,
}

impl Backend {
    pub fn label(&self) -> &'static str {
        match self {
            Backend::OpenMp => "OpenMP",
            Backend::Hip => "HIP",
            Backend::OneApi => "oneAPI",
        }
    }
}

/// A fully generated design: the artefact a PSA-flow outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Design {
    pub backend: Backend,
    /// Device the design was specialised for (e.g. "GeForce RTX 2080 Ti").
    pub device: String,
    /// The generated, human-readable source text.
    pub source: String,
}

impl Design {
    /// Non-blank lines of code — Table I's metric.
    pub fn loc(&self) -> usize {
        count_loc(&self.source)
    }

    /// Percentage of LOC added relative to a reference count.
    pub fn loc_delta_pct(&self, reference_loc: usize) -> f64 {
        if reference_loc == 0 {
            return 0.0;
        }
        (self.loc() as f64 - reference_loc as f64) / reference_loc as f64 * 100.0
    }
}

/// Count non-blank lines.
pub fn count_loc(source: &str) -> usize {
    source.lines().filter(|l| !l.trim().is_empty()).count()
}

/// Errors raised by generators when the module is not in the expected
/// post-flow shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError {
    pub message: String,
}

impl CodegenError {
    pub fn new(message: impl Into<String>) -> Self {
        CodegenError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codegen error: {}", self.message)
    }
}

impl std::error::Error for CodegenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counts_nonblank_lines() {
        assert_eq!(count_loc("a\n\n  \nb\nc"), 3);
        let d = Design {
            backend: Backend::Hip,
            device: "X".into(),
            source: "a\nb\n".into(),
        };
        assert_eq!(d.loc(), 2);
        assert!((d.loc_delta_pct(1) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn backend_labels() {
        assert_eq!(Backend::OpenMp.label(), "OpenMP");
        assert_eq!(Backend::Hip.label(), "HIP");
        assert_eq!(Backend::OneApi.label(), "oneAPI");
    }
}
