//! "Generate HIP Design" — the CPU+GPU backend.
//!
//! Emits a `__global__` kernel (outer loop mapped to the thread grid), the
//! device-buffer management the host needs (the paper's "framework specific
//! management code"), and the device-specific launch geometry chosen by the
//! blocksize DSE. Optional extras mirror the GPU-path tasks of Fig. 4:
//! "Employ HIP Pinned Memory" and "Introduce Shared Mem Buf".

use crate::common::{alloc_extent, arg_list, kernel_shape, param_list, render_block, render_stmt};
use crate::{Backend, CodegenError, Design};
use psa_minicpp::ast::*;
use psa_minicpp::printer;
use psa_minicpp::visit::{self, VisitMut};

/// GPU-path configuration accumulated by the design-flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HipConfig {
    /// Device name (Design metadata + comment header).
    pub device: String,
    /// Threads per block from the blocksize DSE.
    pub blocksize: u32,
    /// "Employ HIP Pinned Memory".
    pub pinned: bool,
    /// Arrays to stage through shared memory ("Introduce Shared Mem Buf").
    pub shared_mem_arrays: Vec<String>,
}

/// Emit the HIP CPU+GPU design.
pub fn generate(module: &Module, kernel: &str, config: &HipConfig) -> Result<Design, CodegenError> {
    let shape = kernel_shape(module, kernel)?;
    let l = shape.outer;
    let func = shape.func;
    let bound = printer::print_expr(&l.bound);
    let b = config.blocksize;

    let ptr_params: Vec<&Param> = func.params.iter().filter(|p| p.ty.is_pointer()).collect();

    let mut out = String::new();
    out.push_str(&format!(
        "// Auto-generated HIP CPU+GPU design for {} (psaflow).\n",
        config.device
    ));
    out.push_str("#include <hip/hip_runtime.h>\n#include <cmath>\n\n");
    out.push_str(&format!("#define PSA_BLOCK {b}\n\n"));

    // ---------------- device kernel ----------------
    out.push_str(&format!(
        "__global__ void {}_kernel({}) {{\n",
        kernel,
        param_list(func)
    ));
    for stmt in &shape.prologue {
        out.push_str(&render_stmt(stmt, 1));
    }
    // Map the canonical loop `for (v = init; v <op> bound; v ±= step)` onto
    // the thread grid: one iteration per thread, preserving init, stride,
    // direction, and the comparison operator.
    let init = printer::print_expr(&l.init);
    let step = printer::print_expr(&l.step);
    let idx = "blockIdx.x * blockDim.x + threadIdx.x";
    let mapping = match (l.init.as_int(), l.step.as_int(), l.step_negative) {
        (Some(0), Some(1), false) => format!("int {v} = {idx};", v = l.var),
        (_, _, false) => format!("int {v} = ({init}) + ({idx}) * ({step});", v = l.var),
        (_, _, true) => format!("int {v} = ({init}) - ({idx}) * ({step});", v = l.var),
    };
    out.push_str(&format!("    {mapping}\n"));
    out.push_str(&format!(
        "    if ({v} {op} {bound}) {{\n",
        v = l.var,
        op = l.cond_op.symbol()
    ));
    if config.shared_mem_arrays.is_empty() {
        out.push_str(&render_block(&l.body, 2));
    } else {
        out.push_str(&render_tiled_body(module, l, &config.shared_mem_arrays));
    }
    out.push_str("    }\n}\n\n");

    // ---------------- host launch wrapper ----------------
    out.push_str(&format!(
        "static void launch_{}({}) {{\n",
        kernel,
        param_list(func)
    ));
    for p in &ptr_params {
        let extent = alloc_extent(module, &p.name).unwrap_or_else(|| "1".to_string());
        let elem = p.ty.scalar.c_name();
        out.push_str(&format!("    {elem}* d_{} = nullptr;\n", p.name));
        out.push_str(&format!(
            "    hipMalloc((void**)&d_{n}, ({extent}) * sizeof({elem}));\n",
            n = p.name
        ));
        if config.pinned {
            out.push_str(&format!(
                "    hipHostRegister({n}, ({extent}) * sizeof({elem}), hipHostRegisterDefault);\n",
                n = p.name
            ));
        }
        out.push_str(&format!(
            "    hipMemcpy(d_{n}, {n}, ({extent}) * sizeof({elem}), hipMemcpyHostToDevice);\n",
            n = p.name
        ));
    }
    out.push_str("    dim3 block(PSA_BLOCK, 1, 1);\n");
    // Conservative grid: one thread per value in [0, |bound - init|/step);
    // out-of-range threads are masked by the kernel's guard.
    let trip_expr = match (l.init.as_int(), l.step.as_int(), l.step_negative) {
        (Some(0), Some(1), false) => format!("({bound})"),
        (_, _, false) => format!("((({bound}) - ({init}) + ({step}) - 1) / ({step}))"),
        (_, _, true) => format!("((({init}) - ({bound}) + ({step}) - 1) / ({step}))"),
    };
    out.push_str(&format!(
        "    dim3 grid(({trip_expr} + PSA_BLOCK - 1) / PSA_BLOCK, 1, 1);\n"
    ));
    let kernel_args: String = func
        .params
        .iter()
        .map(|p| {
            if p.ty.is_pointer() {
                format!("d_{}", p.name)
            } else {
                p.name.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!(
        "    hipLaunchKernelGGL({kernel}_kernel, grid, block, 0, 0, {kernel_args});\n"
    ));
    out.push_str("    hipDeviceSynchronize();\n");
    for p in &ptr_params {
        let extent = alloc_extent(module, &p.name).unwrap_or_else(|| "1".to_string());
        let elem = p.ty.scalar.c_name();
        out.push_str(&format!(
            "    hipMemcpy({n}, d_{n}, ({extent}) * sizeof({elem}), hipMemcpyDeviceToHost);\n",
            n = p.name
        ));
        if config.pinned {
            out.push_str(&format!("    hipHostUnregister({});\n", p.name));
        }
        out.push_str(&format!("    hipFree(d_{});\n", p.name));
    }
    out.push_str("}\n\n");

    // ---------------- host program ----------------
    let call = format!("launch_{}({});", kernel, arg_list(func));
    out.push_str(&crate::common::render_host_without_kernel(
        module, kernel, &call,
    ));

    Ok(Design {
        backend: Backend::Hip,
        device: config.device.clone(),
        source: out,
    })
}

/// Render the outer-loop body with its first runtime-bound inner loop tiled
/// through `__shared__` staging buffers.
fn render_tiled_body(module: &Module, outer: &ForLoop, arrays: &[String]) -> String {
    // Locate the inner runtime loop.
    let inner_pos = outer
        .body
        .stmts
        .iter()
        .position(|s| matches!(&s.kind, StmtKind::For(il) if il.static_trip_count().is_none()));
    let Some(pos) = inner_pos else {
        // No tileable structure: fall back to the plain body.
        return render_block(&outer.body, 2);
    };
    let StmtKind::For(inner) = &outer.body.stmts[pos].kind else {
        unreachable!()
    };
    let inner_bound = printer::print_expr(&inner.bound);
    let jv = &inner.var;

    let mut out = String::new();
    // Statements before the inner loop.
    for s in &outer.body.stmts[..pos] {
        out.push_str(&render_stmt(s, 2));
    }
    // Shared staging declarations + tiling loops.
    let elem = |name: &str| -> &'static str {
        module
            .items
            .iter()
            .find_map(|item| match item {
                Item::Function(f) => f
                    .params
                    .iter()
                    .find(|p| p.name == name && p.ty.is_pointer())
                    .map(|p| p.ty.scalar.c_name()),
                _ => None,
            })
            .unwrap_or("double")
    };
    for a in arrays {
        out.push_str(&format!(
            "        __shared__ {} s_{a}[PSA_BLOCK];\n",
            elem(a)
        ));
    }
    out.push_str(&format!(
        "        for (int {jv}_tile = 0; {jv}_tile < {inner_bound}; {jv}_tile += PSA_BLOCK) {{\n"
    ));
    out.push_str(&format!(
        "            if ({jv}_tile + (int)threadIdx.x < {inner_bound}) {{\n"
    ));
    for a in arrays {
        out.push_str(&format!(
            "                s_{a}[threadIdx.x] = {a}[{jv}_tile + threadIdx.x];\n"
        ));
    }
    out.push_str("            }\n            __syncthreads();\n");
    out.push_str(&format!(
        "            int {jv}_lim = {inner_bound} - {jv}_tile < PSA_BLOCK ? {inner_bound} - {jv}_tile : PSA_BLOCK;\n"
    ));
    out.push_str(&format!(
        "            for (int {jv} = 0; {jv} < {jv}_lim; {jv}++) {{\n"
    ));
    // Body with array reads redirected to shared staging.
    let mut body = inner.body.clone();
    redirect_to_shared(&mut body, arrays, jv);
    let rendered = render_block(&body, 4);
    out.push_str(&rendered);
    out.push_str("            }\n            __syncthreads();\n        }\n");
    // Statements after the inner loop.
    for s in &outer.body.stmts[pos + 1..] {
        out.push_str(&render_stmt(s, 2));
    }
    out
}

/// Rewrite `arr[j]` reads to `s_arr[j]` for staged arrays when the
/// subscript is exactly the inner induction variable.
fn redirect_to_shared(block: &mut Block, arrays: &[String], inner_var: &str) {
    struct Redirect<'a> {
        arrays: &'a [String],
        var: &'a str,
    }
    impl VisitMut for Redirect<'_> {
        fn visit_expr_mut(&mut self, e: &mut Expr) {
            visit::walk_expr_mut(self, e);
            if let ExprKind::Index { base, index } = &mut e.kind {
                let is_var = index.as_ident() == Some(self.var);
                if is_var {
                    if let ExprKind::Ident(name) = &mut base.kind {
                        if self.arrays.contains(name) {
                            *name = format!("s_{name}");
                        }
                    }
                }
            }
        }
    }
    let mut r = Redirect {
        arrays,
        var: inner_var,
    };
    r.visit_block_mut(block);
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_minicpp::parse_module;

    const APP: &str = "void knl(double* a, double* b, int n) { for (int i = 0; i < n; i++) { b[i] = a[i] * 2.0; } }\
                       int main() { int n = 64; double* a = alloc_double(n); double* b = alloc_double(n); fill_random(a, n, 1); knl(a, b, n); return 0; }";

    fn config() -> HipConfig {
        HipConfig {
            device: "GeForce RTX 2080 Ti".into(),
            blocksize: 256,
            pinned: true,
            shared_mem_arrays: vec![],
        }
    }

    #[test]
    fn emits_kernel_and_launch_management() {
        let m = parse_module(APP, "t").unwrap();
        let d = generate(&m, "knl", &config()).unwrap();
        let s = &d.source;
        assert!(
            s.contains("__global__ void knl_kernel(double* a, double* b, int n)"),
            "{s}"
        );
        assert!(
            s.contains("int i = blockIdx.x * blockDim.x + threadIdx.x;"),
            "{s}"
        );
        assert!(s.contains("if (i < n) {"), "{s}");
        assert!(
            s.contains("hipMalloc((void**)&d_a, (n) * sizeof(double));"),
            "{s}"
        );
        assert!(
            s.contains("hipMemcpy(d_a, a, (n) * sizeof(double), hipMemcpyHostToDevice);"),
            "{s}"
        );
        assert!(
            s.contains("hipLaunchKernelGGL(knl_kernel, grid, block, 0, 0, d_a, d_b, n);"),
            "{s}"
        );
        assert!(s.contains("#define PSA_BLOCK 256"), "{s}");
        assert!(s.contains("launch_knl(a, b, n);"), "{s}");
    }

    #[test]
    fn pinned_memory_lines_are_conditional() {
        let m = parse_module(APP, "t").unwrap();
        let with = generate(&m, "knl", &config()).unwrap();
        assert!(with.source.contains("hipHostRegister"), "{}", with.source);
        let without = generate(
            &m,
            "knl",
            &HipConfig {
                pinned: false,
                ..config()
            },
        )
        .unwrap();
        assert!(!without.source.contains("hipHostRegister"));
        assert!(with.loc() > without.loc());
    }

    #[test]
    fn shared_memory_tiling_emits_staging() {
        let src = "void knl(double* pos, double* f, int n) {\
                     for (int i = 0; i < n; i++) {\
                       double acc = 0.0;\
                       for (int j = 0; j < n; j++) { acc += pos[j] - pos[i]; }\
                       f[i] = acc;\
                     }\
                   }\
                   int main() { int n = 32; double* pos = alloc_double(n); double* f = alloc_double(n); knl(pos, f, n); return 0; }";
        let m = parse_module(src, "t").unwrap();
        let cfg = HipConfig {
            shared_mem_arrays: vec!["pos".into()],
            ..config()
        };
        let d = generate(&m, "knl", &cfg).unwrap();
        let s = &d.source;
        assert!(s.contains("__shared__ double s_pos[PSA_BLOCK];"), "{s}");
        assert!(s.contains("__syncthreads();"), "{s}");
        assert!(
            s.contains("s_pos[threadIdx.x] = pos[j_tile + threadIdx.x];"),
            "{s}"
        );
        // Reads at [j] go to shared; the [i] read stays global.
        assert!(s.contains("s_pos[j] - pos[i]"), "{s}");
    }

    #[test]
    fn loc_grows_substantially_over_reference() {
        let m = parse_module(APP, "t").unwrap();
        let reference = crate::count_loc(&psa_minicpp::print_module(&m));
        let d = generate(&m, "knl", &config()).unwrap();
        let delta = d.loc_delta_pct(reference);
        assert!(
            delta > 25.0,
            "HIP management code must show up in LOC: {delta}%"
        );
    }

    #[test]
    fn noncanonical_loop_shapes_map_correctly() {
        // Strided ascending loop with a non-zero start and `<=` bound.
        let src = "void knl(double* a, int n) { for (int i = 4; i <= n; i += 2) { a[i] = 0.0; } }\
                   int main() { double* a = alloc_double(64); knl(a, 60); return 0; }";
        let m = parse_module(src, "t").unwrap();
        let d = generate(&m, "knl", &config()).unwrap();
        let s = &d.source;
        assert!(
            s.contains("int i = (4) + (blockIdx.x * blockDim.x + threadIdx.x) * (2);"),
            "{s}"
        );
        assert!(
            s.contains("if (i <= n) {"),
            "comparison operator preserved: {s}"
        );
        assert!(
            s.contains("(((n) - (4) + (2) - 1) / (2)"),
            "grid sized by trip count: {s}"
        );
    }

    #[test]
    fn descending_loops_map_with_negative_stride() {
        let src = "void knl(double* a, int n) { for (int i = n; i > 0; i--) { a[i] = 0.0; } }\
                   int main() { double* a = alloc_double(64); knl(a, 63); return 0; }";
        let m = parse_module(src, "t").unwrap();
        let d = generate(&m, "knl", &config()).unwrap();
        let s = &d.source;
        assert!(
            s.contains("int i = (n) - (blockIdx.x * blockDim.x + threadIdx.x) * (1);"),
            "{s}"
        );
        assert!(s.contains("if (i > 0) {"), "{s}");
    }

    #[test]
    fn scalar_only_kernel_needs_no_buffers() {
        let src = "void knl(int n) { for (int i = 0; i < n; i++) { sink(i); } }\
                   int main() { knl(8); return 0; }";
        let m = parse_module(src, "t").unwrap();
        let d = generate(&m, "knl", &config()).unwrap();
        assert!(!d.source.contains("hipMalloc"), "{}", d.source);
        assert!(d.source.contains("hipLaunchKernelGGL"));
    }
}
