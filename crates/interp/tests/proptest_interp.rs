//! Property tests: the interpreter agrees with a Rust reference evaluator
//! on randomly generated programs, is deterministic, and its loop
//! accounting matches the static trip-count algebra.

use proptest::prelude::*;
use psa_interp::{Engine, Interpreter, Program, RunConfig, RuntimeResult, Value, Vm};
use psa_minicpp::parse_module;
use std::sync::Arc;

/// One engine's complete observable surface, stringified for comparison:
/// result, every profile counter, and the full memory image on success, or
/// the exact error (variant, message, span) on failure.
fn observables(run: RuntimeResult<(Value, psa_interp::Profile, psa_interp::Memory)>) -> String {
    match run {
        Ok((result, profile, memory)) => format!("{result:?} | {profile:?} | {memory:?}"),
        Err(e) => format!("err: {e:?}"),
    }
}

fn run_tree(m: &psa_minicpp::Module, config: RunConfig) -> String {
    let mut i = Interpreter::new(m, config);
    let r = i.run_main();
    let (profile, memory) = i.into_parts();
    observables(r.map(|v| (v, profile, memory)))
}

fn run_vm(
    m: &psa_minicpp::Module,
    config: RunConfig,
    compile: fn(&psa_minicpp::Module, &RunConfig) -> Program,
) -> String {
    let program = compile(m, &config);
    let mut vm = Vm::with_program(Arc::new(program), config);
    let r = vm.run_main();
    let (profile, memory) = vm.into_parts();
    observables(r.map(|v| (v, profile, memory)))
}

/// Tree walker, unfused VM, fused-but-unspecialised VM, and the fully
/// specialised VM (typed opcode variants + deferred loop charging) must
/// agree on the complete observable surface — including failures, where
/// the error variant, message, and span must match exactly.
fn assert_four_way(src: &str, config: &RunConfig) {
    let m = parse_module(src, "p").expect("parses");
    let vm_cfg = RunConfig {
        engine: Engine::Vm,
        ..config.clone()
    };
    let tree = run_tree(
        &m,
        RunConfig {
            engine: Engine::Tree,
            ..config.clone()
        },
    );
    let unfused = run_vm(&m, vm_cfg.clone(), Program::compile_unfused);
    let unspec = run_vm(&m, vm_cfg.clone(), Program::compile_unspecialized);
    let full = run_vm(&m, vm_cfg, Program::compile);
    assert_eq!(tree, unfused, "tree vs unfused VM diverged");
    assert_eq!(tree, unspec, "tree vs fused-unspecialised VM diverged");
    assert_eq!(tree, full, "tree vs specialised VM diverged");
}

fn run_int(src: &str) -> i64 {
    let m = parse_module(src, "p").expect("parses");
    let mut interp = Interpreter::new(&m, RunConfig::default());
    match interp.run_main().expect("runs") {
        Value::Int(v) => v,
        other => panic!("expected int, got {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Integer arithmetic matches Rust's wrapping semantics.
    #[test]
    fn integer_arithmetic_matches_rust(a in -10_000i64..10_000, b in -10_000i64..10_000, c in 1i64..100) {
        let src = format!(
            "int main() {{ int a = {a}; int b = {b}; int c = {c}; return a * b + a / c - b % c; }}"
        );
        let expected = a.wrapping_mul(b).wrapping_add(a.wrapping_div(c)).wrapping_sub(b.wrapping_rem(c));
        prop_assert_eq!(run_int(&src), expected);
    }

    /// Ascending loops execute exactly the statically predicted number of
    /// iterations.
    #[test]
    fn observed_trips_match_static_algebra(init in -40i64..40, bound in -40i64..40, step in 1i64..7) {
        let src = format!(
            "int main() {{ int count = 0; for (int i = {init}; i < {bound}; i += {step}) {{ count++; }} return count; }}"
        );
        let m = parse_module(&src, "p").unwrap();
        // Pull the static prediction straight off the AST.
        let f = m.function("main").unwrap();
        let static_trips = f.body.stmts.iter().find_map(|s| match &s.kind {
            psa_minicpp::StmtKind::For(l) => l.static_trip_count(),
            _ => None,
        }).expect("literal bounds");
        prop_assert_eq!(run_int(&src) as u64, static_trips);
    }

    /// Descending loops too.
    #[test]
    fn descending_trips_match(init in -40i64..40, bound in -40i64..40, step in 1i64..7) {
        let src = format!(
            "int main() {{ int count = 0; for (int i = {init}; i > {bound}; i -= {step}) {{ count++; }} return count; }}"
        );
        let m = parse_module(&src, "p").unwrap();
        let f = m.function("main").unwrap();
        let static_trips = f.body.stmts.iter().find_map(|s| match &s.kind {
            psa_minicpp::StmtKind::For(l) => l.static_trip_count(),
            _ => None,
        }).expect("literal bounds");
        prop_assert_eq!(run_int(&src) as u64, static_trips);
    }

    /// Double-precision arithmetic is bit-identical to Rust's f64.
    #[test]
    fn double_arithmetic_matches_rust(a in -100.0f64..100.0, b in 0.5f64..100.0) {
        // Use exactly representable operations and compare via scaled ints.
        let src = format!(
            "int main() {{ double a = {a:?}; double b = {b:?}; double r = a * b + a / b - b; return (int)(r * 1024.0); }}"
        );
        let expected = ((a * b + a / b - b) * 1024.0) as i64;
        prop_assert_eq!(run_int(&src), expected);
    }

    /// Determinism: two runs of the same randomized program agree on both
    /// the result and every profile counter.
    #[test]
    fn runs_are_bit_deterministic(n in 1usize..64, seed in 0i64..1_000_000) {
        let src = format!(
            "int main() {{\
               double* a = alloc_double({n});\
               fill_random(a, {n}, {seed});\
               double s = 0.0;\
               for (int i = 0; i < {n}; i++) {{ s += sqrt(a[i]) * 3.0; }}\
               return (int)(s * 4096.0);\
             }}"
        );
        let m = parse_module(&src, "p").unwrap();
        let mut i1 = Interpreter::new(&m, RunConfig::default());
        let r1 = i1.run_main().unwrap();
        let mut i2 = Interpreter::new(&m, RunConfig::default());
        let r2 = i2.run_main().unwrap();
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(i1.profile().total_cycles, i2.profile().total_cycles);
        prop_assert_eq!(i1.profile().flops, i2.profile().flops);
        prop_assert_eq!(i1.profile().bytes_loaded, i2.profile().bytes_loaded);
    }

    /// The cycle counter is monotone in the workload size, and FLOP counts
    /// scale exactly linearly with the trip count.
    #[test]
    fn profile_scales_with_work(n in 2usize..64) {
        let src_for = |n: usize| format!(
            "int main() {{ double* a = alloc_double({n}); double s = 0.0;\
             for (int i = 0; i < {n}; i++) {{ s += (double)i * 2.0; }} sink(s); return 0; }}"
        );
        let run = |src: &str| {
            let m = parse_module(src, "p").unwrap();
            let mut i = Interpreter::new(&m, RunConfig::default());
            i.run_main().unwrap();
            (i.profile().total_cycles, i.profile().flops)
        };
        let (c1, f1) = run(&src_for(n));
        let (c2, f2) = run(&src_for(n * 2));
        prop_assert!(c2 > c1);
        // Two FLOPs per iteration: mul + add.
        prop_assert_eq!(f1, 2 * n as u64);
        prop_assert_eq!(f2, 4 * n as u64);
    }

    /// Kernel-scoped accounting equals whole-program accounting when the
    /// whole program is the kernel call.
    #[test]
    fn kernel_scope_is_consistent(n in 1usize..48) {
        let src = format!(
            "void knl(double* a, int n) {{ for (int i = 0; i < n; i++) {{ a[i] = a[i] * 2.0 + 1.0; }} }}\
             int main() {{ double* a = alloc_double({n}); knl(a, {n}); return 0; }}"
        );
        let m = parse_module(&src, "p").unwrap();
        let config = RunConfig { watch_function: Some("knl".into()), ..Default::default() };
        let mut interp = Interpreter::new(&m, config);
        interp.run_main().unwrap();
        let p = interp.profile();
        prop_assert_eq!(p.kernel_flops, 2 * n as u64);
        prop_assert_eq!(p.kernel_bytes_loaded, 8 * n as u64);
        prop_assert_eq!(p.kernel_bytes_stored, 8 * n as u64);
        prop_assert!(p.kernel_cycles <= p.total_cycles);
    }

    /// Differential: the bytecode VM and the tree walker agree on the
    /// result and the complete profile of randomized programs mixing
    /// shadowed locals, nested loops, function calls, and array traffic.
    #[test]
    fn vm_matches_tree_walker(
        n in 1usize..48,
        seed in 0i64..1_000_000,
        bias in -50i64..50,
        step in 1i64..5,
    ) {
        let src = format!(
            "int scale(int x) {{ int x2 = x * 2; {{ int x = x2 + {bias}; x2 = x; }} return x2; }}\
             int main() {{\
               double* a = alloc_double({n});\
               fill_random(a, {n}, {seed});\
               double s = 0.0;\
               int acc = 0;\
               for (int i = 0; i < {n}; i += {step}) {{\
                 double t = a[i] * 0.5;\
                 s += sqrt(t + 1.0);\
                 acc += scale(i);\
                 int j = 0;\
                 while (j < 3) {{ j++; if (j == 2 && i % 2 == 0) {{ break; }} }}\
                 acc += j;\
               }}\
               a[0] = s;\
               return acc + (int)(s * 512.0);\
             }}"
        );
        let m = parse_module(&src, "p").unwrap();
        let run = |engine| {
            psa_interp::run_main_profiled(&m, RunConfig { engine, ..Default::default() }).unwrap()
        };
        let tree = run(Engine::Tree);
        let vm = run(Engine::Vm);
        prop_assert_eq!(format!("{:?}", tree.result), format!("{:?}", vm.result));
        prop_assert_eq!(&tree.profile, &vm.profile);
        prop_assert_eq!(format!("{:?}", tree.memory), format!("{:?}", vm.memory));
    }

    /// Four-way differential over deep programs: rushlarsen-shaped gate
    /// chains (immediate-heavy float expressions feeding `exp`, the exact
    /// shapes the peephole fuses into `BinImm2`/`MathCallImm`/`ArithBlock`
    /// and the specialiser then types) plus integer address arithmetic,
    /// casts, nested conditionals, and cross-function calls. All four
    /// execution paths must produce identical results, profiles, memory.
    #[test]
    fn four_way_deep_programs(
        n in 2usize..24,
        gates in 1usize..4,
        seed in 0i64..1_000_000,
        c1 in 0.01f64..0.2,
        c2 in 0.01f64..0.1,
    ) {
        let mut body = String::new();
        for k in 0..gates {
            let ck = c1 + k as f64 * 0.013;
            body.push_str(&format!(
                "double alpha{k} = {ck:?} * exp({c2:?} * v) / (1.0 + exp({c2:?} * v - 1.0));\
                 double beta{k} = 0.02 * exp(v * -{ck:?});\
                 double rate{k} = alpha{k} + beta{k};\
                 double e{k} = exp(0.0 - 0.01 * rate{k});\
                 g[i * {gates} + {k}] = alpha{k} / rate{k} + (g[i * {gates} + {k}] - alpha{k} / rate{k}) * e{k};\
                 "
            ));
        }
        let src = format!(
            "double mix(double a, double b) {{ if (a < b) {{ return b - a; }} return a * 0.5 + b; }}\
             int main() {{\
               int n = {n};\
               double* vs = alloc_double(n);\
               double* g = alloc_double(n * {gates});\
               fill_random(vs, n, {seed});\
               fill_random(g, n * {gates}, {seed} + 1);\
               double acc = 0.0;\
               for (int i = 0; i < n; i++) {{\
                 double v = vs[i];\
                 {body}\
                 acc += mix(v, g[i * {gates}]);\
                 vs[i] = acc;\
               }}\
               sink(acc);\
               return (int)(acc * 64.0);\
             }}"
        );
        assert_four_way(&src, &RunConfig::default());
    }

    /// Four-way differential on runtime-error paths: division by zero,
    /// out-of-bounds stores, and cycle-budget exhaustion mid-loop must
    /// fail identically (same variant, message, and span) on all four
    /// execution paths, with the failure landing at the same iteration.
    #[test]
    fn four_way_error_paths(
        n in 2usize..16,
        seed in 0i64..1_000_000,
        fail_kind in 0usize..3,
        trip in 1usize..40,
    ) {
        // `trip` picks the iteration where the poison triggers; the budget
        // case instead truncates the virtual clock to land mid-run.
        let poison = match fail_kind {
            0 => format!("if (i == {trip}) {{ int z = i - i; s += (double)(7 / z); }}"),
            1 => format!("if (i == {trip}) {{ a[n + i] = s; }}"),
            _ => String::new(),
        };
        let src = format!(
            "int main() {{\
               int n = {n};\
               double* a = alloc_double(n);\
               fill_random(a, n, {seed});\
               double s = 0.0;\
               for (int i = 0; i < 64; i++) {{\
                 s += sqrt(a[i % n] * a[i % n]) + exp(0.001 * (double)i);\
                 {poison}\
                 a[i % n] = s * 0.25;\
               }}\
               sink(s);\
               return 0;\
             }}"
        );
        let config = if fail_kind == 2 {
            // Exhaust the budget partway through the loop: the virtual
            // clock is engine-invariant, so all four paths must stop at
            // the same instant.
            RunConfig { max_cycles: 40 + 11 * trip as u64, ..Default::default() }
        } else {
            RunConfig::default()
        };
        assert_four_way(&src, &config);
    }

    /// Four-way differential over coercion-heavy mixed int/float programs:
    /// doubles fed from int expressions, ints fed from float casts, and
    /// both `double*` and `float*` traffic — the exact shapes the type
    /// specialiser gates on — with optional division-by-zero, index-OOB,
    /// and cycle-budget poisons. The poison-free and budget variants keep
    /// the loop body straight-line, so the budget exhaustion lands inside
    /// a deferred-charge loop and must still fire at the exact cycle.
    #[test]
    fn four_way_mixed_coercion_programs(
        n in 2usize..16,
        seed in 0i64..1_000_000,
        fail_kind in 0usize..4,
        trip in 1usize..32,
        scale in 1i64..5,
    ) {
        let poison = match fail_kind {
            0 => format!("if (i == {trip}) {{ int z = i - i; s += (double)(7 / z); }}"),
            1 => format!("if (i == {trip}) {{ a[n + i] = s; }}"),
            _ => String::new(),
        };
        let src = format!(
            "int main() {{\
               int n = {n};\
               double* a = alloc_double(n);\
               float* b = alloc_float(n);\
               fill_random(a, n, {seed});\
               fill_random(b, n, {seed} + 7);\
               double s = 0.0;\
               int k = {scale};\
               for (int i = 0; i < 48; i++) {{\
                 double u = a[i % n] * 0.5 + (double)(i * k);\
                 s += u / (1.0 + (double)b[i % n]);\
                 s = s + exp(0.001 * u);\
                 {poison}\
                 k = k + ((int)u) % 7;\
                 a[i % n] = s * 0.125;\
               }}\
               sink(s);\
               return k + (int)(s * 32.0);\
             }}"
        );
        let config = if fail_kind == 2 {
            RunConfig { max_cycles: 60 + 13 * trip as u64, ..Default::default() }
        } else {
            RunConfig::default()
        };
        assert_four_way(&src, &config);
    }
}
