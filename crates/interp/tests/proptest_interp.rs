//! Property tests: the interpreter agrees with a Rust reference evaluator
//! on randomly generated programs, is deterministic, and its loop
//! accounting matches the static trip-count algebra.

use proptest::prelude::*;
use psa_interp::{Engine, Interpreter, RunConfig, Value};
use psa_minicpp::parse_module;

fn run_int(src: &str) -> i64 {
    let m = parse_module(src, "p").expect("parses");
    let mut interp = Interpreter::new(&m, RunConfig::default());
    match interp.run_main().expect("runs") {
        Value::Int(v) => v,
        other => panic!("expected int, got {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Integer arithmetic matches Rust's wrapping semantics.
    #[test]
    fn integer_arithmetic_matches_rust(a in -10_000i64..10_000, b in -10_000i64..10_000, c in 1i64..100) {
        let src = format!(
            "int main() {{ int a = {a}; int b = {b}; int c = {c}; return a * b + a / c - b % c; }}"
        );
        let expected = a.wrapping_mul(b).wrapping_add(a.wrapping_div(c)).wrapping_sub(b.wrapping_rem(c));
        prop_assert_eq!(run_int(&src), expected);
    }

    /// Ascending loops execute exactly the statically predicted number of
    /// iterations.
    #[test]
    fn observed_trips_match_static_algebra(init in -40i64..40, bound in -40i64..40, step in 1i64..7) {
        let src = format!(
            "int main() {{ int count = 0; for (int i = {init}; i < {bound}; i += {step}) {{ count++; }} return count; }}"
        );
        let m = parse_module(&src, "p").unwrap();
        // Pull the static prediction straight off the AST.
        let f = m.function("main").unwrap();
        let static_trips = f.body.stmts.iter().find_map(|s| match &s.kind {
            psa_minicpp::StmtKind::For(l) => l.static_trip_count(),
            _ => None,
        }).expect("literal bounds");
        prop_assert_eq!(run_int(&src) as u64, static_trips);
    }

    /// Descending loops too.
    #[test]
    fn descending_trips_match(init in -40i64..40, bound in -40i64..40, step in 1i64..7) {
        let src = format!(
            "int main() {{ int count = 0; for (int i = {init}; i > {bound}; i -= {step}) {{ count++; }} return count; }}"
        );
        let m = parse_module(&src, "p").unwrap();
        let f = m.function("main").unwrap();
        let static_trips = f.body.stmts.iter().find_map(|s| match &s.kind {
            psa_minicpp::StmtKind::For(l) => l.static_trip_count(),
            _ => None,
        }).expect("literal bounds");
        prop_assert_eq!(run_int(&src) as u64, static_trips);
    }

    /// Double-precision arithmetic is bit-identical to Rust's f64.
    #[test]
    fn double_arithmetic_matches_rust(a in -100.0f64..100.0, b in 0.5f64..100.0) {
        // Use exactly representable operations and compare via scaled ints.
        let src = format!(
            "int main() {{ double a = {a:?}; double b = {b:?}; double r = a * b + a / b - b; return (int)(r * 1024.0); }}"
        );
        let expected = ((a * b + a / b - b) * 1024.0) as i64;
        prop_assert_eq!(run_int(&src), expected);
    }

    /// Determinism: two runs of the same randomized program agree on both
    /// the result and every profile counter.
    #[test]
    fn runs_are_bit_deterministic(n in 1usize..64, seed in 0i64..1_000_000) {
        let src = format!(
            "int main() {{\
               double* a = alloc_double({n});\
               fill_random(a, {n}, {seed});\
               double s = 0.0;\
               for (int i = 0; i < {n}; i++) {{ s += sqrt(a[i]) * 3.0; }}\
               return (int)(s * 4096.0);\
             }}"
        );
        let m = parse_module(&src, "p").unwrap();
        let mut i1 = Interpreter::new(&m, RunConfig::default());
        let r1 = i1.run_main().unwrap();
        let mut i2 = Interpreter::new(&m, RunConfig::default());
        let r2 = i2.run_main().unwrap();
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(i1.profile().total_cycles, i2.profile().total_cycles);
        prop_assert_eq!(i1.profile().flops, i2.profile().flops);
        prop_assert_eq!(i1.profile().bytes_loaded, i2.profile().bytes_loaded);
    }

    /// The cycle counter is monotone in the workload size, and FLOP counts
    /// scale exactly linearly with the trip count.
    #[test]
    fn profile_scales_with_work(n in 2usize..64) {
        let src_for = |n: usize| format!(
            "int main() {{ double* a = alloc_double({n}); double s = 0.0;\
             for (int i = 0; i < {n}; i++) {{ s += (double)i * 2.0; }} sink(s); return 0; }}"
        );
        let run = |src: &str| {
            let m = parse_module(src, "p").unwrap();
            let mut i = Interpreter::new(&m, RunConfig::default());
            i.run_main().unwrap();
            (i.profile().total_cycles, i.profile().flops)
        };
        let (c1, f1) = run(&src_for(n));
        let (c2, f2) = run(&src_for(n * 2));
        prop_assert!(c2 > c1);
        // Two FLOPs per iteration: mul + add.
        prop_assert_eq!(f1, 2 * n as u64);
        prop_assert_eq!(f2, 4 * n as u64);
    }

    /// Kernel-scoped accounting equals whole-program accounting when the
    /// whole program is the kernel call.
    #[test]
    fn kernel_scope_is_consistent(n in 1usize..48) {
        let src = format!(
            "void knl(double* a, int n) {{ for (int i = 0; i < n; i++) {{ a[i] = a[i] * 2.0 + 1.0; }} }}\
             int main() {{ double* a = alloc_double({n}); knl(a, {n}); return 0; }}"
        );
        let m = parse_module(&src, "p").unwrap();
        let config = RunConfig { watch_function: Some("knl".into()), ..Default::default() };
        let mut interp = Interpreter::new(&m, config);
        interp.run_main().unwrap();
        let p = interp.profile();
        prop_assert_eq!(p.kernel_flops, 2 * n as u64);
        prop_assert_eq!(p.kernel_bytes_loaded, 8 * n as u64);
        prop_assert_eq!(p.kernel_bytes_stored, 8 * n as u64);
        prop_assert!(p.kernel_cycles <= p.total_cycles);
    }

    /// Differential: the bytecode VM and the tree walker agree on the
    /// result and the complete profile of randomized programs mixing
    /// shadowed locals, nested loops, function calls, and array traffic.
    #[test]
    fn vm_matches_tree_walker(
        n in 1usize..48,
        seed in 0i64..1_000_000,
        bias in -50i64..50,
        step in 1i64..5,
    ) {
        let src = format!(
            "int scale(int x) {{ int x2 = x * 2; {{ int x = x2 + {bias}; x2 = x; }} return x2; }}\
             int main() {{\
               double* a = alloc_double({n});\
               fill_random(a, {n}, {seed});\
               double s = 0.0;\
               int acc = 0;\
               for (int i = 0; i < {n}; i += {step}) {{\
                 double t = a[i] * 0.5;\
                 s += sqrt(t + 1.0);\
                 acc += scale(i);\
                 int j = 0;\
                 while (j < 3) {{ j++; if (j == 2 && i % 2 == 0) {{ break; }} }}\
                 acc += j;\
               }}\
               a[0] = s;\
               return acc + (int)(s * 512.0);\
             }}"
        );
        let m = parse_module(&src, "p").unwrap();
        let run = |engine| {
            psa_interp::run_main_profiled(&m, RunConfig { engine, ..Default::default() }).unwrap()
        };
        let tree = run(Engine::Tree);
        let vm = run(Engine::Vm);
        prop_assert_eq!(format!("{:?}", tree.result), format!("{:?}", vm.result));
        prop_assert_eq!(&tree.profile, &vm.profile);
        prop_assert_eq!(format!("{:?}", tree.memory), format!("{:?}", vm.memory));
    }
}
