//! Differential tests: the bytecode VM and the tree-walking evaluator must
//! be observationally identical — results, profiles (virtual clock and all
//! counters), memory arenas, and errors (variant, message, span).

use psa_interp::{Engine, ProfiledRun, RunConfig, RuntimeError};
use psa_minicpp::parse_module;

fn config(engine: Engine, watch: Option<&str>) -> RunConfig {
    RunConfig {
        engine,
        watch_function: watch.map(String::from),
        ..RunConfig::default()
    }
}

/// Run under both engines and assert identical outcomes. Debug formatting
/// is the equality notion for the artefacts (float Debug is
/// shortest-roundtrip, so it distinguishes all non-NaN bit patterns while
/// treating NaNs of any payload as equal).
fn assert_engines_agree(src: &str, watch: Option<&str>) -> Result<ProfiledRun, RuntimeError> {
    let m = parse_module(src, "diff").expect("parses");
    let tree = psa_interp::run_main_profiled(&m, config(Engine::Tree, watch));
    let vm = psa_interp::run_main_profiled(&m, config(Engine::Vm, watch));
    match (&tree, &vm) {
        (Ok(t), Ok(v)) => {
            assert_eq!(
                format!("{:?}", t.result),
                format!("{:?}", v.result),
                "result diverged"
            );
            assert_eq!(t.profile, v.profile, "profile diverged");
            assert_eq!(
                format!("{:?}", t.memory),
                format!("{:?}", v.memory),
                "memory diverged"
            );
        }
        (Err(t), Err(v)) => assert_eq!(t, v, "errors diverged"),
        (t, v) => panic!("engines disagree on success: tree={t:?} vm={v:?}"),
    }
    vm
}

/// Same, for programs expected to fail; returns the agreed error.
fn assert_same_error(src: &str) -> RuntimeError {
    assert_engines_agree(src, None).expect_err("program should fail")
}

// ----------------------------------------------------------------------
// Scope and shadowing semantics (the slot-resolution soundness cases).
// ----------------------------------------------------------------------

#[test]
fn shadowing_and_scope_programs_agree() {
    for src in [
        // Inner shadowing, assignment through shadowed names.
        "int main() { int x = 1; { int x = 10; x += 5; } { x += 2; } return x; }",
        // Initialiser sees the outer binding.
        "int main() { int x = 3; { int x = x * 7; sink(x); } return x; }",
        // For-loop induction variable scoping, declaring and not.
        "int main() { int i = 100; for (int i = 0; i < 3; i++) { sink(i); } return i; }",
        "int main() { int i = 0; for (i = 2; i < 9; i += 3) { } return i; }",
        // Loop-body declarations reset each iteration.
        "int main() { int s = 0; for (int i = 0; i < 4; i++) { int t = 1; t += i; s += t; } return s; }",
        // Body assignment to the induction variable is overwritten by the
        // step (which advances from the top-of-iteration value).
        "int main() { int n = 0; for (int i = 0; i < 10; i++) { i = 100; n += 1; } return n; }",
        // While loops, breaks, continues, nested.
        "int main() { int s = 0; int i = 0; while (i < 20) { i++; if (i % 3 == 0) { continue; } if (i > 15) { break; } s += i; } return s; }",
        // Shadowing between function scope and parameters.
        "int f(int x) { { int x = 5; sink(x); } return x; }\
         int main() { return f(9); }",
        // Globals read, written, and shadowed by locals.
        "int g = 7;\
         int bump() { g += 1; return g; }\
         int main() { int a = bump(); int g = 100; sink(g); return a + bump(); }",
        // Global initialisers may call functions and see earlier globals.
        "int a = 5; int b = a * 3;\
         int twice(int x) { return x * 2; }\
         int c = twice(b);\
         int main() { return a + b + c; }",
    ] {
        assert_engines_agree(src, None).unwrap();
    }
}

#[test]
fn arithmetic_conversion_and_ternary_programs_agree() {
    for src in [
        // Mixed-type arithmetic, promotions, casts, negation, not.
        "int main() { double d = 1.5; float f = 2.5; int i = 3; bool b = true;\
           double r = d * f + (double)i - (b ? 0.25 : 4.0);\
           return (int)(r * 1000.0) + (!b ? 1 : 2); }",
        // C assignment conversion keeps the variable's runtime type.
        "int main() { int x = 0; x = 7.9; double d = 0.0; d = 3; return x * 10 + (int)d; }",
        // Short-circuit operators charge per evaluated operand.
        "int divisible(int a, int b) { return a % b == 0 ? 1 : 0; }\
         int main() { int n = 0;\
           for (int i = 1; i < 50; i++) { if (i % 2 == 0 && divisible(i, 3) == 1) { n++; } }\
           for (int i = 1; i < 50; i++) { if (i % 2 == 0 || divisible(i, 3) == 1) { n++; } }\
           return n; }",
        // Pointer arithmetic and indexed compound assignment.
        "int main() { double* a = alloc_double(8); fill_random(a, 8, 42);\
           double* mid = a + 4;\
           for (int i = 0; i < 4; i++) { mid[i] += a[i] * 0.5; }\
           double s = 0.0; for (int i = 0; i < 8; i++) { s += a[i]; }\
           return (int)(s * 4096.0); }",
        // Recursion (call cost + depth accounting).
        "int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }\
         int main() { return fib(12); }",
        // Timers.
        "int main() { __psa_timer_start(3); int s = 0;\
           for (int i = 0; i < 100; i++) { s += i; } __psa_timer_stop(3); return s; }",
        // Fractional indices truncate toward zero (both engines use the
        // same integer conversion for index expressions).
        "int main() { double* p = alloc_double(4); p[1] = 8.0; double d = 1.5; return (int)p[d]; }",
        // Math intrinsics of each cost class.
        "int main() { double x = 2.0;\
           double r = sqrt(x) + exp(x) * fabs(0.0 - x) + pow(x, 3.0) + floor(x / 3.0);\
           return (int)(r * 1024.0); }",
    ] {
        assert_engines_agree(src, None).unwrap();
    }
}

#[test]
fn watched_kernel_accounting_agrees() {
    let run = assert_engines_agree(
        "void knl(double* dst, double* src, int n) {\
           for (int i = 0; i < n; i++) { dst[i] = src[i] * 2.0 + 1.0; }\
         }\
         int main() {\
           double* a = alloc_double(32); double* b = alloc_double(32);\
           fill_random(a, 32, 7);\
           knl(b, a, 32); knl(b, a, 32);\
           double s = 0.0; for (int i = 0; i < 32; i++) { s += b[i]; }\
           return (int)(s * 64.0); }",
        Some("knl"),
    )
    .unwrap();
    // Sanity that the watch machinery was actually exercised.
    assert_eq!(run.profile.kernel_calls, 2);
    assert_eq!(run.profile.kernel_arg_ptrs.len(), 2);
    assert!(run.profile.kernel_bytes_loaded > 0);
}

// ----------------------------------------------------------------------
// Intrinsics error paths: wrong arity, wrong argument types, unknown
// intrinsics — identical RuntimeError variants and spans on both engines.
// ----------------------------------------------------------------------

#[test]
fn intrinsic_wrong_arity_errors_agree() {
    let err = assert_same_error("int main() { double r = sqrt(1.0, 2.0); return (int)r; }");
    match err {
        RuntimeError::Intrinsic { ref message, span } => {
            assert_eq!(message, "`sqrt` expects 1 argument(s)");
            assert!(span.line > 0, "span must point into the source");
        }
        other => panic!("expected intrinsic error, got {other:?}"),
    }

    let err = assert_same_error("int main() { fill_random(alloc_double(4), 4); return 0; }");
    assert!(matches!(
        err,
        RuntimeError::Intrinsic { ref message, .. } if message == "fill_random(ptr, n, seed)"
    ));

    let err = assert_same_error("int main() { double r = pow(2.0); return (int)r; }");
    assert!(matches!(
        err,
        RuntimeError::Intrinsic { ref message, .. } if message == "`pow` expects 2 argument(s)"
    ));
}

#[test]
fn intrinsic_wrong_type_errors_agree() {
    let err = assert_same_error(
        "int main() { double* p = alloc_double(4); double r = sqrt(p); return (int)r; }",
    );
    assert!(matches!(
        err,
        RuntimeError::Intrinsic { ref message, .. } if message == "`sqrt` needs a numeric argument"
    ));

    let err = assert_same_error(
        "int main() { double* p = alloc_double(4); double r = pow(2.0, p); return (int)r; }",
    );
    assert!(matches!(
        err,
        RuntimeError::Intrinsic { ref message, .. } if message == "`pow` needs numeric arguments"
    ));

    let err = assert_same_error(
        "int main() { double* p = alloc_double(4); double* q = alloc_double(p); return 0; }",
    );
    assert!(matches!(
        err,
        RuntimeError::Intrinsic { ref message, .. } if message == "alloc needs an integer length"
    ));

    let err = assert_same_error("int main() { double* p = alloc_double(0 - 3); return 0; }");
    assert!(matches!(
        err,
        RuntimeError::Intrinsic { ref message, .. } if message == "negative allocation length -3"
    ));

    let err = assert_same_error("int main() { fill_random(1, 2, 3); return 0; }");
    assert!(matches!(
        err,
        RuntimeError::Intrinsic { ref message, .. } if message == "fill_random needs a pointer"
    ));

    let err = assert_same_error("int main() { __psa_timer_stop(7); return 0; }");
    assert!(matches!(
        err,
        RuntimeError::Intrinsic { ref message, .. } if message == "timer 7 stopped without start"
    ));
}

#[test]
fn unknown_callee_errors_agree() {
    let err = assert_same_error("int main() { return frobnicate(1); }");
    match err {
        RuntimeError::Unbound { ref name, span } => {
            assert_eq!(name, "frobnicate");
            assert!(span.line > 0);
        }
        other => panic!("expected unbound error, got {other:?}"),
    }
}

#[test]
fn user_function_arity_errors_agree() {
    let err = assert_same_error("int f(int x) { return x; } int main() { return f(1, 2); }");
    assert!(matches!(
        err,
        RuntimeError::Type { ref message, .. } if message == "`f` expects 1 arguments, got 2"
    ));
}

// ----------------------------------------------------------------------
// General runtime error paths.
// ----------------------------------------------------------------------

#[test]
fn runtime_error_paths_agree() {
    for src in [
        // Unbound reads and writes.
        "int main() { return nope; }",
        "int main() { nope = 3; return 0; }",
        "int main() { nope += 3; return 0; }",
        "int main() { for (q = 0; q < 3; q++) { } return 0; }",
        // Division by zero, int and in a loop bound position.
        "int main() { int z = 0; return 4 / z; }",
        "int main() { int z = 0; int s = 0; for (int i = 0; i < 10 / z; i++) { s++; } return s; }",
        // Memory bounds.
        "int main() { double* a = alloc_double(4); return (int)a[9]; }",
        "int main() { double* a = alloc_double(4); a[0 - 1] = 2.0; return 0; }",
        // Type errors in conditions, coercions, indexing.
        "int main() { double* p = alloc_double(1); if (p) { return 1; } return 0; }",
        "int main() { double* p = alloc_double(1); int x = 0; x = p; return x; }",
        "int main() { int x = 5; return (int)x[0]; }",
        "int main() { double* p = alloc_double(4); for (int i = p; i < 3; i++) { } return 0; }",
        // Stack overflow.
        "int loop(int n) { return loop(n + 1); } int main() { return loop(0); }",
        // Negative array length.
        "int main() { int n = 0 - 2; double a[n]; return 0; }",
    ] {
        assert_engines_agree(src, None).expect_err("program should fail");
    }
}

/// The virtual clocks agree at the exact cycle where the budget runs out:
/// sweeping the budget over a window, both engines flip from error to
/// success at the same threshold and report the same error.
#[test]
fn cycle_budget_exhaustion_is_cycle_exact() {
    let src = "int main() { int s = 0; for (int i = 0; i < 9; i++) { s += i * i; } return s; }";
    let m = parse_module(src, "budget").unwrap();
    let mut flips = 0;
    let mut last_ok = false;
    for max_cycles in 0..220 {
        let mk = |engine| RunConfig {
            engine,
            max_cycles,
            ..RunConfig::default()
        };
        let tree = psa_interp::run_main_profiled(&m, mk(Engine::Tree));
        let vm = psa_interp::run_main_profiled(&m, mk(Engine::Vm));
        match (&tree, &vm) {
            (Ok(t), Ok(v)) => assert_eq!(t.profile, v.profile),
            (Err(t), Err(v)) => assert_eq!(t, v),
            _ => panic!("engines disagree at budget {max_cycles}: tree={tree:?} vm={vm:?}"),
        }
        let ok = tree.is_ok();
        if ok != last_ok {
            flips += 1;
            last_ok = ok;
        }
    }
    assert_eq!(flips, 1, "expected a single error→success threshold");
}
