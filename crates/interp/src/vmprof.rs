//! Optional VM profiler: attributes virtual cycles and wall time to
//! `(function, loop)` frames.
//!
//! The profiler is sampling-free: the VM notifies it on every user-function
//! call and loop entry/exit, and it keeps a frame stack mirroring the VM's
//! own. Each frame accumulates the virtual cycles and wall time charged
//! while it was the innermost frame (*self* time); exclusive times are
//! aggregated per **frame path** (the stack of keys from the root), so
//! recursive functions attribute correctly and a collapsed-stack flamegraph
//! falls straight out of the data.
//!
//! The profiler is deliberately **not observable**: it lives on the [`Vm`]
//! outside the [`crate::Profile`] (which is compared bit-for-bit between
//! engines), it never touches the virtual clock, and with profiling off the
//! VM pays nothing. The differential test `tests/vm_profiler.rs` checks
//! both properties, plus the reconciliation invariant
//! `Σ self_cycles == total_cycles`.
//!
//! Deferred loop charging is invisible here too: the profiler only reads
//! the virtual clock at frame enter/exit boundaries, and a `DeferredFor`
//! reconciles its accumulated charge into `Profile::total_cycles` before
//! the enclosing `LoopExit` (or any error path) observes the clock — so
//! frame attribution under deferred accounting is bit-identical to
//! immediate per-instruction charging.
//!
//! [`Vm`]: crate::vm::Vm

use crate::compile::Program;
use psa_minicpp::ast::NodeId;
use std::collections::HashMap;
use std::time::Instant;

/// Identity of one profiling frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FrameKey {
    /// The whole `run_main` (globals init + `main`).
    Root,
    /// A user function, by program function index.
    Func(u16),
    /// A loop, by AST node id.
    Loop(NodeId),
}

/// A frame currently on the stack.
struct Open {
    key: FrameKey,
    start_cycles: u64,
    start: Instant,
    /// Cycles/wall attributed to frames opened (and closed) below this one.
    child_cycles: u64,
    child_wall_ns: u64,
}

/// Exclusive totals for one frame path.
#[derive(Default)]
struct Agg {
    self_cycles: u64,
    self_wall_ns: u64,
    entries: u64,
}

/// The live profiler the VM drives.
pub struct VmProfiler {
    stack: Vec<Open>,
    paths: HashMap<Vec<FrameKey>, Agg>,
}

impl VmProfiler {
    pub fn new() -> Self {
        VmProfiler {
            stack: Vec::new(),
            paths: HashMap::new(),
        }
    }

    /// Current stack depth (frames open).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Open a frame at the current virtual clock.
    pub fn enter(&mut self, key: FrameKey, now_cycles: u64) {
        self.stack.push(Open {
            key,
            start_cycles: now_cycles,
            start: Instant::now(),
            child_cycles: 0,
            child_wall_ns: 0,
        });
    }

    /// Close the innermost frame at the current virtual clock.
    pub fn exit(&mut self, now_cycles: u64) {
        let frame = self.stack.pop().expect("open profiler frame");
        let total_cycles = now_cycles.saturating_sub(frame.start_cycles);
        let total_wall = frame.start.elapsed().as_nanos() as u64;
        let self_cycles = total_cycles.saturating_sub(frame.child_cycles);
        let self_wall = total_wall.saturating_sub(frame.child_wall_ns);

        let mut path: Vec<FrameKey> = self.stack.iter().map(|f| f.key).collect();
        path.push(frame.key);
        let agg = self.paths.entry(path).or_default();
        agg.self_cycles += self_cycles;
        agg.self_wall_ns += self_wall;
        agg.entries += 1;

        if let Some(parent) = self.stack.last_mut() {
            parent.child_cycles += total_cycles;
            parent.child_wall_ns += total_wall;
        }
    }

    /// Close frames until `depth` remain. Error paths unwind the VM's call
    /// stack without visiting the per-frame exits; callers use the depth
    /// they recorded at entry so attribution stays consistent regardless.
    pub fn exit_to(&mut self, depth: usize, now_cycles: u64) {
        while self.stack.len() > depth {
            self.exit(now_cycles);
        }
    }

    /// Consume the profiler into an aggregated report. `root` names the
    /// `Root` frame (conventionally the module/application name).
    pub fn finish(self, program: &Program, root: &str) -> VmProfile {
        let name_of = |key: &FrameKey| -> String {
            match key {
                FrameKey::Root => root.to_string(),
                FrameKey::Func(fidx) => program.funcs[*fidx as usize].name.clone(),
                FrameKey::Loop(id) => format!("loop#{}", id.0),
            }
        };

        let mut total_cycles = 0u64;
        let mut total_wall_ns = 0u64;
        let mut rows: HashMap<FrameKey, FrameRow> = HashMap::new();
        let mut collapsed = Vec::new();
        for (path, agg) in &self.paths {
            total_cycles += agg.self_cycles;
            total_wall_ns += agg.self_wall_ns;
            let leaf = *path.last().expect("non-empty path");
            {
                let row = rows
                    .entry(leaf)
                    .or_insert_with(|| FrameRow::named(name_of(&leaf)));
                row.self_cycles += agg.self_cycles;
                row.self_wall_ns += agg.self_wall_ns;
                row.entries += agg.entries;
            }
            // Inclusive time: each frame on the path absorbs the leaf's
            // exclusive time once (dedup handles recursion: a key appearing
            // twice in one path must not double-count).
            let mut seen: Vec<FrameKey> = Vec::with_capacity(path.len());
            for key in path {
                if seen.contains(key) {
                    continue;
                }
                seen.push(*key);
                let row = rows
                    .entry(*key)
                    .or_insert_with(|| FrameRow::named(name_of(key)));
                row.total_cycles += agg.self_cycles;
                row.total_wall_ns += agg.self_wall_ns;
            }
            if agg.self_cycles > 0 {
                let frames: Vec<String> = path.iter().map(&name_of).collect();
                collapsed.push((frames.join(";"), agg.self_cycles));
            }
        }

        let mut rows: Vec<FrameRow> = rows.into_values().collect();
        rows.sort_by(|a, b| {
            b.self_cycles
                .cmp(&a.self_cycles)
                .then_with(|| a.name.cmp(&b.name))
        });
        collapsed.sort();
        VmProfile {
            total_cycles,
            total_wall_ns,
            rows,
            collapsed,
        }
    }
}

impl Default for VmProfiler {
    fn default() -> Self {
        VmProfiler::new()
    }
}

/// Aggregated self/total times for one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRow {
    pub name: String,
    /// Virtual cycles spent with this frame innermost.
    pub self_cycles: u64,
    /// Virtual cycles spent with this frame anywhere on the stack.
    pub total_cycles: u64,
    pub self_wall_ns: u64,
    pub total_wall_ns: u64,
    /// Completed executions of the frame.
    pub entries: u64,
}

impl FrameRow {
    fn named(name: String) -> Self {
        FrameRow {
            name,
            self_cycles: 0,
            total_cycles: 0,
            self_wall_ns: 0,
            total_wall_ns: 0,
            entries: 0,
        }
    }
}

/// The finished report.
#[derive(Debug, Clone)]
pub struct VmProfile {
    /// Virtual cycles across the whole profiled run; equals the sum of
    /// every row's `self_cycles` (the reconciliation invariant).
    pub total_cycles: u64,
    pub total_wall_ns: u64,
    /// Per-frame rows, hottest `self_cycles` first.
    pub rows: Vec<FrameRow>,
    /// Collapsed stacks (`frame;frame;frame`, exclusive cycles), sorted;
    /// the flamegraph text format.
    pub collapsed: Vec<(String, u64)>,
}

impl VmProfile {
    /// Collapsed-stack text, one `stack count` line each — feed directly to
    /// `flamegraph.pl` / `inferno-flamegraph`.
    pub fn collapsed_text(&self) -> String {
        let mut out = String::new();
        for (stack, cycles) in &self.collapsed {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&cycles.to_string());
            out.push('\n');
        }
        out
    }

    /// Human-readable self/total table, hottest first.
    pub fn table_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>14} {:>14} {:>7} {:>10}\n",
            "frame", "self_cycles", "total_cycles", "self%", "entries"
        ));
        for row in &self.rows {
            let pct = if self.total_cycles == 0 {
                0.0
            } else {
                row.self_cycles as f64 * 100.0 / self.total_cycles as f64
            };
            out.push_str(&format!(
                "{:<24} {:>14} {:>14} {:>6.1}% {:>10}\n",
                row.name, row.self_cycles, row.total_cycles, pct, row.entries
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::RunConfig;
    use psa_minicpp::parse_module;

    fn program() -> Program {
        let m = parse_module(
            "int f(int x) { return x + 1; } int main() { return f(1); }",
            "t",
        )
        .unwrap();
        Program::compile(&m, &RunConfig::default())
    }

    #[test]
    fn self_cycles_sum_to_total_and_nest() {
        let program = program();
        let mut p = VmProfiler::new();
        p.enter(FrameKey::Root, 0);
        p.enter(FrameKey::Func(1), 10);
        p.enter(FrameKey::Loop(psa_minicpp::ast::NodeId(7)), 30);
        p.exit(90); // loop: self 60
        p.exit(100); // func: total 90, self 30
        p.exit(110); // root: total 110, self 20
        let profile = p.finish(&program, "app");

        assert_eq!(profile.total_cycles, 110);
        let sum: u64 = profile.rows.iter().map(|r| r.self_cycles).sum();
        assert_eq!(sum, profile.total_cycles);
        let root = profile.rows.iter().find(|r| r.name == "app").unwrap();
        assert_eq!(root.total_cycles, 110);
        assert_eq!(root.self_cycles, 20);
        let lp = profile.rows.iter().find(|r| r.name == "loop#7").unwrap();
        assert_eq!(lp.self_cycles, 60);
        assert_eq!(lp.total_cycles, 60);
    }

    #[test]
    fn recursion_does_not_double_count_inclusive_time() {
        let program = program();
        let mut p = VmProfiler::new();
        p.enter(FrameKey::Root, 0);
        p.enter(FrameKey::Func(1), 0);
        p.enter(FrameKey::Func(1), 10); // recursive call
        p.exit(50);
        p.exit(60);
        p.exit(60);
        let profile = p.finish(&program, "app");
        let f = profile
            .rows
            .iter()
            .find(|r| r.name == program.funcs[1].name)
            .unwrap();
        assert_eq!(f.total_cycles, 60, "inclusive counts each path once");
        assert_eq!(f.self_cycles, 60);
        assert_eq!(f.entries, 2);
    }

    #[test]
    fn collapsed_stacks_cover_all_self_cycles() {
        let program = program();
        let mut p = VmProfiler::new();
        p.enter(FrameKey::Root, 0);
        p.enter(FrameKey::Func(0), 5);
        p.exit(25);
        p.exit(30);
        let profile = p.finish(&program, "app");
        let text = profile.collapsed_text();
        let covered: u64 = text
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(covered, profile.total_cycles);
        assert!(text.contains(&format!("app;{}", program.funcs[0].name)));
    }

    #[test]
    fn exit_to_unwinds_abandoned_frames() {
        let program = program();
        let mut p = VmProfiler::new();
        p.enter(FrameKey::Root, 0);
        p.enter(FrameKey::Func(1), 10);
        p.enter(FrameKey::Loop(psa_minicpp::ast::NodeId(3)), 20);
        // Error path: unwind everything at once.
        p.exit_to(0, 100);
        assert_eq!(p.depth(), 0);
        let profile = p.finish(&program, "app");
        let sum: u64 = profile.rows.iter().map(|r| r.self_cycles).sum();
        assert_eq!(sum, profile.total_cycles);
        assert_eq!(profile.total_cycles, 100);
    }
}
