//! Runtime errors raised during interpretation.

use psa_minicpp::Span;
use std::fmt;

/// Result alias for interpreter operations.
pub type RuntimeResult<T> = std::result::Result<T, RuntimeError>;

/// A runtime failure. Dynamic analyses treat any of these as a hard error —
/// the reference description must execute cleanly before a design-flow will
/// transform it.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Name lookup failed (unbound variable or unknown function).
    Unbound { name: String, span: Span },
    /// Type confusion, e.g. indexing a scalar.
    Type { message: String, span: Span },
    /// Out-of-bounds or dangling memory access.
    Memory { message: String, span: Span },
    /// Division or remainder by zero.
    DivideByZero { span: Span },
    /// The virtual-cycle budget was exhausted (runaway loop guard).
    CycleBudgetExhausted { limit: u64 },
    /// Call stack exceeded the configured depth.
    StackOverflow { depth: usize },
    /// Malformed intrinsic usage.
    Intrinsic { message: String, span: Span },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Unbound { name, span } => {
                write!(f, "{span}: `{name}` is not bound")
            }
            RuntimeError::Type { message, span } => write!(f, "{span}: type error: {message}"),
            RuntimeError::Memory { message, span } => {
                write!(f, "{span}: memory error: {message}")
            }
            RuntimeError::DivideByZero { span } => write!(f, "{span}: division by zero"),
            RuntimeError::CycleBudgetExhausted { limit } => {
                write!(f, "virtual cycle budget of {limit} exhausted")
            }
            RuntimeError::StackOverflow { depth } => {
                write!(f, "call stack exceeded {depth} frames")
            }
            RuntimeError::Intrinsic { message, span } => {
                write!(f, "{span}: intrinsic error: {message}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_with_location() {
        let e = RuntimeError::Unbound {
            name: "x".into(),
            span: Span::point(3, 1),
        };
        assert_eq!(e.to_string(), "3:1: `x` is not bound");
        let e = RuntimeError::CycleBudgetExhausted { limit: 10 };
        assert!(e.to_string().contains("10"));
    }
}
