//! Static register type inference over the compiled bytecode, and the
//! specialisation rewrite that uses it.
//!
//! A forward dataflow pass computes, for every reachable instruction, the
//! lattice type of every frame register at that point. The lattice is flat:
//! concrete tags ([`Ty::Int`], [`Ty::F64`], …) with [`Ty::Any`] on top —
//! there is no bottom, because an unwritten register really does hold
//! `Value::Unit` at runtime (frames are unit-initialised).
//!
//! Seeding is *mostly* sound:
//!
//! * scalar parameters are exact — `ops::coerce` guarantees the declared
//!   tag at binding time;
//! * literals, casts, coercions, `AllocArray` and the math intrinsics have
//!   statically known result tags;
//! * **pointer element types are optimistic**: `ops::coerce` accepts *any*
//!   pointer for a pointer-typed parameter, so a `double*` parameter may
//!   receive an `int` buffer at runtime. Every specialised handler in the
//!   VM therefore re-checks the runtime tag and falls back to the generic
//!   implementation — wrong inference can cost a missed fast path, never a
//!   wrong result.
//!
//! The rewrite ([`specialize`]) is strictly 1:1 — no instruction is added,
//! removed or moved, so jump targets are untouched. Each rewritten form
//! carries everything its VM fallback needs (original immediates, spans,
//! the coercion marker) to replay the generic semantics bit-for-bit when
//! the runtime tags disagree with the inference.

use crate::compile::{CallSite, CallTarget, Insn, NO_SPAN};
use crate::intrinsics::Intrinsic;
use crate::value::Value;
use psa_minicpp::ast::{BinOp, Scalar, Type, UnOp};

/// Inferred type of one register at one program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ty {
    /// `Value::Unit` (unwritten register or void result).
    Unit,
    Int,
    F32,
    F64,
    Bool,
    /// Pointer whose element scalar is *believed* to be this (see the
    /// module doc: optimistic for parameters, exact for allocations).
    Ptr(Scalar),
    /// Pointer of unknown element type (null-initialised declarations,
    /// joins of differently-typed pointers).
    PtrAny,
    /// Top: nothing is known.
    Any,
}

/// Lattice join: equal stays, pointers stay pointers, anything else is Any.
fn join(a: Ty, b: Ty) -> Ty {
    if a == b {
        return a;
    }
    match (a, b) {
        (Ty::Ptr(_) | Ty::PtrAny, Ty::Ptr(_) | Ty::PtrAny) => Ty::PtrAny,
        _ => Ty::Any,
    }
}

fn ty_of_value(v: &Value) -> Ty {
    match v {
        Value::Int(_) => Ty::Int,
        Value::Float(_) => Ty::F32,
        Value::Double(_) => Ty::F64,
        Value::Bool(_) => Ty::Bool,
        // Compile-time pointer constants are null-pointer declarations;
        // their element type is unknowable.
        Value::Ptr(_) => Ty::PtrAny,
        Value::Unit => Ty::Unit,
    }
}

fn ty_of_scalar(s: Scalar) -> Ty {
    match s {
        Scalar::Int => Ty::Int,
        Scalar::Float => Ty::F32,
        Scalar::Double => Ty::F64,
        Scalar::Bool => Ty::Bool,
        Scalar::Void => Ty::Unit,
    }
}

fn ty_of_type(t: Type) -> Ty {
    if t.is_pointer() {
        Ty::Ptr(t.scalar)
    } else {
        ty_of_scalar(t.scalar)
    }
}

/// Numeric promotion rank, mirroring `crate::value::rank`. `None` for
/// non-numeric types.
fn rank(t: Ty) -> Option<u8> {
    match t {
        Ty::Bool => Some(0),
        Ty::Int => Some(1),
        Ty::F32 => Some(2),
        Ty::F64 => Some(3),
        _ => None,
    }
}

/// Result type of `ops::apply_binary` on operands of the given types.
fn bin_result(op: BinOp, l: Ty, r: Ty) -> Ty {
    if op.is_comparison() {
        // Success yields Bool whatever the operands were.
        return Ty::Bool;
    }
    // Pointer arithmetic: ptr ± integral keeps the pointer type.
    if matches!(op, BinOp::Add | BinOp::Sub)
        && matches!(l, Ty::Ptr(_) | Ty::PtrAny)
        && matches!(r, Ty::Int | Ty::Bool)
    {
        return l;
    }
    match (rank(l), rank(r)) {
        (Some(a), Some(b)) => match a.max(b) {
            0 | 1 => Ty::Int,
            2 => Ty::F32,
            _ => Ty::F64,
        },
        _ => Ty::Any,
    }
}

/// `ops::convert_assign` result type: the assigned value adopts the slot's
/// current scalar tag; `Unit`/pointer slots take the new value unchanged.
fn assign_result(cur: Ty, new: Ty) -> Ty {
    match cur {
        Ty::Int | Ty::F32 | Ty::F64 | Ty::Bool => cur,
        Ty::Unit | Ty::Ptr(_) | Ty::PtrAny => new,
        Ty::Any => Ty::Any,
    }
}

/// `ops::coerce` result type for a declared type.
fn coerce_result(ty: Type, src: Ty) -> Ty {
    if ty.is_pointer() {
        // On success the pointer passes through unchanged.
        return match src {
            Ty::Ptr(_) | Ty::PtrAny => src,
            _ => Ty::PtrAny,
        };
    }
    ty_of_scalar(ty.scalar)
}

/// Element type loaded from a pointer of type `p` (Any when unknown).
fn elem_of(p: Ty) -> Ty {
    match p {
        Ty::Ptr(s) => ty_of_scalar(s),
        _ => Ty::Any,
    }
}

/// Result types per call site, indexed by the `site` field of
/// [`Insn::Call`]. Allocation intrinsics give precisely-typed pointers and
/// math intrinsics their precision's float; user calls and the remaining
/// intrinsics stay [`Ty::Any`] (MiniC++ does not coerce return values, so
/// a declared return type is not a runtime guarantee).
pub(crate) fn call_ret_types(sites: &[CallSite]) -> Vec<Ty> {
    sites
        .iter()
        .map(|s| match s.target {
            CallTarget::Intrinsic(Intrinsic::Alloc(scalar)) => Ty::Ptr(scalar),
            CallTarget::Intrinsic(Intrinsic::Math(f)) => {
                if f.single {
                    Ty::F32
                } else {
                    Ty::F64
                }
            }
            _ => Ty::Any,
        })
        .collect()
}

/// Apply one straight-line instruction's effect on the register state.
/// Control-flow instructions are handled by the driver; this covers every
/// form that only writes registers.
fn transfer(insn: &Insn, st: &mut [Ty], call_rets: &[Ty]) {
    let w = |st: &mut [Ty], r: u16, t: Ty| st[r as usize] = t;
    match insn {
        Insn::Const { dst, v } => w(st, *dst, ty_of_value(v)),
        Insn::Copy { dst, src } => w(st, *dst, st[*src as usize]),
        Insn::LoadGlobal { dst, .. } => w(st, *dst, Ty::Any),
        Insn::CopyToGlobal { .. } | Insn::AssignGlobal { .. } => {}
        Insn::AssignLocal { slot, src, .. } => {
            let t = assign_result(st[*slot as usize], st[*src as usize]);
            w(st, *slot, t);
        }
        Insn::Coerce { dst, src, ty, .. } | Insn::Cast { dst, src, ty, .. } => {
            let t = coerce_result(*ty, st[*src as usize]);
            w(st, *dst, t);
        }
        Insn::Un { op, dst, src, .. } => {
            let t = match op {
                UnOp::Neg => match st[*src as usize] {
                    t @ (Ty::Int | Ty::F32 | Ty::F64) => t,
                    _ => Ty::Any,
                },
                UnOp::Not => Ty::Bool,
            };
            w(st, *dst, t);
        }
        Insn::Bin { op, dst, l, r, .. } => {
            let t = bin_result(*op, st[*l as usize], st[*r as usize]);
            w(st, *dst, t);
        }
        Insn::BinImm {
            op, dst, l, imm, ..
        } => {
            let t = bin_result(*op, st[*l as usize], ty_of_value(imm));
            w(st, *dst, t);
        }
        Insn::BinImmRev {
            op, dst, imm, r, ..
        } => {
            let t = bin_result(*op, ty_of_value(imm), st[*r as usize]);
            w(st, *dst, t);
        }
        Insn::ToBool { dst, .. } => w(st, *dst, Ty::Bool),
        Insn::Index { dst, base, .. } => w(st, *dst, elem_of(st[*base as usize])),
        Insn::IndexAddr { dst, base, .. } => {
            let t = match st[*base as usize] {
                t @ (Ty::Ptr(_) | Ty::PtrAny) => t,
                _ => Ty::PtrAny,
            };
            w(st, *dst, t);
        }
        Insn::LoadElem { dst, addr, .. } => w(st, *dst, elem_of(st[*addr as usize])),
        Insn::StoreElem { .. } => {}
        Insn::AllocArray { dst, scalar, .. } => w(st, *dst, Ty::Ptr(*scalar)),
        Insn::Call { dst, site, .. } => w(
            st,
            *dst,
            call_rets.get(*site as usize).copied().unwrap_or(Ty::Any),
        ),
        Insn::MathCall { dst, f, .. } => {
            w(st, *dst, if f.single { Ty::F32 } else { Ty::F64 });
        }
        Insn::ForInit { slot, .. } | Insn::ForStep { slot, .. } => w(st, *slot, Ty::Int),
        // Superinstructions (pair-fusion runs before specialisation).
        Insn::BinAssign { op, slot, l, r, .. } => {
            let v = bin_result(*op, st[*l as usize], st[*r as usize]);
            let t = assign_result(st[*slot as usize], v);
            w(st, *slot, t);
        }
        Insn::BinImmAssign {
            op, slot, l, imm, ..
        } => {
            let v = bin_result(*op, st[*l as usize], ty_of_value(imm));
            let t = assign_result(st[*slot as usize], v);
            w(st, *slot, t);
        }
        Insn::IndexBin {
            op, dst, base, r, ..
        } => {
            let t = bin_result(*op, elem_of(st[*base as usize]), st[*r as usize]);
            w(st, *dst, t);
        }
        Insn::IndexBinImm {
            op, dst, base, imm, ..
        } => {
            let t = bin_result(*op, elem_of(st[*base as usize]), ty_of_value(imm));
            w(st, *dst, t);
        }
        Insn::BinCoerce { dst, ty, .. }
        | Insn::BinImmCoerce { dst, ty, .. }
        | Insn::IndexCoerce { dst, ty, .. }
        | Insn::IndexBinCoerce { dst, ty, .. }
        | Insn::IndexBinImmCoerce { dst, ty, .. } => {
            // The producer result is scalar or errors; the coercion fixes
            // the success tag entirely.
            w(st, *dst, coerce_result(*ty, Ty::Any));
        }
        Insn::MathCallCoerce { dst, ty, .. } => w(st, *dst, coerce_result(*ty, Ty::Any)),
        Insn::BinImm2 {
            op1,
            op2,
            dst,
            l,
            imm1,
            imm2,
            ..
        } => {
            let t1 = bin_result(*op1, st[*l as usize], ty_of_value(imm1));
            let t = bin_result(*op2, t1, ty_of_value(imm2));
            w(st, *dst, t);
        }
        Insn::MathCallImm { dst, f, .. } => {
            w(st, *dst, if f.single { Ty::F32 } else { Ty::F64 });
        }
        Insn::ArithBlock(steps) => {
            // Defensive: specialisation runs before blocking, but fold the
            // steps anyway so the pass is order-independent.
            for s in steps.iter() {
                transfer(s, st, call_rets);
            }
        }
        // Specialised forms only exist after this pass; treat their writes
        // conservatively if ever encountered.
        Insn::F64Bin { dst, .. }
        | Insn::F64BinImm { dst, .. }
        | Insn::F64Index { dst, .. }
        | Insn::F64MathCallImm { dst, .. } => w(st, *dst, Ty::Any),
        Insn::F64BinAssign { slot, .. } | Insn::F64BinImmAssign { slot, .. } => {
            w(st, *slot, Ty::Any)
        }
        Insn::F64Store { .. } => {}
        Insn::DeferredFor(d) => {
            for s in d.body.iter() {
                transfer(s, st, call_rets);
            }
            w(st, d.slot, Ty::Int);
        }
        // Control flow / no register writes: handled by the driver.
        Insn::Jump(_)
        | Insn::JumpIfFalse { .. }
        | Insn::AndShort { .. }
        | Insn::OrShort { .. }
        | Insn::Ret { .. }
        | Insn::LoopEnter { .. }
        | Insn::LoopExit
        | Insn::ForTest { .. }
        | Insn::WhileTest { .. }
        | Insn::Raise(_)
        | Insn::CmpBranch { .. }
        | Insn::CmpImmBranch { .. }
        | Insn::CmpWhile { .. }
        | Insn::CmpImmWhile { .. }
        | Insn::ForStepJump { .. } => {}
    }
}

/// Per-pc entry states for one code chunk (`None` = unreachable).
fn analyze(
    code: &[Insn],
    params: &[Type],
    nregs: usize,
    call_rets: &[Ty],
) -> Vec<Option<Box<[Ty]>>> {
    let mut state_at: Vec<Option<Box<[Ty]>>> = vec![None; code.len()];
    if code.is_empty() {
        return state_at;
    }
    let mut entry: Box<[Ty]> = vec![Ty::Unit; nregs].into_boxed_slice();
    for (i, t) in params.iter().enumerate() {
        entry[i] = ty_of_type(*t);
    }
    let mut work: Vec<usize> = Vec::new();
    merge_into(&mut state_at, &mut work, 0, &entry);
    while let Some(pc) = work.pop() {
        let mut st = state_at[pc].clone().expect("queued pc has a state");
        match &code[pc] {
            Insn::Jump(t) => merge_into(&mut state_at, &mut work, *t as usize, &st),
            Insn::Ret { .. } | Insn::Raise(_) => {}
            Insn::JumpIfFalse { target, .. }
            | Insn::CmpBranch { target, .. }
            | Insn::CmpImmBranch { target, .. } => {
                merge_into(&mut state_at, &mut work, *target as usize, &st);
                merge_into(&mut state_at, &mut work, pc + 1, &st);
            }
            Insn::AndShort { dst, target, .. } | Insn::OrShort { dst, target, .. } => {
                // The short-circuit edge writes the Bool result; the
                // fall-through edge leaves `dst` untouched.
                let mut taken = st.clone();
                taken[*dst as usize] = Ty::Bool;
                merge_into(&mut state_at, &mut work, *target as usize, &taken);
                merge_into(&mut state_at, &mut work, pc + 1, &st);
            }
            Insn::ForTest { exit, .. }
            | Insn::WhileTest { exit, .. }
            | Insn::CmpWhile { exit, .. }
            | Insn::CmpImmWhile { exit, .. } => {
                merge_into(&mut state_at, &mut work, *exit as usize, &st);
                merge_into(&mut state_at, &mut work, pc + 1, &st);
            }
            Insn::ForStepJump { slot, target, .. } => {
                st[*slot as usize] = Ty::Int;
                merge_into(&mut state_at, &mut work, *target as usize, &st);
            }
            insn => {
                transfer(insn, &mut st, call_rets);
                merge_into(&mut state_at, &mut work, pc + 1, &st);
            }
        }
    }
    state_at
}

fn merge_into(state_at: &mut [Option<Box<[Ty]>>], work: &mut Vec<usize>, pc: usize, st: &[Ty]) {
    if pc >= state_at.len() {
        // Jump to one-past-the-end (falls off the chunk): nothing to do.
        return;
    }
    match &mut state_at[pc] {
        None => {
            state_at[pc] = Some(st.to_vec().into_boxed_slice());
            work.push(pc);
        }
        Some(cur) => {
            let mut changed = false;
            for (c, n) in cur.iter_mut().zip(st.iter()) {
                let j = join(*c, *n);
                if j != *c {
                    *c = j;
                    changed = true;
                }
            }
            if changed {
                work.push(pc);
            }
        }
    }
}

/// True when an immediate folds exactly into an f64 operand: any numeric
/// tag, because `apply_binary` promotes through `Value::as_f64` for a
/// double operand — precomputing `as_f64` here is the identical conversion.
fn imm_f64(imm: &Value) -> Option<f64> {
    imm.as_f64()
}

fn is_f64_arith(op: BinOp) -> bool {
    matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
}

/// Is `ty` a plain (non-pointer) `double`, so that coercing a `Double`
/// value to it is the identity and charges nothing?
fn is_double_decl(ty: &Type) -> bool {
    !ty.is_pointer() && ty.scalar == Scalar::Double
}

/// Rewrite one instruction given the register types on entry to it.
/// Returns the instruction unchanged when no specialisation applies.
fn rewrite(insn: Insn, st: &[Ty]) -> Insn {
    let f64_at = |r: u16| st[r as usize] == Ty::F64;
    match insn {
        Insn::Bin {
            op,
            dst,
            l,
            r,
            span,
        } if is_f64_arith(op) && f64_at(l) && f64_at(r) => Insn::F64Bin {
            op,
            dst,
            l,
            r,
            span,
            co_span: NO_SPAN,
        },
        Insn::BinCoerce {
            op,
            dst,
            l,
            r,
            ty,
            span,
            co_span,
        } if is_f64_arith(op) && f64_at(l) && f64_at(r) && is_double_decl(&ty) => Insn::F64Bin {
            op,
            dst,
            l,
            r,
            span,
            co_span,
        },
        Insn::BinImm {
            op,
            dst,
            l,
            imm,
            span,
        } if is_f64_arith(op) && f64_at(l) && imm_f64(&imm).is_some() => Insn::F64BinImm {
            op,
            rev: false,
            dst,
            l,
            imm_f64: imm_f64(&imm).expect("checked"),
            imm,
            span,
            co_span: NO_SPAN,
        },
        Insn::BinImmRev {
            op,
            dst,
            imm,
            r,
            span,
        } if is_f64_arith(op) && f64_at(r) && imm_f64(&imm).is_some() => Insn::F64BinImm {
            op,
            rev: true,
            dst,
            l: r,
            imm_f64: imm_f64(&imm).expect("checked"),
            imm,
            span,
            co_span: NO_SPAN,
        },
        Insn::BinImmCoerce {
            op,
            dst,
            l,
            imm,
            ty,
            span,
            co_span,
        } if is_f64_arith(op) && f64_at(l) && imm_f64(&imm).is_some() && is_double_decl(&ty) => {
            Insn::F64BinImm {
                op,
                rev: false,
                dst,
                l,
                imm_f64: imm_f64(&imm).expect("checked"),
                imm,
                span,
                co_span,
            }
        }
        Insn::BinAssign {
            op,
            slot,
            l,
            r,
            span,
            asg_span,
        } if is_f64_arith(op) && f64_at(l) && f64_at(r) && f64_at(slot) => Insn::F64BinAssign {
            op,
            slot,
            l,
            r,
            span,
            asg_span,
        },
        Insn::BinImmAssign {
            op,
            slot,
            l,
            imm,
            span,
            asg_span,
        } if is_f64_arith(op) && f64_at(l) && f64_at(slot) && imm_f64(&imm).is_some() => {
            Insn::F64BinImmAssign {
                op,
                rev: false,
                slot,
                l,
                imm_f64: imm_f64(&imm).expect("checked"),
                imm,
                span,
                asg_span,
            }
        }
        Insn::Index {
            dst,
            base,
            idx,
            cost,
            base_span,
            index_span,
            span,
        } if st[base as usize] == Ty::Ptr(Scalar::Double) => Insn::F64Index {
            dst,
            base,
            idx,
            cost,
            base_span,
            index_span,
            span,
            co_span: NO_SPAN,
        },
        Insn::IndexCoerce {
            dst,
            base,
            idx,
            cost,
            ty,
            base_span,
            index_span,
            span,
            co_span,
        } if st[base as usize] == Ty::Ptr(Scalar::Double) && is_double_decl(&ty) => {
            Insn::F64Index {
                dst,
                base,
                idx,
                cost,
                base_span,
                index_span,
                span,
                co_span,
            }
        }
        Insn::StoreElem {
            addr,
            src,
            cost,
            span,
        } if f64_at(src) => Insn::F64Store {
            addr,
            src,
            cost,
            span,
        },
        Insn::MathCallImm {
            op,
            rev,
            dst,
            l,
            imm,
            f,
            cycles,
            flops,
            bin_span,
        } if f64_at(l) && !f.single && imm_f64(&imm).is_some() => Insn::F64MathCallImm {
            op,
            rev,
            dst,
            l,
            imm_f64: imm_f64(&imm).expect("checked"),
            imm,
            f,
            cycles,
            flops,
            bin_span,
        },
        other => other,
    }
}

/// Run inference over `code` (seeded from the declared parameter types)
/// and rewrite every instruction whose operand types admit a specialised
/// variant. 1:1, so jump targets survive unchanged; unreachable
/// instructions are kept as-is.
pub(crate) fn specialize(
    code: Vec<Insn>,
    params: &[Type],
    nregs: usize,
    call_rets: &[Ty],
) -> Vec<Insn> {
    let states = analyze(&code, params, nregs, call_rets);
    code.into_iter()
        .zip(states)
        .map(|(insn, st)| match st {
            Some(st) => rewrite(insn, &st),
            None => insn,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::Program;
    use crate::eval::RunConfig;
    use psa_minicpp::parse_module;

    fn main_code(src: &str) -> Vec<Insn> {
        let m = parse_module(src, "t").unwrap();
        let p = Program::compile(&m, &RunConfig::default());
        let fidx = p.fn_by_name["main"];
        p.funcs[fidx as usize].code.clone()
    }

    /// Count matches, looking through blocks and deferred loop bodies.
    fn count(code: &[Insn], pred: &dyn Fn(&Insn) -> bool) -> usize {
        let mut n = 0;
        for i in code {
            match i {
                Insn::ArithBlock(steps) => n += count(steps, pred),
                Insn::DeferredFor(d) => {
                    if pred(i) {
                        n += 1;
                    }
                    n += count(&d.body, pred);
                }
                other => {
                    if pred(other) {
                        n += 1;
                    }
                }
            }
        }
        n
    }

    #[test]
    fn double_arithmetic_specialises() {
        // `a * b` feeds the cast directly, so it stays a plain `Bin` after
        // fusion and specialises to `F64Bin`.
        let code = main_code("int main() { double a = 1.5; double b = 2.5; return (int)(a * b); }");
        assert_eq!(count(&code, &|i| matches!(i, Insn::F64Bin { .. })), 1);
    }

    #[test]
    fn int_arithmetic_stays_generic() {
        let code =
            main_code("int main() { int a = 3; int b = 4; int c = 0; c = a * b; return c; }");
        assert_eq!(count(&code, &|i| matches!(i, Insn::F64Bin { .. })), 0);
    }

    #[test]
    fn alloc_gives_typed_pointer_loads() {
        let code = main_code(
            "int main() { double* a = alloc_double(4); double x = a[1]; return (int)x; }",
        );
        assert_eq!(count(&code, &|i| matches!(i, Insn::F64Index { .. })), 1);
    }

    #[test]
    fn mixed_branch_types_join_to_generic() {
        // `x` is double on one path and reassigned from an int expression
        // on the other; the join must demote it and block specialisation
        // of the final multiply.
        let code = main_code(
            "int main() { double x = 1.0; double y = 2.0; int c = 1; \
             if (c) { x = x + 1.0; } else { x = x + 2.0; } \
             y = x * y; return (int)y; }",
        );
        // Reassignments inside the branches keep x double (convert_assign
        // keeps the slot tag), so the multiply still specialises…
        assert_eq!(count(&code, &|i| matches!(i, Insn::F64BinAssign { .. })), 1);
    }

    #[test]
    fn double_store_specialises() {
        let code = main_code(
            "int main() { double* a = alloc_double(4); \
             for (int i = 0; i < 4; i++) { a[i] = 1.5; } return 0; }",
        );
        assert_eq!(count(&code, &|i| matches!(i, Insn::F64Store { .. })), 1);
    }

    #[test]
    fn scaled_exp_specialises_to_f64_math_call_imm() {
        let code = main_code(
            "int main() { double v = 0.5; double r = 0.0; \
             r = exp(v * 2.0); return (int)r; }",
        );
        assert_eq!(
            count(&code, &|i| matches!(i, Insn::F64MathCallImm { .. })),
            1
        );
    }
}
