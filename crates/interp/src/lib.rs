//! # psa-interp — deterministic MiniC++ interpreter with profiling
//!
//! This crate stands in for *native execution* in the paper's design-flows.
//! Several of the codified tasks are **dynamic**: hotspot detection runs the
//! instrumented application with loop timers; trip-count, data-movement and
//! pointer-alias analyses all "require program execution" (the ⚡ marker in
//! the paper's Fig. 3/4). Here execution happens on a tree-walking
//! interpreter whose *virtual clock* advances by a configurable per-operation
//! cycle cost, making every dynamic analysis bit-for-bit reproducible.
//!
//! What the interpreter provides:
//!
//! * a provenance-tracking memory arena ([`memory::Memory`]) — every pointer
//!   value knows which allocation it points into, which is exactly the fact
//!   the dynamic pointer-alias analysis needs;
//! * a cost model ([`profile::CostModel`]) mapping each op to virtual cycles,
//!   plus FLOP / load / store accounting used by the arithmetic-intensity
//!   and data-in/out analyses and by the platform performance models;
//! * per-loop statistics (entries, iterations, inclusive cycles) keyed by
//!   AST [`psa_minicpp::NodeId`], the substrate for hotspot detection;
//! * instrumentation intrinsics (`__psa_timer_start/stop`) that inserted
//!   probes can call, mirroring how Artisan meta-programs instrument code;
//! * kernel access tracing: while a *watched function* is on the call stack,
//!   byte-accurate per-buffer read/write ranges are recorded (data-movement
//!   analysis).

pub mod compile;
pub mod error;
pub mod eval;
pub mod intrinsics;
pub mod memory;
mod ops;
mod peephole;
pub mod profile;
mod typeinfer;
pub mod value;
pub mod vm;
pub mod vmprof;

pub use compile::Program;
pub use error::{RuntimeError, RuntimeResult};
pub use eval::{set_default_engine, Engine, Interpreter, RunConfig};
pub use memory::{BufferId, Memory};
pub use profile::{CostModel, LoopStats, Profile};
pub use value::{Pointer, Value};
pub use vm::Vm;
pub use vmprof::{FrameKey, FrameRow, VmProfile, VmProfiler};

use psa_evalcache::{EvalCache, KeyBuilder};
use psa_minicpp::Module;
use std::sync::Arc;

/// The artefacts of one completed profiled execution: `main`'s return
/// value, the profile (virtual clock, FLOP/byte counters, per-loop stats)
/// and the final memory arena (per-buffer kernel access ranges).
#[derive(Debug)]
pub struct ProfiledRun {
    pub result: Value,
    pub profile: Profile,
    pub memory: Memory,
}

impl RunConfig {
    /// Deterministic content hash of every field that influences execution
    /// results — the config part of a profiled run's cache address.
    pub fn content_hash(&self) -> u64 {
        let c = &self.cost_model;
        psa_evalcache::fnv64_of(&(
            (
                c.int_op,
                c.int_mul,
                c.int_div,
                c.fp_op,
                c.fp_div,
                c.sqrt,
                c.transcendental,
            ),
            (
                c.load,
                c.store,
                c.branch,
                c.call,
                c.transcendental_flops,
                c.sqrt_flops,
            ),
            self.max_cycles,
            self.max_call_depth as u64,
            self.watch_function.as_deref(),
        ))
    }
}

/// Execute `main` under `config` on the engine `config.engine` selects,
/// returning the full [`ProfiledRun`] artefacts. Both engines are
/// observationally identical, so callers need not care which one ran.
pub fn run_main_profiled(module: &Module, config: RunConfig) -> RuntimeResult<ProfiledRun> {
    match config.engine {
        Engine::Vm => {
            let mut vm = Vm::new(module, config);
            let result = vm.run_main()?;
            let (profile, memory) = vm.into_parts();
            Ok(ProfiledRun {
                result,
                profile,
                memory,
            })
        }
        Engine::Tree => {
            let mut interp = Interpreter::new(module, config);
            let result = interp.run_main()?;
            let (profile, memory) = interp.into_parts();
            Ok(ProfiledRun {
                result,
                profile,
                memory,
            })
        }
    }
}

/// Execute `main` on the bytecode VM from an already-compiled [`Program`],
/// returning the same [`ProfiledRun`] artefacts as [`run_main_profiled`].
///
/// This is the compile-once/run-many entry point: design-space exploration
/// evaluates the same description under many configurations and analyses,
/// so bytecode compilation is paid once per description, not once per run.
/// `config` must agree with the compiling config on `cost_model` and
/// `watch_function` (both are baked into the bytecode).
pub fn run_compiled(program: &Arc<Program>, config: RunConfig) -> RuntimeResult<ProfiledRun> {
    let mut vm = Vm::with_program(Arc::clone(program), config);
    let result = vm.run_main()?;
    let (profile, memory) = vm.into_parts();
    Ok(ProfiledRun {
        result,
        profile,
        memory,
    })
}

/// Execute `main` on the bytecode VM with the frame profiler attached,
/// returning the usual [`ProfiledRun`] artefacts plus the aggregated
/// [`VmProfile`]. Profiling is observation-only: result, profile and memory
/// are identical to an unprofiled run (enforced by `tests/vm_profiler.rs`).
pub fn run_main_profiled_vm_with_profile(
    module: &Module,
    config: RunConfig,
) -> RuntimeResult<(ProfiledRun, VmProfile)> {
    let mut vm = Vm::new(module, config);
    vm.enable_profiling();
    let result = vm.run_main()?;
    let vm_profile = vm
        .take_vm_profile(&module.name)
        .expect("profiling enabled above");
    let (profile, memory) = vm.into_parts();
    Ok((
        ProfiledRun {
            result,
            profile,
            memory,
        },
        vm_profile,
    ))
}

/// Execute `main` under `config`, memoized in `cache`.
///
/// The address is the module's structural fingerprint plus the config's
/// content hash, so a hit is guaranteed to replay a bit-identical
/// execution (the interpreter is deterministic). The engine is *not* part
/// of the address: VM and tree runs produce the same artefacts, so their
/// cache entries are interchangeable. Failed runs are not cached. This is
/// the seam every dynamic analysis reaches the interpreter through when a
/// cache is in play.
pub fn run_profiled_cached(
    module: &Module,
    config: RunConfig,
    cache: &EvalCache,
) -> RuntimeResult<Arc<ProfiledRun>> {
    let key = KeyBuilder::new("interp/profiled-run")
        .u64(psa_minicpp::module_fingerprint(module))
        .u64(config.content_hash())
        .finish();
    cache.try_get_or_compute(key, || run_main_profiled(module, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_minicpp::parse_module;

    #[test]
    fn end_to_end_smoke() {
        let m = parse_module(
            "int main() {\
               double* a = alloc_double(8);\
               for (int i = 0; i < 8; i++) { a[i] = (double)i * 2.0; }\
               double s = 0.0;\
               for (int i = 0; i < 8; i++) { s += a[i]; }\
               return (int)s;\
             }",
            "smoke",
        )
        .unwrap();
        let mut interp = Interpreter::new(&m, RunConfig::default());
        let result = interp.run_main().unwrap();
        assert_eq!(result, Value::Int(56));
        assert!(interp.profile().total_cycles > 0);
        assert!(interp.profile().flops > 0);
    }
}
