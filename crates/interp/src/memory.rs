//! The interpreter's memory arena.
//!
//! Allocations are typed, bounds-checked buffers. Pointers carry provenance
//! ([`crate::Pointer`] = buffer id + element offset), so:
//!
//! * out-of-bounds accesses are hard errors, never silent corruption;
//! * the dynamic pointer-alias analysis can ask "do these two pointer
//!   arguments refer to overlapping storage?" and get an exact answer;
//! * per-buffer access ranges (min/max element read and written) are
//!   recorded while a watched kernel executes, which is precisely the
//!   footprint the data-in/out analysis reports.

use crate::error::{RuntimeError, RuntimeResult};
use psa_minicpp::ast::Scalar;
use psa_minicpp::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BufferId(pub u32);

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Typed storage for one allocation.
#[derive(Debug, Clone, PartialEq)]
pub enum BufferData {
    Int(Vec<i64>),
    Float(Vec<f32>),
    Double(Vec<f64>),
    Bool(Vec<bool>),
}

impl BufferData {
    pub fn len(&self) -> usize {
        match self {
            BufferData::Int(v) => v.len(),
            BufferData::Float(v) => v.len(),
            BufferData::Double(v) => v.len(),
            BufferData::Bool(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn scalar(&self) -> Scalar {
        match self {
            BufferData::Int(_) => Scalar::Int,
            BufferData::Float(_) => Scalar::Float,
            BufferData::Double(_) => Scalar::Double,
            BufferData::Bool(_) => Scalar::Bool,
        }
    }
}

/// Min/max element indices touched in a buffer, split by access kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessRange {
    pub reads: u64,
    pub writes: u64,
    pub read_lo: Option<u64>,
    pub read_hi: Option<u64>,
    pub write_lo: Option<u64>,
    pub write_hi: Option<u64>,
}

impl AccessRange {
    fn record_read(&mut self, idx: u64) {
        self.reads += 1;
        self.read_lo = Some(self.read_lo.map_or(idx, |lo| lo.min(idx)));
        self.read_hi = Some(self.read_hi.map_or(idx, |hi| hi.max(idx)));
    }

    fn record_write(&mut self, idx: u64) {
        self.writes += 1;
        self.write_lo = Some(self.write_lo.map_or(idx, |lo| lo.min(idx)));
        self.write_hi = Some(self.write_hi.map_or(idx, |hi| hi.max(idx)));
    }

    /// Number of distinct elements in the read range (footprint upper
    /// bound; exact for the dense, strided accesses of the benchmarks).
    pub fn read_extent(&self) -> u64 {
        match (self.read_lo, self.read_hi) {
            (Some(lo), Some(hi)) => hi - lo + 1,
            _ => 0,
        }
    }

    /// Number of distinct elements in the write range.
    pub fn write_extent(&self) -> u64 {
        match (self.write_lo, self.write_hi) {
            (Some(lo), Some(hi)) => hi - lo + 1,
            _ => 0,
        }
    }
}

/// One allocation: a label (for reports), data, and kernel-scoped access
/// tracking.
#[derive(Debug, Clone, PartialEq)]
pub struct Buffer {
    pub label: String,
    pub data: BufferData,
    /// Access ranges recorded while the watched kernel runs.
    pub kernel_access: AccessRange,
}

/// The arena of all live allocations.
#[derive(Debug, Default, PartialEq)]
pub struct Memory {
    buffers: Vec<Buffer>,
}

impl Memory {
    pub fn new() -> Self {
        Memory::default()
    }

    /// Allocate a zero-initialised buffer of `len` elements.
    pub fn alloc(&mut self, scalar: Scalar, len: usize, label: impl Into<String>) -> BufferId {
        let data = match scalar {
            Scalar::Int => BufferData::Int(vec![0; len]),
            Scalar::Float => BufferData::Float(vec![0.0; len]),
            Scalar::Double => BufferData::Double(vec![0.0; len]),
            Scalar::Bool => BufferData::Bool(vec![false; len]),
            Scalar::Void => BufferData::Int(Vec::new()),
        };
        let id = BufferId(self.buffers.len() as u32);
        self.buffers.push(Buffer {
            label: label.into(),
            data,
            kernel_access: AccessRange::default(),
        });
        id
    }

    pub fn buffer(&self, id: BufferId) -> &Buffer {
        &self.buffers[id.0 as usize]
    }

    pub fn buffer_mut(&mut self, id: BufferId) -> &mut Buffer {
        &mut self.buffers[id.0 as usize]
    }

    /// Number of allocations made so far.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Element size in bytes of a buffer.
    #[inline]
    pub fn elem_bytes(&self, id: BufferId) -> u64 {
        self.buffer(id).data.scalar().size_bytes()
    }

    /// Bounds-check `idx` against `buf` (cold error path kept out of line).
    #[inline]
    fn check(buf: &Buffer, idx: i64, span: Span) -> RuntimeResult<usize> {
        if idx < 0 || (idx as usize) >= buf.data.len() {
            #[cold]
            fn oob(buf: &Buffer, idx: i64, span: Span) -> RuntimeError {
                RuntimeError::Memory {
                    message: format!(
                        "index {idx} out of bounds for `{}` (len {})",
                        buf.label,
                        buf.data.len()
                    ),
                    span,
                }
            }
            return Err(oob(buf, idx, span));
        }
        Ok(idx as usize)
    }

    /// Load an element, recording kernel access when `watch` is set.
    #[inline]
    pub fn load(
        &mut self,
        id: BufferId,
        idx: i64,
        span: Span,
        watch: bool,
    ) -> RuntimeResult<crate::Value> {
        let buf = &mut self.buffers[id.0 as usize];
        let i = Self::check(buf, idx, span)?;
        if watch {
            buf.kernel_access.record_read(i as u64);
        }
        // SAFETY: `check` above proved `i < buf.data.len()`.
        Ok(unsafe {
            match &buf.data {
                BufferData::Int(v) => crate::Value::Int(*v.get_unchecked(i)),
                BufferData::Float(v) => crate::Value::Float(*v.get_unchecked(i)),
                BufferData::Double(v) => crate::Value::Double(*v.get_unchecked(i)),
                BufferData::Bool(v) => crate::Value::Bool(*v.get_unchecked(i)),
            }
        })
    }

    /// Store an element with C-style conversion to the buffer's type.
    #[inline]
    pub fn store(
        &mut self,
        id: BufferId,
        idx: i64,
        value: crate::Value,
        span: Span,
        watch: bool,
    ) -> RuntimeResult<()> {
        let buf = &mut self.buffers[id.0 as usize];
        let i = Self::check(buf, idx, span)?;
        if watch {
            buf.kernel_access.record_write(i as u64);
        }
        let type_err = |need: &str| RuntimeError::Type {
            message: format!(
                "cannot store {} into {need} buffer `{}`",
                value.type_name(),
                buf.label
            ),
            span,
        };
        // SAFETY: `check` above proved `i < buf.data.len()`.
        unsafe {
            match &mut buf.data {
                BufferData::Int(v) => {
                    *v.get_unchecked_mut(i) = value.as_i64().ok_or_else(|| type_err("int"))?
                }
                BufferData::Float(v) => {
                    *v.get_unchecked_mut(i) =
                        value.as_f64().ok_or_else(|| type_err("float"))? as f32
                }
                BufferData::Double(v) => {
                    *v.get_unchecked_mut(i) = value.as_f64().ok_or_else(|| type_err("double"))?
                }
                BufferData::Bool(v) => {
                    *v.get_unchecked_mut(i) = value.truthy().ok_or_else(|| type_err("bool"))?
                }
            }
        }
        Ok(())
    }

    /// Is `id` a `double` buffer? Probe for the specialised VM handlers:
    /// error-free and effect-free, so a `false` answer lets the handler
    /// fall back to the generic path with nothing yet charged or recorded.
    #[inline]
    pub fn is_f64(&self, id: BufferId) -> bool {
        matches!(self.buffer(id).data, BufferData::Double(_))
    }

    /// Unwrapped load from a `double` buffer (callers probe [`Self::is_f64`]
    /// first). Bounds check, access recording and error text are exactly
    /// [`Self::load`]'s.
    #[inline]
    pub fn load_f64(
        &mut self,
        id: BufferId,
        idx: i64,
        span: Span,
        watch: bool,
    ) -> RuntimeResult<f64> {
        let buf = &mut self.buffers[id.0 as usize];
        let i = Self::check(buf, idx, span)?;
        if watch {
            buf.kernel_access.record_read(i as u64);
        }
        match &buf.data {
            // SAFETY: `check` above proved `i < buf.data.len()`.
            BufferData::Double(v) => Ok(unsafe { *v.get_unchecked(i) }),
            _ => unreachable!("load_f64 caller probed is_f64"),
        }
    }

    /// Unwrapped store into a `double` buffer (callers probe
    /// [`Self::is_f64`] first); an `f64` into a `double` buffer never
    /// type-errors, so only the bounds check remains.
    #[inline]
    pub fn store_f64(
        &mut self,
        id: BufferId,
        idx: i64,
        value: f64,
        span: Span,
        watch: bool,
    ) -> RuntimeResult<()> {
        let buf = &mut self.buffers[id.0 as usize];
        let i = Self::check(buf, idx, span)?;
        if watch {
            buf.kernel_access.record_write(i as u64);
        }
        match &mut buf.data {
            // SAFETY: `check` above proved `i < buf.data.len()`.
            BufferData::Double(v) => unsafe { *v.get_unchecked_mut(i) = value },
            _ => unreachable!("store_f64 caller probed is_f64"),
        }
        Ok(())
    }

    /// Reset all kernel access tracking (between analysis runs).
    pub fn clear_kernel_access(&mut self) {
        for b in &mut self.buffers {
            b.kernel_access = AccessRange::default();
        }
    }

    /// Buffers touched during kernel execution, with their access ranges and
    /// element sizes — the raw material for data-in/out reports.
    pub fn kernel_touched(&self) -> Vec<(BufferId, &Buffer)> {
        self.buffers
            .iter()
            .enumerate()
            .filter(|(_, b)| b.kernel_access.reads > 0 || b.kernel_access.writes > 0)
            .map(|(i, b)| (BufferId(i as u32), b))
            .collect()
    }

    /// Do two pointers overlap, given the element extents each may access?
    /// Exact because provenance is tracked: distinct buffers never alias.
    pub fn ranges_overlap(
        &self,
        a: crate::Pointer,
        a_len: i64,
        b: crate::Pointer,
        b_len: i64,
    ) -> bool {
        if a.buffer != b.buffer {
            return false;
        }
        let (a_lo, a_hi) = (a.offset, a.offset + a_len.max(0));
        let (b_lo, b_hi) = (b.offset, b.offset + b_len.max(0));
        a_lo < b_hi && b_lo < a_hi
    }

    /// Direct typed views used by harness code to set up / read back data.
    pub fn as_f64_slice(&self, id: BufferId) -> Option<&[f64]> {
        match &self.buffer(id).data {
            BufferData::Double(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64_slice_mut(&mut self, id: BufferId) -> Option<&mut [f64]> {
        match &mut self.buffer_mut(id).data {
            BufferData::Double(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_i64_slice(&self, id: BufferId) -> Option<&[i64]> {
        match &self.buffer(id).data {
            BufferData::Int(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f32_slice(&self, id: BufferId) -> Option<&[f32]> {
        match &self.buffer(id).data {
            BufferData::Float(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pointer, Value};

    const SPAN: Span = Span::SYNTHETIC;

    #[test]
    fn load_store_roundtrip() {
        let mut mem = Memory::new();
        let id = mem.alloc(Scalar::Double, 4, "a");
        mem.store(id, 2, Value::Double(3.5), SPAN, false).unwrap();
        assert_eq!(mem.load(id, 2, SPAN, false).unwrap(), Value::Double(3.5));
    }

    #[test]
    fn stores_convert_like_c() {
        let mut mem = Memory::new();
        let id = mem.alloc(Scalar::Int, 1, "n");
        mem.store(id, 0, Value::Double(2.9), SPAN, false).unwrap();
        assert_eq!(mem.load(id, 0, SPAN, false).unwrap(), Value::Int(2));
        let fid = mem.alloc(Scalar::Float, 1, "f");
        mem.store(fid, 0, Value::Double(0.1), SPAN, false).unwrap();
        assert_eq!(mem.load(fid, 0, SPAN, false).unwrap(), Value::Float(0.1f32));
    }

    #[test]
    fn bounds_are_enforced() {
        let mut mem = Memory::new();
        let id = mem.alloc(Scalar::Double, 4, "a");
        assert!(mem.load(id, 4, SPAN, false).is_err());
        assert!(mem.load(id, -1, SPAN, false).is_err());
        assert!(mem.store(id, 100, Value::Double(0.0), SPAN, false).is_err());
    }

    #[test]
    fn kernel_access_tracked_only_when_watched() {
        let mut mem = Memory::new();
        let id = mem.alloc(Scalar::Double, 10, "a");
        mem.load(id, 3, SPAN, false).unwrap();
        assert_eq!(mem.buffer(id).kernel_access.reads, 0);
        mem.load(id, 3, SPAN, true).unwrap();
        mem.load(id, 7, SPAN, true).unwrap();
        mem.store(id, 5, Value::Double(1.0), SPAN, true).unwrap();
        let acc = mem.buffer(id).kernel_access;
        assert_eq!(acc.reads, 2);
        assert_eq!(acc.writes, 1);
        assert_eq!(acc.read_extent(), 5); // elements 3..=7
        assert_eq!(acc.write_extent(), 1);
    }

    #[test]
    fn alias_detection_is_provenance_based() {
        let mut mem = Memory::new();
        let a = mem.alloc(Scalar::Double, 10, "a");
        let b = mem.alloc(Scalar::Double, 10, "b");
        let pa = Pointer {
            buffer: a,
            offset: 0,
        };
        let pb = Pointer {
            buffer: b,
            offset: 0,
        };
        assert!(
            !mem.ranges_overlap(pa, 10, pb, 10),
            "distinct buffers never alias"
        );
        let pa2 = Pointer {
            buffer: a,
            offset: 5,
        };
        assert!(mem.ranges_overlap(pa, 10, pa2, 3));
        assert!(
            !mem.ranges_overlap(pa, 5, pa2, 3),
            "disjoint subranges do not alias"
        );
    }

    #[test]
    fn kernel_touched_lists_active_buffers() {
        let mut mem = Memory::new();
        let a = mem.alloc(Scalar::Double, 4, "a");
        let _b = mem.alloc(Scalar::Double, 4, "b");
        mem.load(a, 0, SPAN, true).unwrap();
        let touched = mem.kernel_touched();
        assert_eq!(touched.len(), 1);
        assert_eq!(touched[0].0, a);
        mem.clear_kernel_access();
        assert!(mem.kernel_touched().is_empty());
    }
}
