//! Virtual-clock cost model and execution profile.
//!
//! The interpreter charges every operation a configurable number of *virtual
//! cycles*. A cycle here is "one scalar ALU operation on the reference CPU";
//! the CPU platform model turns cycles into seconds via its clock frequency.
//! Costs approximate issue-latency ratios of a modern OoO core — enough for
//! the *relative* hotspot and intensity judgements the PSA strategy makes,
//! which is all the paper's dynamic analyses extract.

use psa_minicpp::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-operation virtual cycle costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Integer add/sub/compare/logic.
    pub int_op: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide / remainder.
    pub int_div: u64,
    /// Floating add/sub/mul (fused pipelines make these comparable).
    pub fp_op: u64,
    /// Floating divide.
    pub fp_div: u64,
    /// Square root.
    pub sqrt: u64,
    /// Transcendentals (exp, log, pow, trig, erf, tanh).
    pub transcendental: u64,
    /// One memory load (beyond address arithmetic).
    pub load: u64,
    /// One memory store.
    pub store: u64,
    /// Taken branch / loop back-edge.
    pub branch: u64,
    /// Function call + return overhead.
    pub call: u64,
    /// FLOP-equivalents charged for one transcendental when counting FLOPs
    /// (the paper's arithmetic-intensity metric counts the *work*, not the
    /// instruction).
    pub transcendental_flops: u64,
    /// FLOP-equivalents for one sqrt.
    pub sqrt_flops: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            int_op: 1,
            int_mul: 2,
            int_div: 20,
            fp_op: 1,
            fp_div: 8,
            sqrt: 12,
            transcendental: 20,
            load: 1,
            store: 2,
            branch: 1,
            call: 6,
            transcendental_flops: 8,
            sqrt_flops: 4,
        }
    }
}

/// Statistics for one loop (keyed by the `ForLoop`/`While` statement's
/// [`NodeId`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopStats {
    /// How many times execution entered the loop from above.
    pub entries: u64,
    /// Total iterations across all entries.
    pub iterations: u64,
    /// Inclusive virtual cycles spent inside the loop (body + control).
    pub cycles: u64,
}

impl LoopStats {
    /// Average trip count per entry.
    pub fn mean_trip_count(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            self.iterations as f64 / self.entries as f64
        }
    }
}

/// Timer region recorded via the `__psa_timer_start/stop` intrinsics that
/// instrumentation passes insert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimerStats {
    pub starts: u64,
    pub cycles: u64,
}

/// Everything the interpreter measures during one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Total virtual cycles.
    pub total_cycles: u64,
    /// Floating-point operations (work-equivalents; see [`CostModel`]).
    pub flops: u64,
    /// Integer ALU operations.
    pub int_ops: u64,
    /// Memory loads (count).
    pub loads: u64,
    /// Memory stores (count).
    pub stores: u64,
    /// Bytes loaded.
    pub bytes_loaded: u64,
    /// Bytes stored.
    pub bytes_stored: u64,
    /// Per-loop inclusive statistics.
    pub loop_stats: HashMap<NodeId, LoopStats>,
    /// Instrumentation timer regions, keyed by user-chosen timer id.
    pub timers: HashMap<i64, TimerStats>,
    /// Cycles spent inside the watched kernel function (inclusive).
    pub kernel_cycles: u64,
    /// FLOPs inside the watched kernel.
    pub kernel_flops: u64,
    /// Bytes loaded inside the watched kernel.
    pub kernel_bytes_loaded: u64,
    /// Bytes stored inside the watched kernel.
    pub kernel_bytes_stored: u64,
    /// Calls to the watched kernel.
    pub kernel_calls: u64,
    /// Pointer arguments of each top-level watched-kernel call:
    /// `(parameter name, pointer value)` — the raw material for the dynamic
    /// pointer-alias analysis.
    pub kernel_arg_ptrs: Vec<Vec<(String, crate::Pointer)>>,
}

impl Profile {
    /// Arithmetic intensity of the watched kernel in FLOPs/byte — the
    /// quantity the PSA strategy compares against its threshold `X`.
    pub fn kernel_arithmetic_intensity(&self) -> f64 {
        let bytes = self.kernel_bytes_loaded + self.kernel_bytes_stored;
        if bytes == 0 {
            return f64::INFINITY;
        }
        self.kernel_flops as f64 / bytes as f64
    }

    /// The loop with the largest inclusive cycle count.
    pub fn hottest_loop(&self) -> Option<(NodeId, LoopStats)> {
        self.loop_stats
            .iter()
            .max_by_key(|(id, s)| (s.cycles, std::cmp::Reverse(id.0)))
            .map(|(id, s)| (*id, *s))
    }

    /// Fraction of total cycles spent in a given loop.
    pub fn loop_share(&self, id: NodeId) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.loop_stats
            .get(&id)
            .map_or(0.0, |s| s.cycles as f64 / self.total_cycles as f64)
    }

    /// Merge per-timer results into (id → cycles), sorted by id, for stable
    /// reporting.
    pub fn timer_table(&self) -> Vec<(i64, TimerStats)> {
        let mut v: Vec<_> = self.timers.iter().map(|(k, s)| (*k, *s)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_intensity_handles_zero_bytes() {
        let mut p = Profile {
            kernel_flops: 10,
            ..Default::default()
        };
        assert!(p.kernel_arithmetic_intensity().is_infinite());
        p.kernel_bytes_loaded = 40;
        assert!((p.kernel_arithmetic_intensity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hottest_loop_breaks_ties_deterministically() {
        let mut p = Profile::default();
        p.loop_stats.insert(
            NodeId(1),
            LoopStats {
                entries: 1,
                iterations: 5,
                cycles: 100,
            },
        );
        p.loop_stats.insert(
            NodeId(2),
            LoopStats {
                entries: 1,
                iterations: 5,
                cycles: 100,
            },
        );
        // Equal cycles: the lower node id (earlier in source) wins.
        assert_eq!(p.hottest_loop().unwrap().0, NodeId(1));
        p.loop_stats.insert(
            NodeId(3),
            LoopStats {
                entries: 1,
                iterations: 1,
                cycles: 200,
            },
        );
        assert_eq!(p.hottest_loop().unwrap().0, NodeId(3));
    }

    #[test]
    fn loop_share_is_a_fraction() {
        let mut p = Profile {
            total_cycles: 200,
            ..Default::default()
        };
        p.loop_stats.insert(
            NodeId(7),
            LoopStats {
                entries: 1,
                iterations: 1,
                cycles: 50,
            },
        );
        assert!((p.loop_share(NodeId(7)) - 0.25).abs() < 1e-12);
        assert_eq!(p.loop_share(NodeId(99)), 0.0);
    }

    #[test]
    fn mean_trip_count() {
        let s = LoopStats {
            entries: 4,
            iterations: 40,
            cycles: 0,
        };
        assert!((s.mean_trip_count() - 10.0).abs() < 1e-12);
        assert_eq!(LoopStats::default().mean_trip_count(), 0.0);
    }
}
