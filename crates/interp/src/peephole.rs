//! Superinstruction peephole pass.
//!
//! Runs after [`crate::compile`]'s flat register lowering and fuses hot
//! adjacent instruction pairs into single dispatches:
//!
//! | pattern                         | superinstruction                     |
//! |---------------------------------|--------------------------------------|
//! | compare + `JumpIfFalse`         | [`Insn::CmpBranch`] / `CmpImmBranch` |
//! | compare + `WhileTest`           | [`Insn::CmpWhile`] / `CmpImmWhile`   |
//! | binop + `AssignLocal`           | [`Insn::BinAssign`] / `BinImmAssign` |
//! | `Index` + binop on the load     | [`Insn::IndexBin`] / `IndexBinImm`   |
//! | `ForStep` + back-edge `Jump`    | [`Insn::ForStepJump`]                |
//!
//! Fusion is observably invisible. Each superinstruction performs exactly
//! the steps of its pair in the original order; the only collapsed step is
//! a cycle charge: the compare+branch forms issue the comparison charge and
//! the branch charge as **one** combined `charge()`. That is exact because
//! `charge(c1); charge(c2)` fails iff `total + c1 + c2 > max` — the same
//! condition as `charge(c1 + c2)` — the error value carries only the
//! budget limit, and a failed run's profile is not an observable (PR 3
//! established this for the tree-walker's own combined charges).
//!
//! Two safety conditions gate every rule:
//!
//! * **no jump target between the pair** — if any branch can land on the
//!   second instruction, fusing would skip the first on that path;
//! * **the forwarded register is a temporary** (`>= first_temp`) — the
//!   pass elides the intermediate register write, which is only invisible
//!   for expression temporaries (dead after their single consumer, and
//!   always rewritten before any later read); locals stay materialised.

use crate::compile::{CallSite, DeferredLoop, Insn};
use crate::profile::CostModel;
use crate::typeinfer;
use crate::value::Value;
use psa_minicpp::ast::{BinOp, Type};

/// Fuse adjacent pairs in `code`. `first_temp` is the first
/// expression-temporary register — registers below it are named locals and
/// never have their writes elided.
///
/// Runs the pairwise pass twice: rules whose first half is itself a
/// superinstruction (`IndexBin` + `Coerce`) can only fire once the first
/// pass has formed that superinstruction, and pass-one fusion can also
/// make new pairs adjacent.
pub(crate) fn fuse(code: Vec<Insn>, first_temp: u16) -> Vec<Insn> {
    block(fuse_once(fuse_once(code, first_temp), first_temp))
}

/// The full optimisation pipeline: pair fusion, then type-inference-driven
/// specialisation ([`crate::typeinfer`]), then loop-charge deferral, then
/// straight-line blocking. Specialisation runs after fusion (so the fused
/// forms get typed variants) and before blocking (so blocks batch the
/// specialised steps); deferral runs before blocking so a deferred loop's
/// surroundings can still batch.
pub(crate) fn optimize(
    code: Vec<Insn>,
    first_temp: u16,
    param_tys: &[Type],
    nregs: usize,
    call_sites: &[CallSite],
    cm: &CostModel,
) -> Vec<Insn> {
    let fused = fuse_once(fuse_once(code, first_temp), first_temp);
    let call_rets = typeinfer::call_ret_types(call_sites);
    let specialized = typeinfer::specialize(fused, param_tys, nregs, &call_rets);
    block(defer_loops(specialized, cm))
}

/// Instructions eligible for [`Insn::ArithBlock`] batching: exactly the
/// straight-line set `step_arith` in the VM implements (no control flow,
/// no calls, no globals, no loop bookkeeping).
fn blockable(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Const { .. }
            | Insn::Copy { .. }
            | Insn::AssignLocal { .. }
            | Insn::Coerce { .. }
            | Insn::Cast { .. }
            | Insn::Un { .. }
            | Insn::Bin { .. }
            | Insn::BinImm { .. }
            | Insn::BinImmRev { .. }
            | Insn::ToBool { .. }
            | Insn::Index { .. }
            | Insn::IndexAddr { .. }
            | Insn::LoadElem { .. }
            | Insn::StoreElem { .. }
            | Insn::MathCall { .. }
            | Insn::BinAssign { .. }
            | Insn::BinImmAssign { .. }
            | Insn::IndexBin { .. }
            | Insn::IndexBinImm { .. }
            | Insn::BinCoerce { .. }
            | Insn::BinImmCoerce { .. }
            | Insn::IndexCoerce { .. }
            | Insn::MathCallCoerce { .. }
            | Insn::IndexBinCoerce { .. }
            | Insn::IndexBinImmCoerce { .. }
            | Insn::BinImm2 { .. }
            | Insn::MathCallImm { .. }
            | Insn::F64Bin { .. }
            | Insn::F64BinImm { .. }
            | Insn::F64BinAssign { .. }
            | Insn::F64BinImmAssign { .. }
            | Insn::F64Index { .. }
            | Insn::F64Store { .. }
            | Insn::F64MathCallImm { .. }
    )
}

/// Worst-case virtual-cycle charge one execution of `insn` can make, or
/// `None` when the instruction is not eligible for a deferred loop body
/// (control flow, calls, allocation, globals, loop bookkeeping — anything
/// that is not a straight-line `step_arith` form).
///
/// The bound must dominate every *runtime* path of the instruction: binary
/// ops pick their charge from the operand tags (`int_op`/`int_mul`/
/// `int_div`/`fp_op`/`fp_div`), so their bound is the max over all of
/// those; baked `cost` fields are exact.
fn worst_charge(insn: &Insn, cm: &CostModel) -> Option<u64> {
    let wmax = cm
        .int_op
        .max(cm.int_mul)
        .max(cm.int_div)
        .max(cm.fp_op)
        .max(cm.fp_div);
    let fpmax = cm.fp_op.max(cm.fp_div);
    match insn {
        Insn::Const { .. } | Insn::Copy { .. } | Insn::AssignLocal { .. } | Insn::Coerce { .. } => {
            Some(0)
        }
        Insn::Cast { cost, .. }
        | Insn::ToBool { cost, .. }
        | Insn::Index { cost, .. }
        | Insn::IndexAddr { cost, .. }
        | Insn::LoadElem { cost, .. }
        | Insn::StoreElem { cost, .. }
        | Insn::IndexCoerce { cost, .. }
        | Insn::F64Index { cost, .. }
        | Insn::F64Store { cost, .. } => Some(*cost),
        Insn::Un { .. } => Some(cm.int_op.max(cm.fp_op)),
        Insn::Bin { .. }
        | Insn::BinImm { .. }
        | Insn::BinImmRev { .. }
        | Insn::BinAssign { .. }
        | Insn::BinImmAssign { .. }
        | Insn::BinCoerce { .. }
        | Insn::BinImmCoerce { .. } => Some(wmax),
        Insn::F64Bin { .. }
        | Insn::F64BinImm { .. }
        | Insn::F64BinAssign { .. }
        | Insn::F64BinImmAssign { .. } => Some(fpmax),
        Insn::IndexBin { cost, .. }
        | Insn::IndexBinImm { cost, .. }
        | Insn::IndexBinCoerce { cost, .. }
        | Insn::IndexBinImmCoerce { cost, .. } => Some(cost.saturating_add(wmax)),
        Insn::MathCall { cycles, .. } | Insn::MathCallCoerce { cycles, .. } => Some(*cycles),
        Insn::MathCallImm { cycles, .. } => Some(u64::from(*cycles).saturating_add(wmax)),
        Insn::F64MathCallImm { cycles, .. } => Some(u64::from(*cycles).saturating_add(fpmax)),
        Insn::BinImm2 { .. } => Some(wmax.saturating_add(wmax)),
        _ => None,
    }
}

/// Collapse eligible counted loops into [`Insn::DeferredFor`].
///
/// A loop is eligible when its shape is exactly
/// `ForTest .. straight-line body .. ForStepJump` (pinned bound, matching
/// induction slot, test exiting to just past the back edge), every body
/// instruction has a [`worst_charge`] bound, and **no control transfer
/// from outside the range lands anywhere inside it** (breaks and
/// continues compile to interior `Jump`s, which already fail the
/// straight-line test). The replacement executes the whole loop as one
/// dispatch; its normal exit falls through to the instruction after the
/// old back edge — the `ForTest`'s exit target, i.e. the loop's
/// `LoopExit`.
fn defer_loops(code: Vec<Insn>, cm: &CostModel) -> Vec<Insn> {
    let n = code.len();
    // Every control edge (source pc, destination pc).
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (pc, insn) in code.iter().enumerate() {
        match insn {
            Insn::Jump(t) => edges.push((pc, *t as usize)),
            Insn::JumpIfFalse { target, .. }
            | Insn::AndShort { target, .. }
            | Insn::OrShort { target, .. }
            | Insn::CmpBranch { target, .. }
            | Insn::CmpImmBranch { target, .. }
            | Insn::ForStepJump { target, .. } => edges.push((pc, *target as usize)),
            Insn::ForTest { exit, .. }
            | Insn::WhileTest { exit, .. }
            | Insn::CmpWhile { exit, .. }
            | Insn::CmpImmWhile { exit, .. } => edges.push((pc, *exit as usize)),
            _ => {}
        }
    }

    // collapse[t] = Some((s, meta)): the range [t..=s] becomes one
    // DeferredFor built from `meta`.
    let mut collapse: Vec<Option<(usize, DeferredLoop)>> = Vec::new();
    collapse.resize_with(n, || None);
    for s in 0..n {
        let Insn::ForStepJump {
            slot,
            step,
            negative,
            cost: step_cost,
            span: step_span,
            target,
        } = &code[s]
        else {
            continue;
        };
        let t = *target as usize;
        if t >= s {
            continue;
        }
        let Insn::ForTest {
            slot: test_slot,
            bound,
            cond_op,
            exit,
            cost: test_cost,
            span: test_span,
        } = &code[t]
        else {
            continue;
        };
        if test_slot != slot || *exit as usize != s + 1 {
            continue;
        }
        let body = &code[t + 1..s];
        let Some(body_worst) = body
            .iter()
            .map(|i| worst_charge(i, cm))
            .try_fold(0u64, |a, w| w.map(|w| a.saturating_add(w)))
        else {
            continue;
        };
        if edges
            .iter()
            .any(|&(src, dst)| (t..=s).contains(&dst) && !(t..=s).contains(&src))
        {
            continue;
        }
        let nspec = body
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Insn::F64Bin { .. }
                        | Insn::F64BinImm { .. }
                        | Insn::F64BinAssign { .. }
                        | Insn::F64BinImmAssign { .. }
                        | Insn::F64Index { .. }
                        | Insn::F64Store { .. }
                        | Insn::F64MathCallImm { .. }
                )
            })
            .count() as u32;
        collapse[t] = Some((
            s,
            DeferredLoop {
                slot: *slot,
                bound: *bound,
                cond_op: *cond_op,
                step: *step,
                negative: *negative,
                test_cost: *test_cost,
                step_cost: *step_cost,
                iter_max: test_cost
                    .saturating_add(body_worst)
                    .saturating_add(*step_cost),
                nspec,
                body: body.to_vec().into_boxed_slice(),
                test_span: *test_span,
                step_span: *step_span,
            },
        ));
    }

    let mut out: Vec<Insn> = Vec::with_capacity(n);
    let mut remap = vec![0u32; n + 1];
    let mut i = 0;
    while i < n {
        remap[i] = out.len() as u32;
        if let Some((s, d)) = collapse[i].take() {
            for r in &mut remap[i..=s] {
                *r = out.len() as u32;
            }
            out.push(Insn::DeferredFor(Box::new(d)));
            i = s + 1;
            continue;
        }
        out.push(code[i].clone());
        i += 1;
    }
    remap[n] = out.len() as u32;

    for insn in &mut out {
        match insn {
            Insn::Jump(t) => *t = remap[*t as usize],
            Insn::JumpIfFalse { target, .. }
            | Insn::AndShort { target, .. }
            | Insn::OrShort { target, .. }
            | Insn::CmpBranch { target, .. }
            | Insn::CmpImmBranch { target, .. }
            | Insn::ForStepJump { target, .. } => *target = remap[*target as usize],
            Insn::ForTest { exit, .. }
            | Insn::WhileTest { exit, .. }
            | Insn::CmpWhile { exit, .. }
            | Insn::CmpImmWhile { exit, .. } => *exit = remap[*exit as usize],
            _ => {}
        }
    }
    out
}

/// Final pass: batch maximal runs (length ≥ 2) of straight-line
/// instructions into [`Insn::ArithBlock`]s. A run may only be entered at
/// its head, so every interior pc must not be a jump target; jumps *to*
/// the head land on the block and execute it from the start, as before.
fn block(code: Vec<Insn>) -> Vec<Insn> {
    let mut is_target = vec![false; code.len() + 1];
    for insn in &code {
        match insn {
            Insn::Jump(t) => is_target[*t as usize] = true,
            Insn::JumpIfFalse { target, .. }
            | Insn::AndShort { target, .. }
            | Insn::OrShort { target, .. }
            | Insn::CmpBranch { target, .. }
            | Insn::CmpImmBranch { target, .. }
            | Insn::ForStepJump { target, .. } => is_target[*target as usize] = true,
            Insn::ForTest { exit, .. }
            | Insn::WhileTest { exit, .. }
            | Insn::CmpWhile { exit, .. }
            | Insn::CmpImmWhile { exit, .. } => is_target[*exit as usize] = true,
            _ => {}
        }
    }

    let mut out: Vec<Insn> = Vec::with_capacity(code.len());
    let mut remap = vec![0u32; code.len() + 1];
    let mut i = 0;
    while i < code.len() {
        remap[i] = out.len() as u32;
        if blockable(&code[i]) {
            let mut j = i + 1;
            while j < code.len() && blockable(&code[j]) && !is_target[j] {
                j += 1;
            }
            if j - i >= 2 {
                remap[i..j].fill(out.len() as u32);
                out.push(Insn::ArithBlock(code[i..j].to_vec().into_boxed_slice()));
                i = j;
                continue;
            }
        }
        out.push(code[i].clone());
        i += 1;
    }
    remap[code.len()] = out.len() as u32;

    for insn in &mut out {
        match insn {
            Insn::Jump(t) => *t = remap[*t as usize],
            Insn::JumpIfFalse { target, .. }
            | Insn::AndShort { target, .. }
            | Insn::OrShort { target, .. }
            | Insn::CmpBranch { target, .. }
            | Insn::CmpImmBranch { target, .. }
            | Insn::ForStepJump { target, .. } => *target = remap[*target as usize],
            Insn::ForTest { exit, .. }
            | Insn::WhileTest { exit, .. }
            | Insn::CmpWhile { exit, .. }
            | Insn::CmpImmWhile { exit, .. } => *exit = remap[*exit as usize],
            _ => {}
        }
    }
    out
}

fn fuse_once(code: Vec<Insn>, first_temp: u16) -> Vec<Insn> {
    // Every pc that any control transfer can land on (including transfers
    // out of superinstructions formed by an earlier pass).
    let mut is_target = vec![false; code.len() + 1];
    for insn in &code {
        match insn {
            Insn::Jump(t) => is_target[*t as usize] = true,
            Insn::JumpIfFalse { target, .. }
            | Insn::AndShort { target, .. }
            | Insn::OrShort { target, .. }
            | Insn::CmpBranch { target, .. }
            | Insn::CmpImmBranch { target, .. }
            | Insn::ForStepJump { target, .. } => is_target[*target as usize] = true,
            Insn::ForTest { exit, .. }
            | Insn::WhileTest { exit, .. }
            | Insn::CmpWhile { exit, .. }
            | Insn::CmpImmWhile { exit, .. } => is_target[*exit as usize] = true,
            _ => {}
        }
    }

    let mut out: Vec<Insn> = Vec::with_capacity(code.len());
    // old pc -> new pc, for retargeting jumps afterwards.
    let mut remap = vec![0u32; code.len() + 1];
    let mut i = 0;
    while i < code.len() {
        remap[i] = out.len() as u32;
        let fused = if i + 1 < code.len() && !is_target[i + 1] {
            fuse_pair(&code[i], &code[i + 1], first_temp)
        } else {
            None
        };
        match fused {
            Some(insn) => {
                remap[i + 1] = out.len() as u32;
                out.push(insn);
                i += 2;
            }
            None => {
                out.push(code[i].clone());
                i += 1;
            }
        }
    }
    remap[code.len()] = out.len() as u32;

    for insn in &mut out {
        match insn {
            Insn::Jump(t) => *t = remap[*t as usize],
            Insn::JumpIfFalse { target, .. }
            | Insn::AndShort { target, .. }
            | Insn::OrShort { target, .. }
            | Insn::CmpBranch { target, .. }
            | Insn::CmpImmBranch { target, .. }
            | Insn::ForStepJump { target, .. } => *target = remap[*target as usize],
            Insn::ForTest { exit, .. }
            | Insn::WhileTest { exit, .. }
            | Insn::CmpWhile { exit, .. }
            | Insn::CmpImmWhile { exit, .. } => *exit = remap[*exit as usize],
            _ => {}
        }
    }
    out
}

/// Try to fuse one adjacent pair (the second is known not to be a jump
/// target).
fn fuse_pair(a: &Insn, b: &Insn, first_temp: u16) -> Option<Insn> {
    match (a, b) {
        // compare + conditional branch
        (
            Insn::Bin {
                op,
                dst,
                l,
                r,
                span,
            },
            Insn::JumpIfFalse {
                src,
                target,
                cost,
                span: br_span,
            },
        ) if op.is_comparison() && src == dst && *dst >= first_temp => Some(Insn::CmpBranch {
            op: *op,
            l: *l,
            r: *r,
            target: *target,
            branch_cost: *cost,
            cmp_span: *span,
            br_span: *br_span,
        }),
        (
            Insn::BinImm {
                op,
                dst,
                l,
                imm,
                span,
            },
            Insn::JumpIfFalse {
                src,
                target,
                cost,
                span: br_span,
            },
        ) if op.is_comparison() && src == dst && *dst >= first_temp => Some(Insn::CmpImmBranch {
            op: *op,
            l: *l,
            imm: *imm,
            target: *target,
            branch_cost: *cost,
            cmp_span: *span,
            br_span: *br_span,
        }),
        // compare + while test
        (
            Insn::Bin {
                op,
                dst,
                l,
                r,
                span,
            },
            Insn::WhileTest {
                src,
                exit,
                cost,
                span: br_span,
            },
        ) if op.is_comparison() && src == dst && *dst >= first_temp => Some(Insn::CmpWhile {
            op: *op,
            l: *l,
            r: *r,
            exit: *exit,
            branch_cost: *cost,
            cmp_span: *span,
            br_span: *br_span,
        }),
        (
            Insn::BinImm {
                op,
                dst,
                l,
                imm,
                span,
            },
            Insn::WhileTest {
                src,
                exit,
                cost,
                span: br_span,
            },
        ) if op.is_comparison() && src == dst && *dst >= first_temp => Some(Insn::CmpImmWhile {
            op: *op,
            l: *l,
            imm: *imm,
            exit: *exit,
            branch_cost: *cost,
            cmp_span: *span,
            br_span: *br_span,
        }),
        // binop + local assignment (simple and compound lowerings)
        (
            Insn::Bin {
                op,
                dst,
                l,
                r,
                span,
            },
            Insn::AssignLocal {
                slot,
                src,
                span: asg_span,
            },
        ) if src == dst && *dst >= first_temp => Some(Insn::BinAssign {
            op: *op,
            slot: *slot,
            l: *l,
            r: *r,
            span: *span,
            asg_span: *asg_span,
        }),
        (
            Insn::BinImm {
                op,
                dst,
                l,
                imm,
                span,
            },
            Insn::AssignLocal {
                slot,
                src,
                span: asg_span,
            },
        ) if src == dst && *dst >= first_temp => Some(Insn::BinImmAssign {
            op: *op,
            slot: *slot,
            l: *l,
            imm: *imm,
            span: *span,
            asg_span: *asg_span,
        }),
        // indexed load + binop consuming the loaded value on the left
        (
            Insn::Index {
                dst,
                base,
                idx,
                cost,
                base_span,
                index_span,
                span,
            },
            Insn::Bin {
                op,
                dst: bin_dst,
                l,
                r,
                span: bin_span,
            },
        ) if l == dst && r != dst && *dst >= first_temp => Some(Insn::IndexBin {
            op: *op,
            dst: *bin_dst,
            base: *base,
            idx: *idx,
            r: *r,
            cost: *cost,
            base_span: *base_span,
            index_span: *index_span,
            load_span: *span,
            span: *bin_span,
        }),
        (
            Insn::Index {
                dst,
                base,
                idx,
                cost,
                base_span,
                index_span,
                span,
            },
            Insn::BinImm {
                op,
                dst: bin_dst,
                l,
                imm,
                span: bin_span,
            },
        ) if l == dst && *dst >= first_temp => Some(Insn::IndexBinImm {
            op: *op,
            dst: *bin_dst,
            base: *base,
            idx: *idx,
            imm: *imm,
            cost: *cost,
            base_span: *base_span,
            index_span: *index_span,
            load_span: *span,
            span: *bin_span,
        }),
        // producer + declaration coercion. `Coerce` never charges, so the
        // fusion removes only the dispatch and the dead temporary write;
        // the coercion (and its possible type error) happens after the
        // producer's charges and errors, in the original order.
        (
            Insn::Bin {
                op,
                dst,
                l,
                r,
                span,
            },
            Insn::Coerce {
                dst: c_dst,
                src,
                ty,
                span: co_span,
            },
        ) if src == dst && *dst >= first_temp => Some(Insn::BinCoerce {
            op: *op,
            dst: *c_dst,
            l: *l,
            r: *r,
            ty: *ty,
            span: *span,
            co_span: *co_span,
        }),
        (
            Insn::BinImm {
                op,
                dst,
                l,
                imm,
                span,
            },
            Insn::Coerce {
                dst: c_dst,
                src,
                ty,
                span: co_span,
            },
        ) if src == dst && *dst >= first_temp => Some(Insn::BinImmCoerce {
            op: *op,
            dst: *c_dst,
            l: *l,
            imm: *imm,
            ty: *ty,
            span: *span,
            co_span: *co_span,
        }),
        (
            Insn::Index {
                dst,
                base,
                idx,
                cost,
                base_span,
                index_span,
                span,
            },
            Insn::Coerce {
                dst: c_dst,
                src,
                ty,
                span: co_span,
            },
        ) if src == dst && *dst >= first_temp => Some(Insn::IndexCoerce {
            dst: *c_dst,
            base: *base,
            idx: *idx,
            cost: *cost,
            ty: *ty,
            base_span: *base_span,
            index_span: *index_span,
            span: *span,
            co_span: *co_span,
        }),
        (
            Insn::MathCall {
                dst,
                a,
                b,
                f,
                cycles,
                flops,
                name,
                span,
            },
            Insn::Coerce {
                dst: c_dst,
                src,
                ty,
                span: co_span,
            },
        ) if src == dst && *dst >= first_temp => Some(Insn::MathCallCoerce {
            dst: *c_dst,
            a: *a,
            b: *b,
            f: *f,
            cycles: *cycles,
            flops: *flops,
            name: name.clone(),
            ty: *ty,
            span: *span,
            co_span: *co_span,
        }),
        (
            Insn::IndexBin {
                op,
                dst,
                base,
                idx,
                r,
                cost,
                base_span,
                index_span,
                load_span,
                span,
            },
            Insn::Coerce {
                dst: c_dst,
                src,
                ty,
                span: co_span,
            },
        ) if src == dst && *dst >= first_temp => Some(Insn::IndexBinCoerce {
            op: *op,
            dst: *c_dst,
            base: *base,
            idx: *idx,
            r: *r,
            cost: *cost,
            ty: *ty,
            base_span: *base_span,
            index_span: *index_span,
            load_span: *load_span,
            span: *span,
            co_span: *co_span,
        }),
        (
            Insn::IndexBinImm {
                op,
                dst,
                base,
                idx,
                imm,
                cost,
                base_span,
                index_span,
                load_span,
                span,
            },
            Insn::Coerce {
                dst: c_dst,
                src,
                ty,
                span: co_span,
            },
        ) if src == dst && *dst >= first_temp => Some(Insn::IndexBinImmCoerce {
            op: *op,
            dst: *c_dst,
            base: *base,
            idx: *idx,
            imm: *imm,
            cost: *cost,
            ty: *ty,
            base_span: *base_span,
            index_span: *index_span,
            load_span: *load_span,
            span: *span,
            co_span: *co_span,
        }),
        // immediate-binop chain: the second binop consumes the first's
        // single-use temporary (`i * N + k` address forms, `c * v - 1.0`
        // scalings). Both `apply_binary` calls still run in order, so
        // charges and error behaviour are exactly the unfused pair's; only
        // the dead temporary write disappears.
        (
            Insn::BinImm {
                op: op1,
                dst,
                l,
                imm: imm1,
                span: span1,
            },
            Insn::BinImm {
                op: op2,
                dst: dst2,
                l: l2,
                imm: imm2,
                span: span2,
            },
        ) if l2 == dst && *dst >= first_temp => Some(Insn::BinImm2 {
            op1: *op1,
            op2: *op2,
            dst: *dst2,
            l: *l,
            imm1: *imm1,
            imm2: *imm2,
            span1: *span1,
            span2: *span2,
        }),
        // immediate binop + unary math intrinsic consuming its temporary
        // (`exp(c * v)` and friends). Gated on a floating immediate and an
        // arithmetic op so the binop result is always numeric: the
        // intrinsic's non-numeric-argument error — the only consumer of
        // the call's source-name string — cannot fire, and the fused form
        // need not carry the name.
        (
            Insn::BinImm {
                op,
                dst,
                l,
                imm,
                span,
            },
            Insn::MathCall {
                dst: m_dst,
                a,
                f,
                cycles,
                flops,
                ..
            },
        ) if a == dst
            && *dst >= first_temp
            && f.op.arity() == 1
            && matches!(imm, Value::Double(_) | Value::Float(_))
            && matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
            && u32::try_from(*cycles).is_ok()
            && u32::try_from(*flops).is_ok() =>
        {
            Some(Insn::MathCallImm {
                op: *op,
                rev: false,
                dst: *m_dst,
                l: *l,
                imm: *imm,
                f: *f,
                cycles: *cycles as u32,
                flops: *flops as u32,
                bin_span: *span,
            })
        }
        // reversed-immediate binop + unary math intrinsic (`exp(0.0 - x)`)
        (
            Insn::BinImmRev {
                op,
                dst,
                imm,
                r,
                span,
            },
            Insn::MathCall {
                dst: m_dst,
                a,
                f,
                cycles,
                flops,
                ..
            },
        ) if a == dst
            && *dst >= first_temp
            && f.op.arity() == 1
            && matches!(imm, Value::Double(_) | Value::Float(_))
            && matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
            && u32::try_from(*cycles).is_ok()
            && u32::try_from(*flops).is_ok() =>
        {
            Some(Insn::MathCallImm {
                op: *op,
                rev: true,
                dst: *m_dst,
                l: *r,
                imm: *imm,
                f: *f,
                cycles: *cycles as u32,
                flops: *flops as u32,
                bin_span: *span,
            })
        }
        // for-step + back-edge jump
        (
            Insn::ForStep {
                slot,
                step,
                negative,
                cost,
                span,
            },
            Insn::Jump(target),
        ) => Some(Insn::ForStepJump {
            slot: *slot,
            step: *step,
            negative: *negative,
            cost: *cost,
            span: *span,
            target: *target,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{Program, SpanId};
    use crate::eval::RunConfig;
    use psa_minicpp::ast::BinOp;
    use psa_minicpp::parse_module;

    // These tests pin the *fusion* layer's output, so they compile at the
    // unspecialised level — the later passes (typeinfer specialisation,
    // loop-charge deferral) rewrite several of the fused forms and have
    // their own tests in `crate::typeinfer` and below.
    fn main_code(src: &str) -> Vec<Insn> {
        let m = parse_module(src, "t").unwrap();
        let p = Program::compile_unspecialized(&m, &RunConfig::default());
        let fidx = p.fn_by_name["main"];
        p.funcs[fidx as usize].code.clone()
    }

    /// Count matches, looking through `ArithBlock` batches.
    fn count(code: &[Insn], pred: impl Fn(&Insn) -> bool) -> usize {
        code.iter()
            .flat_map(|i| match i {
                Insn::ArithBlock(steps) => steps.iter().collect::<Vec<_>>(),
                other => vec![other],
            })
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn if_comparison_fuses_to_cmp_branch() {
        let code =
            main_code("int main() { int a = 1; int b = 2; if (a < b) { return 1; } return 0; }");
        assert_eq!(count(&code, |i| matches!(i, Insn::CmpBranch { .. })), 1);
        // The pair it replaced is gone.
        assert_eq!(count(&code, |i| matches!(i, Insn::JumpIfFalse { .. })), 0);
    }

    #[test]
    fn literal_comparison_fuses_to_cmp_imm_branch() {
        let code = main_code("int main() { int a = 1; if (a < 10) { return 1; } return 0; }");
        assert_eq!(count(&code, |i| matches!(i, Insn::CmpImmBranch { .. })), 1);
    }

    #[test]
    fn while_comparison_fuses_to_cmp_imm_while() {
        let code = main_code("int main() { int i = 0; while (i < 5) { i += 1; } return i; }");
        assert_eq!(count(&code, |i| matches!(i, Insn::CmpImmWhile { .. })), 1);
        assert_eq!(count(&code, |i| matches!(i, Insn::WhileTest { .. })), 0);
    }

    #[test]
    fn compound_assignment_fuses_to_bin_assign() {
        let code = main_code(
            "int main() { int s = 0; for (int i = 0; i < 9; i++) { s += i; } return s; }",
        );
        assert_eq!(count(&code, |i| matches!(i, Insn::BinAssign { .. })), 1);
        // The loop's step + back-edge fused too.
        assert_eq!(count(&code, |i| matches!(i, Insn::ForStepJump { .. })), 1);
        assert_eq!(count(&code, |i| matches!(i, Insn::ForStep { .. })), 0);
    }

    #[test]
    fn indexed_load_feeding_binop_fuses_to_index_bin() {
        // In a declaration the result also feeds a `Coerce`, so the second
        // pass folds that in too: `Index`+`Bin`+`Coerce` → `IndexBinCoerce`.
        let code = main_code(
            "int main() { double* a = alloc_double(4); double x = 1.0; \
             double y = a[2] - x; double z = a[3] * 0.5; return (int)(y + z); }",
        );
        assert_eq!(
            count(&code, |i| matches!(i, Insn::IndexBinCoerce { .. })),
            1
        );
        assert_eq!(
            count(&code, |i| matches!(i, Insn::IndexBinImmCoerce { .. })),
            1
        );
        // Used as a plain expression (no declaration) the pair stays.
        let code = main_code(
            "int main() { double* a = alloc_double(4); double y = 0.0; \
             y = a[2] - 1.5; return (int)y; }",
        );
        assert_eq!(count(&code, |i| matches!(i, Insn::IndexBinImm { .. })), 1);
    }

    #[test]
    fn declaration_initialisers_fuse_with_their_producers() {
        let code = main_code(
            "int main() { double* a = alloc_double(4); int i = 2; \
             double u = a[i]; double s = sqrt(u); double t = s * s; \
             double w = t + 0.5; return (int)w; }",
        );
        assert_eq!(count(&code, |i| matches!(i, Insn::IndexCoerce { .. })), 1);
        assert_eq!(
            count(&code, |i| matches!(i, Insn::MathCallCoerce { .. })),
            1
        );
        assert_eq!(count(&code, |i| matches!(i, Insn::BinCoerce { .. })), 1);
        assert_eq!(count(&code, |i| matches!(i, Insn::BinImmCoerce { .. })), 1);
        assert_eq!(count(&code, |i| matches!(i, Insn::Coerce { .. })), 0);
    }

    #[test]
    fn fused_programs_run_identically() {
        // Same program, fused vs unfused: values must agree (the
        // differential suites check the full observable set; this is the
        // in-crate smoke check).
        let src = "int main() { int s = 0; for (int i = 0; i < 20; i++) { \
                   if (i % 3 == 0) { continue; } s += i; } return s; }";
        let m = parse_module(src, "t").unwrap();
        let cfg = RunConfig::default();
        let mut fast = crate::vm::Vm::with_program(
            std::sync::Arc::new(Program::compile(&m, &cfg)),
            cfg.clone(),
        );
        let mut slow = crate::vm::Vm::with_program(
            std::sync::Arc::new(Program::compile_unfused(&m, &cfg)),
            cfg.clone(),
        );
        let a = fast.run_main().unwrap();
        let b = slow.run_main().unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(fast.profile(), slow.profile());
    }

    #[test]
    fn fusion_never_fires_across_jump_targets() {
        // Hand-built: a comparison followed by a branch, where some other
        // jump lands ON the branch. Fusing would skip the comparison on
        // that path.
        let s = SpanId(0);
        let code = vec![
            Insn::Bin {
                op: BinOp::Lt,
                dst: 5,
                l: 0,
                r: 1,
                span: s,
            },
            Insn::JumpIfFalse {
                src: 5,
                target: 3,
                cost: 1,
                span: s,
            },
            Insn::Jump(1), // lands on the JumpIfFalse: blocks fusion
            Insn::Ret {
                src: 0,
                has_value: false,
            },
        ];
        let out = fuse(code, 5);
        assert_eq!(out.len(), 4, "pair across a jump target must not fuse");
        assert!(matches!(out[0], Insn::Bin { .. }));
        assert!(matches!(out[1], Insn::JumpIfFalse { .. }));
        // Identical code without the incoming jump does fuse.
        let code = vec![
            Insn::Bin {
                op: BinOp::Lt,
                dst: 5,
                l: 0,
                r: 1,
                span: s,
            },
            Insn::JumpIfFalse {
                src: 5,
                target: 2,
                cost: 1,
                span: s,
            },
            Insn::Ret {
                src: 0,
                has_value: false,
            },
        ];
        let out = fuse(code, 5);
        assert!(matches!(out[0], Insn::CmpBranch { .. }));
    }

    #[test]
    fn fusion_never_elides_a_local_register_write() {
        // The comparison writes a *local* (register below first_temp):
        // eliding that write would be observable, so fusion must not fire.
        let s = SpanId(0);
        let code = vec![
            Insn::Bin {
                op: BinOp::Lt,
                dst: 2,
                l: 0,
                r: 1,
                span: s,
            },
            Insn::JumpIfFalse {
                src: 2,
                target: 2,
                cost: 1,
                span: s,
            },
            Insn::Ret {
                src: 0,
                has_value: false,
            },
        ];
        let out = fuse(code, 5);
        assert_eq!(out.len(), 3);
        assert!(matches!(out[0], Insn::Bin { .. }));
    }

    #[test]
    fn jump_targets_are_remapped_after_fusion() {
        // A for loop with a `continue`: the continue's jump targets the
        // step, which fuses with the back-edge; the retargeted jump must
        // land on the fused instruction and the program must still work.
        let src = "int main() { int s = 0; for (int i = 0; i < 10; i++) { \
                   if (i == 5) { continue; } s += 1; } return s; }";
        let m = parse_module(src, "t").unwrap();
        let cfg = RunConfig::default();
        let mut vm = crate::vm::Vm::new(&m, cfg);
        let v = vm.run_main().unwrap();
        assert_eq!(format!("{v:?}"), "Int(9)");
    }

    #[test]
    fn imm_binop_chain_fuses_to_bin_imm2() {
        // `i * 4 + 2`: the second immediate binop consumes the first's
        // single-use temporary (the shape of flattened 2-D addressing).
        let code = main_code("int main() { int i = 5; return i * 4 + 2; }");
        assert_eq!(count(&code, |i| matches!(i, Insn::BinImm2 { .. })), 1);
        assert_eq!(count(&code, |i| matches!(i, Insn::BinImm { .. })), 0);
    }

    #[test]
    fn scaled_math_call_fuses_to_math_call_imm() {
        // `sqrt(v * 4.0)`: immediate scaling feeding a unary intrinsic.
        let code = main_code(
            "int main() { double v = 2.25; double r = 0.0; \
             r = sqrt(v * 4.0); return (int)r; }",
        );
        assert_eq!(
            count(&code, |i| matches!(i, Insn::MathCallImm { rev: false, .. })),
            1
        );
        assert_eq!(count(&code, |i| matches!(i, Insn::MathCall { .. })), 0);
        // Literal-left (`4.0 / v`) goes through `BinImmRev` and sets `rev`.
        let code = main_code(
            "int main() { double v = 2.0; double r = 0.0; \
             r = sqrt(4.0 / v); return (int)r; }",
        );
        assert_eq!(
            count(&code, |i| matches!(i, Insn::MathCallImm { rev: true, .. })),
            1
        );
    }

    #[test]
    fn bin_imm2_never_elides_a_local_register_write() {
        // First binop writes a *local* (below first_temp): its write is
        // observable, so the chain must stay unfused.
        let s = SpanId(0);
        let code = vec![
            Insn::BinImm {
                op: BinOp::Mul,
                dst: 2,
                l: 0,
                imm: Value::Int(4),
                span: s,
            },
            Insn::BinImm {
                op: BinOp::Add,
                dst: 6,
                l: 2,
                imm: Value::Int(2),
                span: s,
            },
            Insn::Ret {
                src: 6,
                has_value: true,
            },
        ];
        let out = fuse(code, 5);
        assert_eq!(count(&out, |i| matches!(i, Insn::BinImm2 { .. })), 0);
        assert_eq!(count(&out, |i| matches!(i, Insn::BinImm { .. })), 2);
    }

    #[test]
    fn math_call_imm_requires_float_immediate() {
        // An integer immediate is excluded from `MathCallImm` (the fused
        // handler is specialised to the float fast path); the pair must
        // stay unfused.
        use crate::intrinsics::{MathFn, MathOp};
        let s = SpanId(0);
        let code = vec![
            Insn::BinImm {
                op: BinOp::Add,
                dst: 6,
                l: 0,
                imm: Value::Int(3),
                span: s,
            },
            Insn::MathCall {
                dst: 7,
                a: 6,
                b: 0,
                f: MathFn {
                    op: MathOp::Sqrt,
                    single: false,
                },
                cycles: 20,
                flops: 1,
                name: "sqrt".into(),
                span: s,
            },
            Insn::Ret {
                src: 7,
                has_value: true,
            },
        ];
        let out = fuse(code, 5);
        assert_eq!(count(&out, |i| matches!(i, Insn::MathCallImm { .. })), 0);
        assert_eq!(count(&out, |i| matches!(i, Insn::MathCall { .. })), 1);
    }
}
