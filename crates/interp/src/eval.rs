//! The tree-walking evaluator.
//!
//! Executes a [`psa_minicpp::Module`] under the virtual-clock cost model,
//! producing a [`Profile`]. Control flow is structured (no goto in MiniC++),
//! so `break`/`continue`/`return` propagate as an internal `Flow` value.

use crate::error::{RuntimeError, RuntimeResult};
use crate::intrinsics::{self, Intrinsic};
use crate::memory::Memory;
use crate::ops::{self, BinCosts, IntrinsicCtx};
use crate::profile::{CostModel, Profile};
use crate::value::{Pointer, Value};
use psa_minicpp::ast::*;
use psa_minicpp::Span;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Which execution engine runs the program.
///
/// Both engines produce bit-identical observables (results, profiles,
/// memory, errors) — the choice only affects host-side wall-clock time, so
/// it deliberately does **not** participate in [`RunConfig::content_hash`]
/// and cached artefacts are engine-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Compile to slot-resolved bytecode and run on the VM (fast path).
    Vm,
    /// Walk the AST directly (reference semantics / differential oracle).
    Tree,
}

static DEFAULT_ENGINE: OnceLock<Engine> = OnceLock::new();

impl Engine {
    /// The process-wide default engine: whatever was pinned first by
    /// [`set_default_engine`], else `PSA_INTERP_ENGINE=tree` from the
    /// environment, else the VM.
    pub fn default_engine() -> Engine {
        *DEFAULT_ENGINE.get_or_init(|| match std::env::var("PSA_INTERP_ENGINE") {
            Ok(v) if v == "tree" => Engine::Tree,
            _ => Engine::Vm,
        })
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::default_engine()
    }
}

/// Pin the process-wide default engine (e.g. from a `--engine` CLI flag)
/// before any `RunConfig::default()` is built. Returns `false` if the
/// default was already resolved — first caller wins.
pub fn set_default_engine(engine: Engine) -> bool {
    DEFAULT_ENGINE.set(engine).is_ok()
}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub cost_model: CostModel,
    /// Hard cap on virtual cycles (runaway guard).
    pub max_cycles: u64,
    /// Hard cap on call depth.
    pub max_call_depth: usize,
    /// Function whose execution is traced for kernel-scoped metrics
    /// (data-in/out, kernel FLOPs/bytes, per-buffer access ranges).
    pub watch_function: Option<String>,
    /// Execution engine. Semantically invisible (see [`Engine`]); excluded
    /// from the cache key.
    pub engine: Engine,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cost_model: CostModel::default(),
            max_cycles: 20_000_000_000,
            max_call_depth: 128,
            watch_function: None,
            engine: Engine::default(),
        }
    }
}

/// Result of executing a statement.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// One call frame: a stack of lexical scopes.
struct Frame {
    scopes: Vec<HashMap<String, Value>>,
}

impl Frame {
    fn new() -> Self {
        Frame {
            scopes: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn define(&mut self, name: &str, value: Value) {
        self.scopes
            .last_mut()
            .expect("frame has a scope")
            .insert(name.to_string(), value);
    }

    fn get(&self, name: &str) -> Option<Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn set(&mut self, name: &str, value: Value) -> bool {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return true;
            }
        }
        false
    }
}

/// The interpreter. Borrow the module immutably; owns memory and profile.
pub struct Interpreter<'m> {
    module: &'m Module,
    /// The memory arena, public so harnesses can set up and inspect data.
    pub memory: Memory,
    profile: Profile,
    config: RunConfig,
    /// Operator costs copied out of the cost model once — the binop/unop
    /// hot paths must not clone the full [`CostModel`] per operation.
    bin_costs: BinCosts,
    watch_depth: usize,
    call_depth: usize,
    timer_stack: Vec<(i64, u64)>,
    kernel_snapshot: Option<(u64, u64, u64, u64)>,
    globals: HashMap<String, Value>,
    heap_count: u32,
}

impl<'m> Interpreter<'m> {
    pub fn new(module: &'m Module, config: RunConfig) -> Self {
        let bin_costs = BinCosts::of(&config.cost_model);
        Interpreter {
            module,
            memory: Memory::new(),
            profile: Profile::default(),
            config,
            bin_costs,
            watch_depth: 0,
            call_depth: 0,
            timer_stack: Vec::new(),
            kernel_snapshot: None,
            globals: HashMap::new(),
            heap_count: 0,
        }
    }

    /// The accumulated profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Consume the interpreter, returning profile and memory.
    pub fn into_parts(self) -> (Profile, Memory) {
        (self.profile, self.memory)
    }

    /// Execute module globals then `main()`.
    pub fn run_main(&mut self) -> RuntimeResult<Value> {
        self.init_globals()?;
        self.call_by_name("main", Vec::new(), Span::SYNTHETIC)
    }

    /// Initialise module-level globals (idempotent).
    pub fn init_globals(&mut self) -> RuntimeResult<()> {
        if !self.globals.is_empty() {
            return Ok(());
        }
        let mut frame = Frame::new();
        for item in &self.module.items {
            if let Item::Global(stmt) = item {
                if let StmtKind::Decl(d) = &stmt.kind {
                    self.exec_decl(d, &mut frame)?;
                    if let Some(v) = frame.get(&d.name) {
                        self.globals.insert(d.name.clone(), v);
                    }
                }
            }
        }
        Ok(())
    }

    /// Call a function by name with pre-built argument values. Used both by
    /// internal calls and by analysis harnesses invoking extracted kernels.
    pub fn call_by_name(
        &mut self,
        name: &str,
        args: Vec<Value>,
        span: Span,
    ) -> RuntimeResult<Value> {
        if let Some(func) = self.module.function(name) {
            return self.call_user(func, args, span);
        }
        match intrinsics::lookup(name) {
            Some(intr) => self.call_intrinsic(name, intr, &args, span),
            None => Err(RuntimeError::Unbound {
                name: name.to_string(),
                span,
            }),
        }
    }

    fn call_user(
        &mut self,
        func: &'m Function,
        args: Vec<Value>,
        span: Span,
    ) -> RuntimeResult<Value> {
        if self.call_depth >= self.config.max_call_depth {
            return Err(RuntimeError::StackOverflow {
                depth: self.config.max_call_depth,
            });
        }
        if args.len() != func.params.len() {
            return Err(RuntimeError::Type {
                message: format!(
                    "`{}` expects {} arguments, got {}",
                    func.name,
                    func.params.len(),
                    args.len()
                ),
                span,
            });
        }
        self.charge(self.config.cost_model.call)?;

        let watched = self.config.watch_function.as_deref() == Some(func.name.as_str());
        if watched {
            if self.watch_depth == 0 {
                self.kernel_snapshot = Some((
                    self.profile.total_cycles,
                    self.profile.flops,
                    self.profile.bytes_loaded,
                    self.profile.bytes_stored,
                ));
            }
            self.watch_depth += 1;
            self.profile.kernel_calls += 1;
        }
        self.call_depth += 1;

        let mut frame = Frame::new();
        let mut ptr_args: Vec<(String, Pointer)> = Vec::new();
        for (param, arg) in func.params.iter().zip(args) {
            let coerced = self.coerce(arg, param.ty, param.span)?;
            if watched && self.watch_depth == 1 {
                if let Value::Ptr(p) = coerced {
                    ptr_args.push((param.name.clone(), p));
                }
            }
            frame.define(&param.name, coerced);
        }
        if watched && self.watch_depth == 1 {
            self.profile.kernel_arg_ptrs.push(ptr_args);
        }
        let result = self.exec_block(&func.body, &mut frame);

        self.call_depth -= 1;
        if watched {
            self.watch_depth -= 1;
            if self.watch_depth == 0 {
                let (c0, f0, l0, s0) = self.kernel_snapshot.take().expect("snapshot set on entry");
                self.profile.kernel_cycles += self.profile.total_cycles - c0;
                self.profile.kernel_flops += self.profile.flops - f0;
                self.profile.kernel_bytes_loaded += self.profile.bytes_loaded - l0;
                self.profile.kernel_bytes_stored += self.profile.bytes_stored - s0;
            }
        }

        match result? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Unit),
        }
    }

    fn coerce(&self, value: Value, ty: Type, span: Span) -> RuntimeResult<Value> {
        ops::coerce(value, ty, span)
    }

    fn call_intrinsic(
        &mut self,
        name: &str,
        intr: Intrinsic,
        args: &[Value],
        span: Span,
    ) -> RuntimeResult<Value> {
        let mut ctx = IntrinsicCtx {
            profile: &mut self.profile,
            memory: &mut self.memory,
            cost_model: &self.config.cost_model,
            max_cycles: self.config.max_cycles,
            timer_stack: &mut self.timer_stack,
            heap_count: &mut self.heap_count,
            watch: self.watch_depth > 0,
        };
        ops::exec_intrinsic(&mut ctx, name, intr, args, span)
    }

    fn charge(&mut self, cycles: u64) -> RuntimeResult<()> {
        ops::charge(&mut self.profile, self.config.max_cycles, cycles)
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn exec_block(&mut self, block: &'m Block, frame: &mut Frame) -> RuntimeResult<Flow> {
        frame.push();
        let mut flow = Flow::Normal;
        for stmt in &block.stmts {
            flow = self.exec_stmt(stmt, frame)?;
            if !matches!(flow, Flow::Normal) {
                break;
            }
        }
        frame.pop();
        Ok(flow)
    }

    fn exec_decl(&mut self, d: &'m VarDecl, frame: &mut Frame) -> RuntimeResult<()> {
        if let Some(len_expr) = &d.array_len {
            let len = self
                .eval(len_expr, frame)?
                .as_i64()
                .filter(|&n| n >= 0)
                .ok_or_else(|| RuntimeError::Type {
                    message: format!("array length of `{}` must be a non-negative int", d.name),
                    span: d.span,
                })?;
            let id = self.memory.alloc(d.ty.scalar, len as usize, d.name.clone());
            frame.define(
                &d.name,
                Value::Ptr(Pointer {
                    buffer: id,
                    offset: 0,
                }),
            );
            return Ok(());
        }
        let value = match &d.init {
            Some(init) => {
                let v = self.eval(init, frame)?;
                if d.ty.is_pointer() {
                    v
                } else {
                    self.coerce(v, d.ty, d.span)?
                }
            }
            None => match (d.ty.is_pointer(), d.ty.scalar) {
                (true, _) => Value::Ptr(Pointer {
                    buffer: crate::BufferId(u32::MAX),
                    offset: 0,
                }),
                (_, Scalar::Int) => Value::Int(0),
                (_, Scalar::Float) => Value::Float(0.0),
                (_, Scalar::Double) => Value::Double(0.0),
                (_, Scalar::Bool) => Value::Bool(false),
                (_, Scalar::Void) => Value::Unit,
            },
        };
        frame.define(&d.name, value);
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &'m Stmt, frame: &mut Frame) -> RuntimeResult<Flow> {
        match &stmt.kind {
            StmtKind::Decl(d) => {
                self.exec_decl(d, frame)?;
                Ok(Flow::Normal)
            }
            StmtKind::Assign { target, op, value } => {
                self.exec_assign(target, *op, value, frame)?;
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(e, frame)?;
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then, els } => {
                let c = self.eval_condition(cond, frame)?;
                if c {
                    self.exec_block(then, frame)
                } else if let Some(els) = els {
                    self.exec_block(els, frame)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::For(l) => self.exec_for(l, frame),
            StmtKind::While { cond, body } => self.exec_while(stmt.id, cond, body, frame),
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, frame)?,
                    None => Value::Unit,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Block(b) => self.exec_block(b, frame),
        }
    }

    fn exec_for(&mut self, l: &'m ForLoop, frame: &mut Frame) -> RuntimeResult<Flow> {
        let start_cycles = self.profile.total_cycles;
        frame.push();
        let init = self.eval(&l.init, frame)?;
        let init = Value::Int(init.as_i64().ok_or_else(|| RuntimeError::Type {
            message: format!("loop init for `{}` must be integral", l.var),
            span: l.span,
        })?);
        if l.declares_var {
            frame.define(&l.var, init);
        } else if !frame.set(&l.var, init) {
            frame.pop();
            return Err(RuntimeError::Unbound {
                name: l.var.clone(),
                span: l.span,
            });
        }

        let mut iterations = 0u64;
        let mut result = Flow::Normal;
        loop {
            // Condition: i <op> bound.
            let i = frame
                .get(&l.var)
                .expect("induction var bound")
                .as_i64()
                .unwrap_or(0);
            let bound = self
                .eval(&l.bound, frame)?
                .as_i64()
                .ok_or_else(|| RuntimeError::Type {
                    message: "loop bound must be integral".into(),
                    span: l.span,
                })?;
            self.charge(self.config.cost_model.int_op + self.config.cost_model.branch)?;
            self.profile.int_ops += 1;
            let keep = match l.cond_op {
                BinOp::Lt => i < bound,
                BinOp::Le => i <= bound,
                BinOp::Gt => i > bound,
                BinOp::Ge => i >= bound,
                BinOp::Ne => i != bound,
                _ => false,
            };
            if !keep {
                break;
            }
            iterations += 1;
            match self.exec_block(&l.body, frame)? {
                Flow::Normal | Flow::Continue => {}
                Flow::Break => break,
                Flow::Return(v) => {
                    result = Flow::Return(v);
                    break;
                }
            }
            // Step.
            let step = self
                .eval(&l.step, frame)?
                .as_i64()
                .ok_or_else(|| RuntimeError::Type {
                    message: "loop step must be integral".into(),
                    span: l.span,
                })?;
            let next = if l.step_negative { i - step } else { i + step };
            frame.set(&l.var, Value::Int(next));
            self.charge(self.config.cost_model.int_op)?;
            self.profile.int_ops += 1;
        }
        frame.pop();

        let stats = self.profile.loop_stats.entry(l.id).or_default();
        stats.entries += 1;
        stats.iterations += iterations;
        stats.cycles += self.profile.total_cycles - start_cycles;
        Ok(result)
    }

    fn exec_while(
        &mut self,
        id: NodeId,
        cond: &'m Expr,
        body: &'m Block,
        frame: &mut Frame,
    ) -> RuntimeResult<Flow> {
        let start_cycles = self.profile.total_cycles;
        let mut iterations = 0u64;
        let mut result = Flow::Normal;
        loop {
            if !self.eval_condition(cond, frame)? {
                break;
            }
            iterations += 1;
            match self.exec_block(body, frame)? {
                Flow::Normal | Flow::Continue => {}
                Flow::Break => break,
                Flow::Return(v) => {
                    result = Flow::Return(v);
                    break;
                }
            }
        }
        let stats = self.profile.loop_stats.entry(id).or_default();
        stats.entries += 1;
        stats.iterations += iterations;
        stats.cycles += self.profile.total_cycles - start_cycles;
        Ok(result)
    }

    fn eval_condition(&mut self, cond: &'m Expr, frame: &mut Frame) -> RuntimeResult<bool> {
        let v = self.eval(cond, frame)?;
        self.charge(self.config.cost_model.branch)?;
        v.truthy().ok_or_else(|| RuntimeError::Type {
            message: format!("condition is not boolean-testable ({})", v.type_name()),
            span: cond.span,
        })
    }

    fn exec_assign(
        &mut self,
        target: &'m Expr,
        op: AssignOp,
        value: &'m Expr,
        frame: &mut Frame,
    ) -> RuntimeResult<()> {
        match &target.kind {
            ExprKind::Ident(name) => {
                let rhs = self.eval(value, frame)?;
                let new = match op.bin_op() {
                    None => rhs,
                    Some(bop) => {
                        let old = frame
                            .get(name)
                            .or_else(|| self.globals.get(name).copied())
                            .ok_or_else(|| RuntimeError::Unbound {
                                name: name.clone(),
                                span: target.span,
                            })?;
                        self.apply_binary(bop, old, rhs, target.span)?
                    }
                };
                // Keep the variable's existing type (C assignment converts).
                let current = frame.get(name).or_else(|| self.globals.get(name).copied());
                let converted = ops::convert_assign(current, new, target.span)?;
                if !frame.set(name, converted) {
                    if self.globals.contains_key(name) {
                        self.globals.insert(name.clone(), converted);
                    } else {
                        return Err(RuntimeError::Unbound {
                            name: name.clone(),
                            span: target.span,
                        });
                    }
                }
                Ok(())
            }
            ExprKind::Index { base, index } => {
                let ptr = self
                    .eval(base, frame)?
                    .as_ptr()
                    .ok_or_else(|| RuntimeError::Type {
                        message: "indexed value is not a pointer".into(),
                        span: base.span,
                    })?;
                let idx = self
                    .eval(index, frame)?
                    .as_i64()
                    .ok_or_else(|| RuntimeError::Type {
                        message: "index is not integral".into(),
                        span: index.span,
                    })?;
                self.charge(self.config.cost_model.int_op)?; // address arithmetic
                self.profile.int_ops += 1;
                let addr = ptr.offset + idx;
                let rhs = self.eval(value, frame)?;
                let new = match op.bin_op() {
                    None => rhs,
                    Some(bop) => {
                        let watch = self.watch_depth > 0;
                        let old = self.memory.load(ptr.buffer, addr, target.span, watch)?;
                        self.charge(self.config.cost_model.load)?;
                        self.profile.loads += 1;
                        self.profile.bytes_loaded += self.memory.elem_bytes(ptr.buffer);
                        self.apply_binary(bop, old, rhs, target.span)?
                    }
                };
                let watch = self.watch_depth > 0;
                self.memory
                    .store(ptr.buffer, addr, new, target.span, watch)?;
                self.charge(self.config.cost_model.store)?;
                self.profile.stores += 1;
                self.profile.bytes_stored += self.memory.elem_bytes(ptr.buffer);
                Ok(())
            }
            _ => Err(RuntimeError::Type {
                message: "assignment target is not an lvalue".into(),
                span: target.span,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn eval(&mut self, e: &'m Expr, frame: &mut Frame) -> RuntimeResult<Value> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::FloatLit { value, single } => Ok(if *single {
                Value::Float(*value as f32)
            } else {
                Value::Double(*value)
            }),
            ExprKind::BoolLit(b) => Ok(Value::Bool(*b)),
            ExprKind::Ident(name) => frame
                .get(name)
                .or_else(|| self.globals.get(name).copied())
                .ok_or_else(|| RuntimeError::Unbound {
                    name: name.clone(),
                    span: e.span,
                }),
            ExprKind::Unary { op, expr } => {
                let v = self.eval(expr, frame)?;
                ops::apply_unary(
                    &mut self.profile,
                    self.config.max_cycles,
                    self.bin_costs,
                    *op,
                    v,
                    e.span,
                )
            }
            ExprKind::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    let l = self.eval_condition(lhs, frame)?;
                    if !l {
                        return Ok(Value::Bool(false));
                    }
                    Ok(Value::Bool(self.eval_condition(rhs, frame)?))
                }
                BinOp::Or => {
                    let l = self.eval_condition(lhs, frame)?;
                    if l {
                        return Ok(Value::Bool(true));
                    }
                    Ok(Value::Bool(self.eval_condition(rhs, frame)?))
                }
                _ => {
                    let l = self.eval(lhs, frame)?;
                    let r = self.eval(rhs, frame)?;
                    self.apply_binary(*op, l, r, e.span)
                }
            },
            ExprKind::Call { callee, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, frame)?);
                }
                self.call_by_name(callee, values, e.span)
            }
            ExprKind::Index { base, index } => {
                let ptr = self
                    .eval(base, frame)?
                    .as_ptr()
                    .ok_or_else(|| RuntimeError::Type {
                        message: "indexed value is not a pointer".into(),
                        span: base.span,
                    })?;
                let idx = self
                    .eval(index, frame)?
                    .as_i64()
                    .ok_or_else(|| RuntimeError::Type {
                        message: "index is not integral".into(),
                        span: index.span,
                    })?;
                self.charge(self.config.cost_model.int_op + self.config.cost_model.load)?;
                self.profile.int_ops += 1;
                self.profile.loads += 1;
                self.profile.bytes_loaded += self.memory.elem_bytes(ptr.buffer);
                let watch = self.watch_depth > 0;
                self.memory
                    .load(ptr.buffer, ptr.offset + idx, e.span, watch)
            }
            ExprKind::Cast { ty, expr } => {
                let v = self.eval(expr, frame)?;
                self.charge(self.config.cost_model.fp_op)?;
                self.coerce(v, *ty, e.span)
            }
            ExprKind::Ternary { cond, then, els } => {
                if self.eval_condition(cond, frame)? {
                    self.eval(then, frame)
                } else {
                    self.eval(els, frame)
                }
            }
        }
    }

    fn apply_binary(&mut self, op: BinOp, l: Value, r: Value, span: Span) -> RuntimeResult<Value> {
        ops::apply_binary(
            &mut self.profile,
            self.config.max_cycles,
            self.bin_costs,
            op,
            l,
            r,
            span,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_minicpp::parse_module;

    fn run(src: &str) -> (Value, Profile) {
        let m = parse_module(src, "t").unwrap();
        let mut interp = Interpreter::new(&m, RunConfig::default());
        let v = interp.run_main().unwrap();
        let (p, _) = interp.into_parts();
        (v, p)
    }

    fn run_value(src: &str) -> Value {
        run(src).0
    }

    #[test]
    fn arithmetic_and_control_flow() {
        assert_eq!(
            run_value(
                "int main() { int s = 0; for (int i = 1; i <= 10; i++) { s += i; } return s; }"
            ),
            Value::Int(55)
        );
        assert_eq!(
            run_value("int main() { int i = 0; while (i < 5) { i++; } return i; }"),
            Value::Int(5)
        );
        assert_eq!(
            run_value("int main() { int s = 0; for (int i = 0; i < 10; i++) { if (i % 2 == 0) { continue; } if (i > 6) { break; } s += i; } return s; }"),
            Value::Int(1 + 3 + 5)
        );
    }

    #[test]
    fn function_calls_and_recursion() {
        assert_eq!(
            run_value("int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } int main() { return fib(10); }"),
            Value::Int(55)
        );
    }

    #[test]
    fn double_vs_float_precision_differs() {
        let d = run_value("double acc(double x) { return x + 0.1; } int main() { double s = 0.0; for (int i = 0; i < 100; i++) { s = acc(s); } return (int)(s * 1000.0); }");
        let f = run_value("float acc(float x) { return x + 0.1f; } int main() { float s = 0.0f; for (int i = 0; i < 100; i++) { s = acc(s); } return (int)(s * 1000.0f); }");
        // Both near 10000, but not necessarily equal — and both must be close.
        let (Value::Int(d), Value::Int(f)) = (d, f) else {
            panic!()
        };
        assert!((d - 10000).abs() < 10, "{d}");
        assert!((f - 10000).abs() < 10, "{f}");
    }

    #[test]
    fn pointer_params_and_aliasing_memory() {
        let (v, _) = run(
            "void scale(double* a, int n, double k) { for (int i = 0; i < n; i++) { a[i] *= k; } }\
             int main() { double* a = alloc_double(4); a[0] = 1.0; a[1] = 2.0; a[2] = 3.0; a[3] = 4.0; scale(a, 4, 2.0); return (int)(a[0] + a[1] + a[2] + a[3]); }",
        );
        assert_eq!(v, Value::Int(20));
    }

    #[test]
    fn pointer_arithmetic_offsets() {
        let (v, _) = run(
            "int main() { double* a = alloc_double(8); double* b = a + 4; b[0] = 7.0; return (int)a[4]; }",
        );
        assert_eq!(v, Value::Int(7));
    }

    #[test]
    fn loop_stats_record_trip_counts() {
        let m = parse_module(
            "int main() { int s = 0; for (int i = 0; i < 6; i++) { for (int j = 0; j < 4; j++) { s += 1; } } return s; }",
            "t",
        )
        .unwrap();
        let mut interp = Interpreter::new(&m, RunConfig::default());
        interp.run_main().unwrap();
        let stats: Vec<_> = {
            let mut v: Vec<_> = interp.profile().loop_stats.values().copied().collect();
            v.sort_by_key(|s| s.entries);
            v
        };
        assert_eq!(stats.len(), 2);
        // Outer: 1 entry, 6 iters. Inner: 6 entries, 24 iters.
        assert_eq!(stats[0].entries, 1);
        assert_eq!(stats[0].iterations, 6);
        assert_eq!(stats[1].entries, 6);
        assert_eq!(stats[1].iterations, 24);
        assert_eq!(stats[1].mean_trip_count(), 4.0);
        // Outer loop cycles strictly contain inner loop cycles.
        assert!(stats[0].cycles > stats[1].cycles);
    }

    #[test]
    fn timers_measure_nested_regions() {
        let (_, p) = run("int main() {\
               __psa_timer_start(1);\
               int s = 0;\
               __psa_timer_start(2);\
               for (int i = 0; i < 100; i++) { s += i; }\
               __psa_timer_stop(2);\
               __psa_timer_stop(1);\
               return s;\
             }");
        let t1 = p.timers[&1];
        let t2 = p.timers[&2];
        assert_eq!(t1.starts, 1);
        assert!(t1.cycles >= t2.cycles);
        assert!(t2.cycles > 100);
    }

    #[test]
    fn watched_kernel_collects_scoped_metrics() {
        let m = parse_module(
            "void knl(double* a, double* b, int n) { for (int i = 0; i < n; i++) { b[i] = a[i] * 2.0 + 1.0; } }\
             int main() { double* a = alloc_double(16); double* b = alloc_double(16); fill_random(a, 16, 7); knl(a, b, 16); return 0; }",
            "t",
        )
        .unwrap();
        let config = RunConfig {
            watch_function: Some("knl".into()),
            ..Default::default()
        };
        let mut interp = Interpreter::new(&m, config);
        interp.run_main().unwrap();
        let p = interp.profile();
        assert_eq!(p.kernel_calls, 1);
        assert_eq!(p.kernel_flops, 32); // 16 × (mul + add)
        assert_eq!(p.kernel_bytes_loaded, 16 * 8);
        assert_eq!(p.kernel_bytes_stored, 16 * 8);
        assert!(p.kernel_cycles > 0 && p.kernel_cycles < p.total_cycles);
        // Access ranges were recorded on both buffers.
        let touched = interp.memory.kernel_touched();
        assert_eq!(touched.len(), 2);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let m = parse_module("int main() { int a = 1; int b = 0; return a / b; }", "t").unwrap();
        let mut interp = Interpreter::new(&m, RunConfig::default());
        assert!(matches!(
            interp.run_main(),
            Err(RuntimeError::DivideByZero { .. })
        ));
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let m = parse_module(
            "int main() { double* a = alloc_double(2); a[5] = 1.0; return 0; }",
            "t",
        )
        .unwrap();
        let mut interp = Interpreter::new(&m, RunConfig::default());
        assert!(matches!(
            interp.run_main(),
            Err(RuntimeError::Memory { .. })
        ));
    }

    #[test]
    fn runaway_loops_hit_cycle_budget() {
        let m = parse_module("int main() { while (true) { } return 0; }", "t").unwrap();
        let config = RunConfig {
            max_cycles: 10_000,
            ..Default::default()
        };
        let mut interp = Interpreter::new(&m, config);
        assert!(matches!(
            interp.run_main(),
            Err(RuntimeError::CycleBudgetExhausted { .. })
        ));
    }

    #[test]
    fn deep_recursion_overflows_cleanly() {
        let m = parse_module(
            "int f(int n) { return f(n + 1); } int main() { return f(0); }",
            "t",
        )
        .unwrap();
        let mut interp = Interpreter::new(&m, RunConfig::default());
        assert!(matches!(
            interp.run_main(),
            Err(RuntimeError::StackOverflow { .. })
        ));
    }

    #[test]
    fn globals_are_visible_and_mutable() {
        assert_eq!(
            run_value("int counter = 10;\nvoid bump() { counter += 5; }\nint main() { bump(); bump(); return counter; }"),
            Value::Int(20)
        );
    }

    #[test]
    fn ternary_short_circuits() {
        assert_eq!(
            run_value("int main() { int x = 4; return x > 0 ? 1 : 1 / 0; }"),
            Value::Int(1)
        );
    }

    #[test]
    fn math_intrinsics_work() {
        assert_eq!(
            run_value("int main() { return (int)sqrt(256.0); }"),
            Value::Int(16)
        );
        assert_eq!(
            run_value("int main() { return (int)(exp(0.0) + fmax(2.0, 3.0)); }"),
            Value::Int(4)
        );
    }

    #[test]
    fn determinism_across_runs() {
        let src = "int main() { double* a = alloc_double(64); fill_random(a, 64, 3); double s = 0.0; for (int i = 0; i < 64; i++) { s += a[i]; } return (int)(s * 1000.0); }";
        let a = run(src);
        let b = run(src);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.total_cycles, b.1.total_cycles);
        assert_eq!(a.1.flops, b.1.flops);
    }

    #[test]
    fn user_functions_shadow_intrinsics() {
        // A user-defined `sqrt` takes precedence, like C linkage.
        assert_eq!(
            run_value(
                "double sqrt(double x) { return 99.0; } int main() { return (int)sqrt(4.0); }"
            ),
            Value::Int(99)
        );
    }

    #[test]
    fn break_exits_only_innermost_loop() {
        assert_eq!(
            run_value(
                "int main() { int s = 0; for (int i = 0; i < 3; i++) { for (int j = 0; j < 10; j++) { if (j == 1) { break; } s += 1; } } return s; }"
            ),
            Value::Int(3)
        );
    }

    // ------------------------------------------------------------------
    // Frame scope semantics. The VM's compile-time slot resolution
    // (psa_minicpp::scopes) must replicate exactly these rules; these tests
    // pin them at the source.
    // ------------------------------------------------------------------

    #[test]
    fn frame_inner_scope_shadows_outer() {
        let mut f = Frame::new();
        f.define("x", Value::Int(1));
        f.push();
        f.define("x", Value::Int(2));
        assert_eq!(f.get("x"), Some(Value::Int(2)));
        f.pop();
        assert_eq!(f.get("x"), Some(Value::Int(1)));
    }

    #[test]
    fn frame_set_writes_through_to_the_nearest_binding() {
        let mut f = Frame::new();
        f.define("x", Value::Int(1));
        f.push();
        // No inner `x`: assignment reaches the outer binding...
        assert!(f.set("x", Value::Int(5)));
        f.pop();
        assert_eq!(f.get("x"), Some(Value::Int(5)));
        // ...but once an inner scope shadows, the outer one is untouchable.
        f.push();
        f.define("x", Value::Int(9));
        assert!(f.set("x", Value::Int(7)));
        assert_eq!(f.get("x"), Some(Value::Int(7)));
        f.pop();
        assert_eq!(f.get("x"), Some(Value::Int(5)));
    }

    #[test]
    fn frame_set_fails_on_unknown_names() {
        let mut f = Frame::new();
        assert!(!f.set("nope", Value::Int(0)));
    }

    #[test]
    fn frame_redefine_in_same_scope_overwrites() {
        let mut f = Frame::new();
        f.define("x", Value::Int(1));
        f.define("x", Value::Double(2.0));
        assert_eq!(f.get("x"), Some(Value::Double(2.0)));
        f.pop();
        assert_eq!(f.get("x"), None);
    }

    #[test]
    fn shadowing_program_reads_each_binding_in_its_scope() {
        // Executable version of the Frame tests: inner declaration shadows,
        // assignment inside targets the inner binding, the outer value
        // survives.
        assert_eq!(
            run_value("int main() { int x = 1; { int x = 10; x += 5; } { x += 2; } return x; }"),
            Value::Int(3)
        );
    }

    #[test]
    fn decl_initialiser_sees_the_outer_binding() {
        assert_eq!(
            run_value("int main() { int x = 3; { int x = x * 7; return x; } }"),
            Value::Int(21)
        );
    }

    #[test]
    fn for_induction_variable_is_loop_scoped() {
        // `i` declared by the loop header vanishes after the loop; a
        // same-named outer variable is untouched.
        assert_eq!(
            run_value("int main() { int i = 100; for (int i = 0; i < 3; i++) { } return i; }"),
            Value::Int(100)
        );
    }

    #[test]
    fn non_declaring_for_mutates_the_enclosing_variable() {
        assert_eq!(
            run_value("int main() { int i = 0; for (i = 0; i < 7; i++) { } return i; }"),
            Value::Int(7)
        );
    }

    #[test]
    fn loop_body_declarations_reset_each_iteration() {
        assert_eq!(
            run_value(
                "int main() { int s = 0; for (int i = 0; i < 4; i++) { int t = 1; t += i; s += t; } return s; }"
            ),
            Value::Int(10)
        );
    }
}
