//! Built-in functions available to MiniC++ programs.
//!
//! Three groups:
//!
//! * **math** — the C math library surface the benchmarks use, in both
//!   double (`sqrt`, `exp`, …) and single precision (`sqrtf`, `expf`, …).
//!   Precision is real: the `f`-variants compute in `f32`, so the paper's
//!   "Employ SP Math Fns" transform changes results, not just labels.
//! * **memory** — `alloc_double/float/int` and `fill_random`, the minimal
//!   allocation story MiniC++ needs for self-contained runnable benchmarks
//!   (standing in for `new[]`/`std::vector` in the paper's C++ sources).
//! * **instrumentation** — `__psa_timer_start/stop(id)`, inserted by the
//!   hotspot-detection meta-program exactly like Artisan inserts loop
//!   timers.

use psa_minicpp::ast::Scalar;

/// A recognised intrinsic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intrinsic {
    Math(MathFn),
    /// `alloc_double(n)` etc. — allocate `n` zeroed elements.
    Alloc(Scalar),
    /// `fill_random(ptr, n, seed)` — deterministic uniform fill.
    FillRandom,
    /// `__psa_timer_start(id)`.
    TimerStart,
    /// `__psa_timer_stop(id)`.
    TimerStop,
    /// `sink(x)` — observe a value so benchmark results are "used".
    Sink,
}

/// Math functions; `single` selects the `f32` variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MathFn {
    pub op: MathOp,
    pub single: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MathOp {
    Sqrt,
    Rsqrt,
    Exp,
    Log,
    Pow,
    Sin,
    Cos,
    Tanh,
    Erf,
    Fabs,
    Fmin,
    Fmax,
    Floor,
    Ceil,
}

impl MathOp {
    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            MathOp::Pow | MathOp::Fmin | MathOp::Fmax => 2,
            _ => 1,
        }
    }

    /// Whether the op is "transcendental" for cost purposes (sqrt is costed
    /// separately; cheap ops cost one FP op).
    pub fn cost_class(self) -> MathCost {
        match self {
            MathOp::Sqrt | MathOp::Rsqrt => MathCost::Sqrt,
            MathOp::Exp
            | MathOp::Log
            | MathOp::Pow
            | MathOp::Sin
            | MathOp::Cos
            | MathOp::Tanh
            | MathOp::Erf => MathCost::Transcendental,
            MathOp::Fabs | MathOp::Fmin | MathOp::Fmax | MathOp::Floor | MathOp::Ceil => {
                MathCost::Cheap
            }
        }
    }

    /// Evaluate in double precision.
    pub fn eval_f64(self, a: f64, b: f64) -> f64 {
        match self {
            MathOp::Sqrt => a.sqrt(),
            MathOp::Rsqrt => 1.0 / a.sqrt(),
            MathOp::Exp => a.exp(),
            MathOp::Log => a.ln(),
            MathOp::Pow => pow_f64(a, b),
            MathOp::Sin => a.sin(),
            MathOp::Cos => a.cos(),
            MathOp::Tanh => a.tanh(),
            MathOp::Erf => erf_approx(a),
            MathOp::Fabs => a.abs(),
            MathOp::Fmin => a.min(b),
            MathOp::Fmax => a.max(b),
            MathOp::Floor => a.floor(),
            MathOp::Ceil => a.ceil(),
        }
    }

    /// Evaluate in single precision.
    pub fn eval_f32(self, a: f32, b: f32) -> f32 {
        match self {
            MathOp::Sqrt => a.sqrt(),
            MathOp::Rsqrt => 1.0 / a.sqrt(),
            MathOp::Exp => a.exp(),
            MathOp::Log => a.ln(),
            MathOp::Pow => pow_f32(a, b),
            MathOp::Sin => a.sin(),
            MathOp::Cos => a.cos(),
            MathOp::Tanh => a.tanh(),
            MathOp::Erf => erf_approx(f64::from(a)) as f32,
            MathOp::Fabs => a.abs(),
            MathOp::Fmin => a.min(b),
            MathOp::Fmax => a.max(b),
            MathOp::Floor => a.floor(),
            MathOp::Ceil => a.ceil(),
        }
    }
}

/// Cost class of a math intrinsic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MathCost {
    Cheap,
    Sqrt,
    Transcendental,
}

/// Abramowitz & Stegun 7.1.26 rational approximation of erf, max abs error
/// 1.5e-7 — plenty for AdPredictor's probit updates.
/// `pow` with a fast path for small integral exponents: generated kernels
/// overwhelmingly raise to squares and small Bernstein powers, where
/// `powi`'s repeated squaring is an order of magnitude cheaper than the
/// general `powf`. Both engines share this routine, so they stay
/// bit-identical to each other.
#[inline]
pub fn pow_f64(a: f64, b: f64) -> f64 {
    if b.trunc() == b && (-32.0..=32.0).contains(&b) {
        a.powi(b as i32)
    } else {
        a.powf(b)
    }
}

/// Single-precision counterpart of [`pow_f64`].
#[inline]
pub fn pow_f32(a: f32, b: f32) -> f32 {
    if b.trunc() == b && (-32.0..=32.0).contains(&b) {
        a.powi(b as i32)
    } else {
        a.powf(b)
    }
}

pub fn erf_approx(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Resolve an intrinsic by call name. Names shadowable by user functions are
/// resolved *after* module lookup fails, mirroring C linkage.
pub fn lookup(name: &str) -> Option<Intrinsic> {
    let math = |op, single| Some(Intrinsic::Math(MathFn { op, single }));
    match name {
        "sqrt" => math(MathOp::Sqrt, false),
        "sqrtf" => math(MathOp::Sqrt, true),
        "rsqrt" => math(MathOp::Rsqrt, false),
        "rsqrtf" => math(MathOp::Rsqrt, true),
        "exp" => math(MathOp::Exp, false),
        "expf" => math(MathOp::Exp, true),
        "log" => math(MathOp::Log, false),
        "logf" => math(MathOp::Log, true),
        "pow" => math(MathOp::Pow, false),
        "powf" => math(MathOp::Pow, true),
        "sin" => math(MathOp::Sin, false),
        "sinf" => math(MathOp::Sin, true),
        "cos" => math(MathOp::Cos, false),
        "cosf" => math(MathOp::Cos, true),
        "tanh" => math(MathOp::Tanh, false),
        "tanhf" => math(MathOp::Tanh, true),
        "erf" => math(MathOp::Erf, false),
        "erff" => math(MathOp::Erf, true),
        "fabs" => math(MathOp::Fabs, false),
        "fabsf" => math(MathOp::Fabs, true),
        "fmin" => math(MathOp::Fmin, false),
        "fminf" => math(MathOp::Fmin, true),
        "fmax" => math(MathOp::Fmax, false),
        "fmaxf" => math(MathOp::Fmax, true),
        "floor" => math(MathOp::Floor, false),
        "ceil" => math(MathOp::Ceil, false),
        "alloc_double" => Some(Intrinsic::Alloc(Scalar::Double)),
        "alloc_float" => Some(Intrinsic::Alloc(Scalar::Float)),
        "alloc_int" => Some(Intrinsic::Alloc(Scalar::Int)),
        "fill_random" => Some(Intrinsic::FillRandom),
        "__psa_timer_start" => Some(Intrinsic::TimerStart),
        "__psa_timer_stop" => Some(Intrinsic::TimerStop),
        "sink" => Some(Intrinsic::Sink),
        _ => None,
    }
}

/// The map from a double-precision math name to its single-precision
/// counterpart, used by the "Employ SP Math Fns" transform.
pub fn sp_variant(name: &str) -> Option<&'static str> {
    Some(match name {
        "sqrt" => "sqrtf",
        "rsqrt" => "rsqrtf",
        "exp" => "expf",
        "log" => "logf",
        "pow" => "powf",
        "sin" => "sinf",
        "cos" => "cosf",
        "tanh" => "tanhf",
        "erf" => "erff",
        "fabs" => "fabsf",
        "fmin" => "fminf",
        "fmax" => "fmaxf",
        _ => return None,
    })
}

/// SplitMix64: the deterministic generator behind `fill_random`.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform double in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_resolves_precision_variants() {
        let Some(Intrinsic::Math(f)) = lookup("sqrtf") else {
            panic!()
        };
        assert!(f.single);
        assert_eq!(f.op, MathOp::Sqrt);
        let Some(Intrinsic::Math(f)) = lookup("exp") else {
            panic!()
        };
        assert!(!f.single);
        assert!(lookup("not_a_fn").is_none());
    }

    #[test]
    fn sp_variant_is_total_over_math_names() {
        assert_eq!(sp_variant("sqrt"), Some("sqrtf"));
        assert_eq!(sp_variant("erf"), Some("erff"));
        assert_eq!(sp_variant("alloc_double"), None);
        // Every double-named math op maps to a name lookup() recognises.
        for name in [
            "sqrt", "exp", "log", "pow", "sin", "cos", "tanh", "erf", "fabs", "fmin", "fmax",
        ] {
            let sp = sp_variant(name).unwrap();
            assert!(lookup(sp).is_some(), "{sp} must be a known intrinsic");
        }
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf_approx(0.0)).abs() < 1e-7);
        assert!((erf_approx(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf_approx(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf_approx(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn splitmix_is_deterministic_and_uniform_ish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<f64> = (0..1000).map(|_| a.next_f64()).collect();
        let ys: Vec<f64> = (0..1000).map(|_| b.next_f64()).collect();
        assert_eq!(xs, ys);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} suspicious");
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn single_precision_math_really_is_f32() {
        let d = MathOp::Exp.eval_f64(1.0, 0.0);
        let s = MathOp::Exp.eval_f32(1.0, 0.0);
        assert_ne!(d, f64::from(s));
        assert!((d - f64::from(s)).abs() < 1e-6);
    }

    #[test]
    fn arity() {
        assert_eq!(MathOp::Pow.arity(), 2);
        assert_eq!(MathOp::Sqrt.arity(), 1);
        assert_eq!(MathOp::Fmin.arity(), 2);
    }
}
