//! Operator and intrinsic semantics shared by both execution engines.
//!
//! The tree-walking evaluator ([`crate::eval::Interpreter`]) and the bytecode
//! VM ([`crate::vm::Vm`]) must agree bit-for-bit on every observable: result
//! values, the virtual clock, FLOP/int-op/load/store counters, and error
//! variants (including spans and message text). Centralising the value-level
//! semantics here makes that agreement structural instead of coincidental —
//! there is exactly one implementation of coercion, binary/unary operators,
//! C-style assignment conversion, and the intrinsics.
//!
//! Charging order is part of the contract: e.g. `!` type-checks before it
//! charges, while a condition test charges before it type-checks. Don't
//! "fix" these — the differential tests pin them.

use crate::error::{RuntimeError, RuntimeResult};
use crate::intrinsics::{Intrinsic, MathCost, SplitMix64};
use crate::memory::Memory;
use crate::profile::{CostModel, Profile};
use crate::value::{promote, Pointer, Promoted, Value};
use psa_minicpp::ast::{BinOp, Scalar, Type, UnOp};
use psa_minicpp::Span;

/// The cost-model fields the operator hot paths need, copied out once so the
/// per-op path never touches (let alone clones) the full [`CostModel`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct BinCosts {
    pub int_op: u64,
    pub int_mul: u64,
    pub int_div: u64,
    pub fp_op: u64,
    pub fp_div: u64,
}

impl BinCosts {
    pub fn of(cm: &CostModel) -> Self {
        BinCosts {
            int_op: cm.int_op,
            int_mul: cm.int_mul,
            int_div: cm.int_div,
            fp_op: cm.fp_op,
            fp_div: cm.fp_div,
        }
    }
}

/// Advance the virtual clock, failing once the budget is exhausted.
///
/// This is the *only* way cycles reach `total_cycles` — except for the
/// VM's `DeferredFor`, which batches charges in a local accumulator and
/// reconciles them here-equivalently at loop exit. Deferral is sound
/// because charging is order-insensitive between observation points: the
/// clock is only read at frame boundaries, loop exits, and error sites,
/// and `DeferredFor` switches to immediate (precise-mode) charging as
/// soon as a worst-case iteration could cross `max_cycles`, so the exact
/// cycle at which exhaustion fires is preserved.
#[inline(always)]
pub(crate) fn charge(profile: &mut Profile, max_cycles: u64, cycles: u64) -> RuntimeResult<()> {
    profile.total_cycles += cycles;
    if profile.total_cycles > max_cycles {
        // Cold path: budget exhaustion is a forensic-dump trigger.
        if psa_obs::recorder::enabled() {
            psa_obs::recorder::record_budget_exhausted(&format!("vm cycle budget {max_cycles}"));
        }
        return Err(RuntimeError::CycleBudgetExhausted { limit: max_cycles });
    }
    Ok(())
}

/// Coerce a value to a declared type (parameter binding, casts, scalar
/// declaration initialisers).
#[inline(always)]
pub(crate) fn coerce(value: Value, ty: Type, span: Span) -> RuntimeResult<Value> {
    if ty.is_pointer() {
        return match value {
            Value::Ptr(_) => Ok(value),
            other => Err(RuntimeError::Type {
                message: format!("expected pointer, got {}", other.type_name()),
                span,
            }),
        };
    }
    let err = || RuntimeError::Type {
        message: format!("cannot coerce {} to {}", value.type_name(), ty),
        span,
    };
    match ty.scalar {
        Scalar::Int => Ok(Value::Int(value.as_i64().ok_or_else(err)?)),
        Scalar::Double => Ok(Value::Double(value.as_f64().ok_or_else(err)?)),
        Scalar::Float => Ok(Value::Float(value.as_f64().ok_or_else(err)? as f32)),
        Scalar::Bool => Ok(Value::Bool(value.truthy().ok_or_else(err)?)),
        Scalar::Void => Ok(Value::Unit),
    }
}

/// C assignment conversion: the assigned value adopts the variable's current
/// runtime type. `current` of `None`, `Ptr` or `Unit` leaves `new` unchanged.
#[inline(always)]
pub(crate) fn convert_assign(
    current: Option<Value>,
    new: Value,
    span: Span,
) -> RuntimeResult<Value> {
    Ok(match current {
        Some(Value::Int(_)) => Value::Int(new.as_i64().ok_or_else(|| RuntimeError::Type {
            message: "cannot convert to int".into(),
            span,
        })?),
        Some(Value::Float(_)) => Value::Float(new.as_f64().ok_or_else(|| RuntimeError::Type {
            message: "cannot convert to float".into(),
            span,
        })? as f32),
        Some(Value::Double(_)) => {
            Value::Double(new.as_f64().ok_or_else(|| RuntimeError::Type {
                message: "cannot convert to double".into(),
                span,
            })?)
        }
        Some(Value::Bool(_)) => Value::Bool(new.truthy().ok_or_else(|| RuntimeError::Type {
            message: "cannot convert to bool".into(),
            span,
        })?),
        _ => new,
    })
}

/// Unary operator semantics. `Neg` type-dispatches before charging; `Not`
/// type-checks, then charges an int op *without* counting it as one.
#[inline(always)]
pub(crate) fn apply_unary(
    profile: &mut Profile,
    max_cycles: u64,
    costs: BinCosts,
    op: UnOp,
    v: Value,
    span: Span,
) -> RuntimeResult<Value> {
    match op {
        UnOp::Neg => match v {
            Value::Int(x) => {
                charge(profile, max_cycles, costs.int_op)?;
                profile.int_ops += 1;
                Ok(Value::Int(-x))
            }
            Value::Float(x) => {
                charge(profile, max_cycles, costs.fp_op)?;
                profile.flops += 1;
                Ok(Value::Float(-x))
            }
            Value::Double(x) => {
                charge(profile, max_cycles, costs.fp_op)?;
                profile.flops += 1;
                Ok(Value::Double(-x))
            }
            other => Err(RuntimeError::Type {
                message: format!("cannot negate {}", other.type_name()),
                span,
            }),
        },
        UnOp::Not => {
            let b = v.truthy().ok_or_else(|| RuntimeError::Type {
                message: format!("cannot apply `!` to {}", v.type_name()),
                span,
            })?;
            charge(profile, max_cycles, costs.int_op)?;
            Ok(Value::Bool(!b))
        }
    }
}

/// Binary operator semantics (everything except `&&`/`||`, which both
/// engines lower to short-circuiting control flow).
#[inline(always)]
pub(crate) fn apply_binary(
    profile: &mut Profile,
    max_cycles: u64,
    costs: BinCosts,
    op: BinOp,
    l: Value,
    r: Value,
    span: Span,
) -> RuntimeResult<Value> {
    // Typed fast path: double arithmetic, by far the hottest case. Exactly
    // the generic route's charge + FLOP accounting (via `apply_fp`, which
    // has no error path for these four ops), minus the promote dispatch.
    if let (Value::Double(a), Value::Double(b)) = (l, r) {
        let (cost, fast) = match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => (costs.fp_op, true),
            BinOp::Div => (costs.fp_div, true),
            _ => (0, false),
        };
        if fast {
            charge(profile, max_cycles, cost)?;
            profile.flops += 1;
            let r = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                _ => unreachable!(),
            };
            return Ok(Value::Double(r));
        }
    }
    // Pointer arithmetic: ptr ± int.
    if let (Value::Ptr(p), Some(off)) = (&l, r.as_i64()) {
        if matches!(op, BinOp::Add | BinOp::Sub) && !r.is_floating() {
            charge(profile, max_cycles, costs.int_op)?;
            profile.int_ops += 1;
            let delta = if op == BinOp::Add { off } else { -off };
            return Ok(Value::Ptr(Pointer {
                buffer: p.buffer,
                offset: p.offset + delta,
            }));
        }
    }
    let pair = promote(&l, &r).ok_or_else(|| RuntimeError::Type {
        message: format!(
            "cannot apply `{}` to {} and {}",
            op.symbol(),
            l.type_name(),
            r.type_name()
        ),
        span,
    })?;
    match pair {
        Promoted::Int(a, b) => {
            let cost = match op {
                BinOp::Mul => costs.int_mul,
                BinOp::Div | BinOp::Rem => costs.int_div,
                _ => costs.int_op,
            };
            charge(profile, max_cycles, cost)?;
            profile.int_ops += 1;
            Ok(match op {
                BinOp::Add => Value::Int(a.wrapping_add(b)),
                BinOp::Sub => Value::Int(a.wrapping_sub(b)),
                BinOp::Mul => Value::Int(a.wrapping_mul(b)),
                BinOp::Div => {
                    if b == 0 {
                        return Err(RuntimeError::DivideByZero { span });
                    }
                    Value::Int(a.wrapping_div(b))
                }
                BinOp::Rem => {
                    if b == 0 {
                        return Err(RuntimeError::DivideByZero { span });
                    }
                    Value::Int(a.wrapping_rem(b))
                }
                BinOp::Lt => Value::Bool(a < b),
                BinOp::Le => Value::Bool(a <= b),
                BinOp::Gt => Value::Bool(a > b),
                BinOp::Ge => Value::Bool(a >= b),
                BinOp::Eq => Value::Bool(a == b),
                BinOp::Ne => Value::Bool(a != b),
                BinOp::And | BinOp::Or => unreachable!("short-circuited"),
            })
        }
        Promoted::Float(a, b) => apply_fp(
            profile,
            max_cycles,
            costs,
            op,
            f64::from(a),
            f64::from(b),
            true,
            span,
        ),
        Promoted::Double(a, b) => apply_fp(profile, max_cycles, costs, op, a, b, false, span),
    }
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn apply_fp(
    profile: &mut Profile,
    max_cycles: u64,
    costs: BinCosts,
    op: BinOp,
    a: f64,
    b: f64,
    single: bool,
    span: Span,
) -> RuntimeResult<Value> {
    let (cost, is_flop) = match op {
        BinOp::Div => (costs.fp_div, true),
        BinOp::Add | BinOp::Sub | BinOp::Mul => (costs.fp_op, true),
        _ => (costs.fp_op, false),
    };
    charge(profile, max_cycles, cost)?;
    if is_flop {
        profile.flops += 1;
    }
    if op.is_comparison() {
        let res = match op {
            BinOp::Lt => a < b,
            BinOp::Le => a <= b,
            BinOp::Gt => a > b,
            BinOp::Ge => a >= b,
            BinOp::Eq => a == b,
            BinOp::Ne => a != b,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(res));
    }
    let value = if single {
        let (a, b) = (a as f32, b as f32);
        let r = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Rem => a % b,
            _ => {
                return Err(RuntimeError::Type {
                    message: format!("`{}` not defined on floats", op.symbol()),
                    span,
                })
            }
        };
        Value::Float(r)
    } else {
        let r = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Rem => a % b,
            _ => {
                return Err(RuntimeError::Type {
                    message: format!("`{}` not defined on doubles", op.symbol()),
                    span,
                })
            }
        };
        Value::Double(r)
    };
    Ok(value)
}

/// The mutable interpreter state an intrinsic call touches, borrowed
/// field-by-field so either engine can assemble one without conflicting
/// with its own borrows.
pub(crate) struct IntrinsicCtx<'a> {
    pub profile: &'a mut Profile,
    pub memory: &'a mut Memory,
    pub cost_model: &'a CostModel,
    pub max_cycles: u64,
    pub timer_stack: &'a mut Vec<(i64, u64)>,
    pub heap_count: &'a mut u32,
    /// Whether execution is currently inside the watched kernel.
    pub watch: bool,
}

/// Execute one intrinsic call. `name` is only used in error messages.
pub(crate) fn exec_intrinsic(
    ctx: &mut IntrinsicCtx<'_>,
    name: &str,
    intr: Intrinsic,
    args: &[Value],
    span: Span,
) -> RuntimeResult<Value> {
    let bad = |msg: String| RuntimeError::Intrinsic { message: msg, span };
    match intr {
        Intrinsic::Math(f) => {
            let arity = f.op.arity();
            if args.len() != arity {
                return Err(bad(format!("`{name}` expects {arity} argument(s)")));
            }
            let a = args[0]
                .as_f64()
                .ok_or_else(|| bad(format!("`{name}` needs a numeric argument")))?;
            let b = if arity == 2 {
                args[1]
                    .as_f64()
                    .ok_or_else(|| bad(format!("`{name}` needs numeric arguments")))?
            } else {
                0.0
            };
            let cm = ctx.cost_model;
            let (cycles, flops) = match f.op.cost_class() {
                MathCost::Cheap => (cm.fp_op, 1),
                MathCost::Sqrt => (cm.sqrt, cm.sqrt_flops),
                MathCost::Transcendental => (cm.transcendental, cm.transcendental_flops),
            };
            charge(ctx.profile, ctx.max_cycles, cycles)?;
            ctx.profile.flops += flops;
            Ok(if f.single {
                Value::Float(f.op.eval_f32(a as f32, b as f32))
            } else {
                Value::Double(f.op.eval_f64(a, b))
            })
        }
        Intrinsic::Alloc(scalar) => {
            let n = args
                .first()
                .and_then(Value::as_i64)
                .ok_or_else(|| bad("alloc needs an integer length".into()))?;
            if n < 0 {
                return Err(bad(format!("negative allocation length {n}")));
            }
            *ctx.heap_count += 1;
            let label = format!("heap#{}", ctx.heap_count);
            let id = ctx.memory.alloc(scalar, n as usize, label);
            Ok(Value::Ptr(Pointer {
                buffer: id,
                offset: 0,
            }))
        }
        Intrinsic::FillRandom => {
            let [p, n, seed] = args else {
                return Err(bad("fill_random(ptr, n, seed)".into()));
            };
            let ptr = p
                .as_ptr()
                .ok_or_else(|| bad("fill_random needs a pointer".into()))?;
            let n = n
                .as_i64()
                .ok_or_else(|| bad("fill_random needs a length".into()))?;
            let seed = seed
                .as_i64()
                .ok_or_else(|| bad("fill_random needs a seed".into()))?;
            let mut rng = SplitMix64::new(seed as u64);
            let watch = ctx.watch;
            let elem_bytes = ctx.memory.elem_bytes(ptr.buffer);
            let store_cost = ctx.cost_model.store;
            for i in 0..n {
                let v = match ctx.memory.buffer(ptr.buffer).data.scalar() {
                    Scalar::Int => Value::Int((rng.next_u64() >> 33) as i64),
                    Scalar::Bool => Value::Bool(rng.next_u64() & 1 == 1),
                    Scalar::Float => Value::Float(rng.next_f64() as f32),
                    _ => Value::Double(rng.next_f64()),
                };
                ctx.memory
                    .store(ptr.buffer, ptr.offset + i, v, span, watch)?;
                charge(ctx.profile, ctx.max_cycles, store_cost)?;
                ctx.profile.stores += 1;
                ctx.profile.bytes_stored += elem_bytes;
            }
            Ok(Value::Unit)
        }
        Intrinsic::TimerStart => {
            let id = args
                .first()
                .and_then(Value::as_i64)
                .ok_or_else(|| bad("__psa_timer_start(id)".into()))?;
            ctx.timer_stack.push((id, ctx.profile.total_cycles));
            Ok(Value::Unit)
        }
        Intrinsic::TimerStop => {
            let id = args
                .first()
                .and_then(Value::as_i64)
                .ok_or_else(|| bad("__psa_timer_stop(id)".into()))?;
            let pos = ctx
                .timer_stack
                .iter()
                .rposition(|(tid, _)| *tid == id)
                .ok_or_else(|| bad(format!("timer {id} stopped without start")))?;
            let (_, start) = ctx.timer_stack.remove(pos);
            let t = ctx.profile.timers.entry(id).or_default();
            t.starts += 1;
            t.cycles += ctx.profile.total_cycles - start;
            Ok(Value::Unit)
        }
        Intrinsic::Sink => Ok(Value::Unit),
    }
}
