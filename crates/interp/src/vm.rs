//! The bytecode VM: the fast execution engine.
//!
//! Executes a [`Program`] produced by [`crate::compile`]. The inner loop is
//! a `match` over flat instructions — variable access is a vector index,
//! call targets are pre-bound, cycle costs are baked into the instructions —
//! but every observable (results, virtual clock, counters, per-loop stats,
//! memory provenance, kernel tracing, errors) is bit-identical to the
//! tree-walking [`crate::Interpreter`]. The differential tests in
//! `tests/engine_differential.rs` and the workspace proptests enforce that.
//!
//! Frames share one `locals` vector (`base`-offset per call) and one operand
//! stack. Loop bookkeeping lives on an explicit context stack so `return`
//! can record per-loop stats for every loop it unwinds, innermost first,
//! exactly as nested `exec_for` returns do in the tree-walker.

use crate::compile::{CallTarget, Insn, Program};
use crate::error::{RuntimeError, RuntimeResult};
use crate::eval::RunConfig;
use crate::intrinsics::{self, Intrinsic};
use crate::memory::Memory;
use crate::ops::{self, BinCosts, IntrinsicCtx};
use crate::profile::Profile;
use crate::value::{Pointer, Value};
use crate::vmprof::{FrameKey, VmProfile, VmProfiler};
use psa_minicpp::ast::{BinOp, Module, NodeId};
use psa_minicpp::Span;
use std::sync::Arc;

/// Per-loop bookkeeping while the loop is running.
struct LoopCtx {
    id: NodeId,
    start_cycles: u64,
    iters: u64,
    /// The induction variable's value at the top of the current iteration;
    /// the step advances from here even if the body reassigned the
    /// variable (tree-walker semantics).
    cur_i: i64,
}

/// The VM. Same construction and observation API as [`crate::Interpreter`].
pub struct Vm {
    program: Arc<Program>,
    /// The memory arena, public so harnesses can set up and inspect data.
    pub memory: Memory,
    profile: Profile,
    config: RunConfig,
    bin_costs: BinCosts,
    globals: Vec<Option<Value>>,
    stack: Vec<Value>,
    locals: Vec<Value>,
    loop_ctxs: Vec<LoopCtx>,
    watch_depth: usize,
    call_depth: usize,
    timer_stack: Vec<(i64, u64)>,
    kernel_snapshot: Option<(u64, u64, u64, u64)>,
    heap_count: u32,
    /// Instructions dispatched and user calls made, for the metrics
    /// registry. Deliberately NOT part of [`Profile`]: profiles are
    /// compared bit-for-bit between engines and the tree-walker has no
    /// dispatch counter.
    dispatches: u64,
    calls: u64,
    /// Frame profiler; `None` (the default) costs nothing on the hot path.
    profiler: Option<Box<VmProfiler>>,
}

impl Vm {
    /// Compile `module` and set up a VM to run it under `config`.
    pub fn new(module: &Module, config: RunConfig) -> Self {
        let program = Arc::new(Program::compile(module, &config));
        Vm::with_program(program, config)
    }

    /// Reuse an already-compiled program (it must have been compiled with a
    /// config agreeing on `cost_model` and `watch_function`).
    pub fn with_program(program: Arc<Program>, config: RunConfig) -> Self {
        let bin_costs = BinCosts::of(&config.cost_model);
        let globals = vec![None; program.global_names.len()];
        Vm {
            program,
            memory: Memory::new(),
            profile: Profile::default(),
            config,
            bin_costs,
            globals,
            stack: Vec::new(),
            locals: Vec::new(),
            loop_ctxs: Vec::new(),
            watch_depth: 0,
            call_depth: 0,
            timer_stack: Vec::new(),
            kernel_snapshot: None,
            heap_count: 0,
            dispatches: 0,
            calls: 0,
            profiler: None,
        }
    }

    /// Attach a fresh frame profiler; subsequent runs attribute virtual
    /// cycles and wall time to `(function, loop)` frames.
    pub fn enable_profiling(&mut self) {
        self.profiler = Some(Box::new(VmProfiler::new()));
    }

    /// Detach the profiler and aggregate its report. `root` names the
    /// outermost frame (conventionally the module name).
    pub fn take_vm_profile(&mut self, root: &str) -> Option<VmProfile> {
        self.profiler.take().map(|p| p.finish(&self.program, root))
    }

    /// Instructions dispatched by this VM so far.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// User-function calls made by this VM so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// The accumulated profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Consume the VM, returning profile and memory.
    pub fn into_parts(self) -> (Profile, Memory) {
        (self.profile, self.memory)
    }

    /// Execute module globals then `main()`.
    pub fn run_main(&mut self) -> RuntimeResult<Value> {
        let (d0, c0) = (self.dispatches, self.calls);
        if let Some(p) = self.profiler.as_mut() {
            p.enter(FrameKey::Root, self.profile.total_cycles);
        }
        let result = self
            .init_globals()
            .and_then(|()| self.call_by_name("main", Vec::new(), Span::SYNTHETIC));
        if let Some(p) = self.profiler.as_mut() {
            // Unwinds every frame an error path abandoned, too.
            p.exit_to(0, self.profile.total_cycles);
        }
        psa_obs::counter_add("psa_vm_runs_total", &[], 1);
        psa_obs::counter_add("psa_vm_dispatches_total", &[], self.dispatches - d0);
        psa_obs::counter_add("psa_vm_calls_total", &[], self.calls - c0);
        result
    }

    /// Initialise module-level globals (idempotent).
    pub fn init_globals(&mut self) -> RuntimeResult<()> {
        if self.globals.iter().any(|g| g.is_some()) {
            return Ok(());
        }
        let program = Arc::clone(&self.program);
        let base = self.locals.len();
        let stack_len = self.stack.len();
        self.locals
            .resize(base + program.globals_init_locals, Value::Unit);
        let loop_base = self.loop_ctxs.len();
        let result = self.exec(&program, &program.globals_init, base, loop_base);
        self.locals.truncate(base);
        self.stack.truncate(stack_len);
        result.map(|_| ())
    }

    /// Call a function by name with pre-built argument values.
    pub fn call_by_name(
        &mut self,
        name: &str,
        args: Vec<Value>,
        span: Span,
    ) -> RuntimeResult<Value> {
        let program = Arc::clone(&self.program);
        if let Some(&fidx) = program.fn_by_name.get(name) {
            let argc = args.len();
            self.stack.extend(args);
            return self.call_user(&program, fidx, argc, span);
        }
        match intrinsics::lookup(name) {
            Some(intr) => self.call_intrinsic(name, intr, &args, span),
            None => Err(RuntimeError::Unbound {
                name: name.to_string(),
                span,
            }),
        }
    }

    fn charge(&mut self, cycles: u64) -> RuntimeResult<()> {
        ops::charge(&mut self.profile, self.config.max_cycles, cycles)
    }

    /// Call a user function whose `argc` arguments sit on top of the
    /// operand stack (they are consumed). Reading them in place avoids a
    /// per-call argument `Vec` — the dominant allocation in call-heavy
    /// programs. On error the arguments may be left behind; every enclosing
    /// frame truncates its operand region during unwinding, and errors
    /// abort the run, so this is unobservable.
    fn call_user(
        &mut self,
        program: &Program,
        fidx: u16,
        argc: usize,
        span: Span,
    ) -> RuntimeResult<Value> {
        let func = &program.funcs[fidx as usize];
        if self.call_depth >= self.config.max_call_depth {
            return Err(RuntimeError::StackOverflow {
                depth: self.config.max_call_depth,
            });
        }
        if argc != func.params.len() {
            return Err(RuntimeError::Type {
                message: format!(
                    "`{}` expects {} arguments, got {}",
                    func.name,
                    func.params.len(),
                    argc
                ),
                span,
            });
        }
        self.charge(self.config.cost_model.call)?;
        self.calls += 1;
        let prof_depth = self.profiler.as_ref().map(|p| p.depth());
        if let Some(p) = self.profiler.as_mut() {
            p.enter(FrameKey::Func(fidx), self.profile.total_cycles);
        }

        let watched = func.watched;
        if watched {
            if self.watch_depth == 0 {
                self.kernel_snapshot = Some((
                    self.profile.total_cycles,
                    self.profile.flops,
                    self.profile.bytes_loaded,
                    self.profile.bytes_stored,
                ));
            }
            self.watch_depth += 1;
            self.profile.kernel_calls += 1;
        }
        self.call_depth += 1;

        let base = self.locals.len();
        self.locals.resize(base + func.locals, Value::Unit);
        let at = self.stack.len() - argc;
        let mut ptr_args: Vec<(String, Pointer)> = Vec::new();
        for (i, param) in func.params.iter().enumerate() {
            // A coercion error propagates without unwinding the watch/call
            // bookkeeping, like the tree-walker's `?` inside `call_user`.
            let coerced = ops::coerce(self.stack[at + i], param.ty, param.span)?;
            if watched && self.watch_depth == 1 {
                if let Value::Ptr(p) = coerced {
                    ptr_args.push((param.name.clone(), p));
                }
            }
            self.locals[base + i] = coerced;
        }
        self.stack.truncate(at);
        if watched && self.watch_depth == 1 {
            self.profile.kernel_arg_ptrs.push(ptr_args);
        }

        let loop_base = self.loop_ctxs.len();
        let stack_len = self.stack.len();
        let result = self.exec(program, &func.code, base, loop_base);
        self.locals.truncate(base);
        if result.is_err() {
            self.stack.truncate(stack_len);
        }

        self.call_depth -= 1;
        if watched {
            self.watch_depth -= 1;
            if self.watch_depth == 0 {
                let (c0, f0, l0, s0) = self.kernel_snapshot.take().expect("snapshot set on entry");
                self.profile.kernel_cycles += self.profile.total_cycles - c0;
                self.profile.kernel_flops += self.profile.flops - f0;
                self.profile.kernel_bytes_loaded += self.profile.bytes_loaded - l0;
                self.profile.kernel_bytes_stored += self.profile.bytes_stored - s0;
            }
        }
        if let Some(depth) = prof_depth {
            if let Some(p) = self.profiler.as_mut() {
                // `exit_to` (not a single `exit`): an error mid-frame leaves
                // loop frames open; unwind them with the call frame.
                p.exit_to(depth, self.profile.total_cycles);
            }
        }
        result
    }

    fn call_intrinsic(
        &mut self,
        name: &str,
        intr: Intrinsic,
        args: &[Value],
        span: Span,
    ) -> RuntimeResult<Value> {
        let mut ctx = IntrinsicCtx {
            profile: &mut self.profile,
            memory: &mut self.memory,
            cost_model: &self.config.cost_model,
            max_cycles: self.config.max_cycles,
            timer_stack: &mut self.timer_stack,
            heap_count: &mut self.heap_count,
            watch: self.watch_depth > 0,
        };
        ops::exec_intrinsic(&mut ctx, name, intr, args, span)
    }

    /// Record stats for the innermost open loop and close it.
    fn record_loop_exit(&mut self) {
        let ctx = self.loop_ctxs.pop().expect("open loop context");
        let stats = self.profile.loop_stats.entry(ctx.id).or_default();
        stats.entries += 1;
        stats.iterations += ctx.iters;
        stats.cycles += self.profile.total_cycles - ctx.start_cycles;
        if let Some(p) = self.profiler.as_mut() {
            p.exit(self.profile.total_cycles);
        }
    }

    /// The interpreter loop: execute `code` with frame locals at `base`.
    /// Returns the chunk's return value (`Unit` when control falls off a
    /// `Ret { has_value: false }`).
    fn exec(
        &mut self,
        program: &Program,
        code: &[Insn],
        base: usize,
        loop_base: usize,
    ) -> RuntimeResult<Value> {
        let max_cycles = self.config.max_cycles;
        let costs = self.bin_costs;
        let mut pc = 0usize;
        while pc < code.len() {
            self.dispatches += 1;
            match &code[pc] {
                Insn::Const(v) => self.stack.push(*v),
                Insn::Dup => {
                    let v = *self.stack.last().expect("dup operand");
                    self.stack.push(v);
                }
                Insn::Swap => {
                    let n = self.stack.len();
                    self.stack.swap(n - 1, n - 2);
                }
                Insn::Pop => {
                    self.stack.pop();
                }
                Insn::LoadLocal(slot) => self.stack.push(self.locals[base + *slot as usize]),
                Insn::StoreLocal(slot) => {
                    let v = self.stack.pop().expect("store operand");
                    self.locals[base + *slot as usize] = v;
                }
                Insn::LoadGlobal { gidx, span } => {
                    let v = self.globals[*gidx as usize].ok_or_else(|| RuntimeError::Unbound {
                        name: program.global_names[*gidx as usize].to_string(),
                        span: *span,
                    })?;
                    self.stack.push(v);
                }
                Insn::CopyLocalToGlobal { slot, gidx } => {
                    self.globals[*gidx as usize] = Some(self.locals[base + *slot as usize]);
                }
                Insn::AssignLocal { slot, span } => {
                    let new = self.stack.pop().expect("assign operand");
                    let cur = self.locals[base + *slot as usize];
                    self.locals[base + *slot as usize] =
                        ops::convert_assign(Some(cur), new, *span)?;
                }
                Insn::AssignGlobal { gidx, span } => {
                    let new = self.stack.pop().expect("assign operand");
                    match self.globals[*gidx as usize] {
                        Some(cur) => {
                            self.globals[*gidx as usize] =
                                Some(ops::convert_assign(Some(cur), new, *span)?);
                        }
                        None => {
                            return Err(RuntimeError::Unbound {
                                name: program.global_names[*gidx as usize].to_string(),
                                span: *span,
                            })
                        }
                    }
                }
                Insn::Coerce { ty, span } => {
                    let v = self.stack.pop().expect("coerce operand");
                    self.stack.push(ops::coerce(v, *ty, *span)?);
                }
                Insn::Cast { ty, cost, span } => {
                    let v = self.stack.pop().expect("cast operand");
                    ops::charge(&mut self.profile, max_cycles, *cost)?;
                    self.stack.push(ops::coerce(v, *ty, *span)?);
                }
                Insn::Un { op, span } => {
                    let v = self.stack.pop().expect("unary operand");
                    let r = ops::apply_unary(&mut self.profile, max_cycles, costs, *op, v, *span)?;
                    self.stack.push(r);
                }
                Insn::Bin { op, span } => {
                    let r = self.stack.pop().expect("binary rhs");
                    let l = self.stack.pop().expect("binary lhs");
                    let v =
                        ops::apply_binary(&mut self.profile, max_cycles, costs, *op, l, r, *span)?;
                    self.stack.push(v);
                }
                Insn::BinRev { op, span } => {
                    let l = self.stack.pop().expect("binary lhs");
                    let r = self.stack.pop().expect("binary rhs");
                    let v =
                        ops::apply_binary(&mut self.profile, max_cycles, costs, *op, l, r, *span)?;
                    self.stack.push(v);
                }
                Insn::Jump(target) => {
                    pc = *target as usize;
                    continue;
                }
                Insn::JumpIfFalse { target, cost, span } => {
                    let v = self.stack.pop().expect("condition");
                    ops::charge(&mut self.profile, max_cycles, *cost)?;
                    let b = v.truthy().ok_or_else(|| RuntimeError::Type {
                        message: format!("condition is not boolean-testable ({})", v.type_name()),
                        span: *span,
                    })?;
                    if !b {
                        pc = *target as usize;
                        continue;
                    }
                }
                Insn::AndShort { target, cost, span } => {
                    let v = self.stack.pop().expect("condition");
                    ops::charge(&mut self.profile, max_cycles, *cost)?;
                    let b = v.truthy().ok_or_else(|| RuntimeError::Type {
                        message: format!("condition is not boolean-testable ({})", v.type_name()),
                        span: *span,
                    })?;
                    if !b {
                        self.stack.push(Value::Bool(false));
                        pc = *target as usize;
                        continue;
                    }
                }
                Insn::OrShort { target, cost, span } => {
                    let v = self.stack.pop().expect("condition");
                    ops::charge(&mut self.profile, max_cycles, *cost)?;
                    let b = v.truthy().ok_or_else(|| RuntimeError::Type {
                        message: format!("condition is not boolean-testable ({})", v.type_name()),
                        span: *span,
                    })?;
                    if b {
                        self.stack.push(Value::Bool(true));
                        pc = *target as usize;
                        continue;
                    }
                }
                Insn::ToBool { cost, span } => {
                    let v = self.stack.pop().expect("condition");
                    ops::charge(&mut self.profile, max_cycles, *cost)?;
                    let b = v.truthy().ok_or_else(|| RuntimeError::Type {
                        message: format!("condition is not boolean-testable ({})", v.type_name()),
                        span: *span,
                    })?;
                    self.stack.push(Value::Bool(b));
                }
                Insn::Index {
                    cost,
                    base_span,
                    index_span,
                    span,
                } => {
                    let idx_v = self.stack.pop().expect("index");
                    let base_v = self.stack.pop().expect("indexed base");
                    let ptr = base_v.as_ptr().ok_or_else(|| RuntimeError::Type {
                        message: "indexed value is not a pointer".into(),
                        span: *base_span,
                    })?;
                    let idx = idx_v.as_i64().ok_or_else(|| RuntimeError::Type {
                        message: "index is not integral".into(),
                        span: *index_span,
                    })?;
                    ops::charge(&mut self.profile, max_cycles, *cost)?;
                    self.profile.int_ops += 1;
                    self.profile.loads += 1;
                    self.profile.bytes_loaded += self.memory.elem_bytes(ptr.buffer);
                    let watch = self.watch_depth > 0;
                    let v = self
                        .memory
                        .load(ptr.buffer, ptr.offset + idx, *span, watch)?;
                    self.stack.push(v);
                }
                Insn::IndexAddr {
                    cost,
                    base_span,
                    index_span,
                } => {
                    let idx_v = self.stack.pop().expect("index");
                    let base_v = self.stack.pop().expect("indexed base");
                    let ptr = base_v.as_ptr().ok_or_else(|| RuntimeError::Type {
                        message: "indexed value is not a pointer".into(),
                        span: *base_span,
                    })?;
                    let idx = idx_v.as_i64().ok_or_else(|| RuntimeError::Type {
                        message: "index is not integral".into(),
                        span: *index_span,
                    })?;
                    ops::charge(&mut self.profile, max_cycles, *cost)?;
                    self.profile.int_ops += 1;
                    self.stack.push(Value::Ptr(Pointer {
                        buffer: ptr.buffer,
                        offset: ptr.offset + idx,
                    }));
                }
                Insn::LoadElem { cost, span } => {
                    let p = self
                        .stack
                        .pop()
                        .and_then(|v| v.as_ptr())
                        .expect("element address");
                    let watch = self.watch_depth > 0;
                    // Load first, charge after — tree-walker order for the
                    // compound-assignment read.
                    let old = self.memory.load(p.buffer, p.offset, *span, watch)?;
                    ops::charge(&mut self.profile, max_cycles, *cost)?;
                    self.profile.loads += 1;
                    self.profile.bytes_loaded += self.memory.elem_bytes(p.buffer);
                    self.stack.push(old);
                }
                Insn::StoreElem { cost, span } => {
                    let v = self.stack.pop().expect("store value");
                    let p = self
                        .stack
                        .pop()
                        .and_then(|v| v.as_ptr())
                        .expect("element address");
                    let watch = self.watch_depth > 0;
                    self.memory.store(p.buffer, p.offset, v, *span, watch)?;
                    ops::charge(&mut self.profile, max_cycles, *cost)?;
                    self.profile.stores += 1;
                    self.profile.bytes_stored += self.memory.elem_bytes(p.buffer);
                }
                Insn::AllocArray { scalar, name, span } => {
                    let len_v = self.stack.pop().expect("array length");
                    let len =
                        len_v
                            .as_i64()
                            .filter(|&n| n >= 0)
                            .ok_or_else(|| RuntimeError::Type {
                                message: format!(
                                    "array length of `{name}` must be a non-negative int"
                                ),
                                span: *span,
                            })?;
                    let id = self.memory.alloc(*scalar, len as usize, name.to_string());
                    self.stack.push(Value::Ptr(Pointer {
                        buffer: id,
                        offset: 0,
                    }));
                }
                Insn::Call(site) => {
                    let site = &program.call_sites[*site as usize];
                    let v = match &site.target {
                        CallTarget::User(fidx) => {
                            self.call_user(program, *fidx, site.argc, site.span)?
                        }
                        CallTarget::Intrinsic(intr) => {
                            // Arguments are read in place off the operand
                            // stack; the ctx borrows disjoint fields so the
                            // slice stays valid.
                            let at = self.stack.len() - site.argc;
                            let mut ctx = IntrinsicCtx {
                                profile: &mut self.profile,
                                memory: &mut self.memory,
                                cost_model: &self.config.cost_model,
                                max_cycles,
                                timer_stack: &mut self.timer_stack,
                                heap_count: &mut self.heap_count,
                                watch: self.watch_depth > 0,
                            };
                            let v = ops::exec_intrinsic(
                                &mut ctx,
                                &site.name,
                                *intr,
                                &self.stack[at..],
                                site.span,
                            )?;
                            self.stack.truncate(at);
                            v
                        }
                        CallTarget::Unknown => {
                            return Err(RuntimeError::Unbound {
                                name: site.name.to_string(),
                                span: site.span,
                            })
                        }
                    };
                    self.stack.push(v);
                }
                Insn::MathCall {
                    f,
                    cycles,
                    flops,
                    name,
                    span,
                } => {
                    // Same check order as `ops::exec_intrinsic`: first
                    // argument, second argument, then charge.
                    let two = f.op.arity() == 2;
                    let b_v = if two { self.stack.pop() } else { None };
                    let a_v = self.stack.pop().expect("math argument");
                    let a = a_v.as_f64().ok_or_else(|| RuntimeError::Intrinsic {
                        message: format!("`{name}` needs a numeric argument"),
                        span: *span,
                    })?;
                    let b = match b_v {
                        Some(v) => v.as_f64().ok_or_else(|| RuntimeError::Intrinsic {
                            message: format!("`{name}` needs numeric arguments"),
                            span: *span,
                        })?,
                        None => 0.0,
                    };
                    ops::charge(&mut self.profile, max_cycles, *cycles)?;
                    self.profile.flops += *flops;
                    self.stack.push(if f.single {
                        Value::Float(f.op.eval_f32(a as f32, b as f32))
                    } else {
                        Value::Double(f.op.eval_f64(a, b))
                    });
                }
                Insn::Ret { has_value } => {
                    let v = if *has_value {
                        self.stack.pop().expect("return value")
                    } else {
                        Value::Unit
                    };
                    while self.loop_ctxs.len() > loop_base {
                        self.record_loop_exit();
                    }
                    return Ok(v);
                }
                Insn::LoopEnter { id } => {
                    self.loop_ctxs.push(LoopCtx {
                        id: *id,
                        start_cycles: self.profile.total_cycles,
                        iters: 0,
                        cur_i: 0,
                    });
                    if let Some(p) = self.profiler.as_mut() {
                        p.enter(FrameKey::Loop(*id), self.profile.total_cycles);
                    }
                }
                Insn::LoopExit => self.record_loop_exit(),
                Insn::ForInit {
                    slot,
                    bound,
                    name,
                    span,
                } => {
                    let v = self.stack.pop().expect("loop init");
                    let i = v.as_i64().ok_or_else(|| RuntimeError::Type {
                        message: format!("loop init for `{name}` must be integral"),
                        span: *span,
                    })?;
                    if !*bound {
                        return Err(RuntimeError::Unbound {
                            name: name.to_string(),
                            span: *span,
                        });
                    }
                    self.locals[base + *slot as usize] = Value::Int(i);
                }
                Insn::ForTest {
                    slot,
                    cond_op,
                    exit,
                    cost,
                    span,
                } => {
                    let i = self.locals[base + *slot as usize].as_i64().unwrap_or(0);
                    let bound_v = self.stack.pop().expect("loop bound");
                    let bound = bound_v.as_i64().ok_or_else(|| RuntimeError::Type {
                        message: "loop bound must be integral".into(),
                        span: *span,
                    })?;
                    ops::charge(&mut self.profile, max_cycles, *cost)?;
                    self.profile.int_ops += 1;
                    let keep = match cond_op {
                        BinOp::Lt => i < bound,
                        BinOp::Le => i <= bound,
                        BinOp::Gt => i > bound,
                        BinOp::Ge => i >= bound,
                        BinOp::Ne => i != bound,
                        _ => false,
                    };
                    let ctx = self.loop_ctxs.last_mut().expect("open loop context");
                    ctx.cur_i = i;
                    if keep {
                        ctx.iters += 1;
                    } else {
                        pc = *exit as usize;
                        continue;
                    }
                }
                Insn::ForStep {
                    slot,
                    negative,
                    cost,
                    span,
                } => {
                    let v = self.stack.pop().expect("loop step");
                    let step = v.as_i64().ok_or_else(|| RuntimeError::Type {
                        message: "loop step must be integral".into(),
                        span: *span,
                    })?;
                    let i = self.loop_ctxs.last().expect("open loop context").cur_i;
                    let next = if *negative { i - step } else { i + step };
                    self.locals[base + *slot as usize] = Value::Int(next);
                    ops::charge(&mut self.profile, max_cycles, *cost)?;
                    self.profile.int_ops += 1;
                }
                Insn::WhileTest { exit, cost, span } => {
                    let v = self.stack.pop().expect("condition");
                    ops::charge(&mut self.profile, max_cycles, *cost)?;
                    let b = v.truthy().ok_or_else(|| RuntimeError::Type {
                        message: format!("condition is not boolean-testable ({})", v.type_name()),
                        span: *span,
                    })?;
                    if b {
                        self.loop_ctxs.last_mut().expect("open loop context").iters += 1;
                    } else {
                        pc = *exit as usize;
                        continue;
                    }
                }
                Insn::Raise(err) => return Err((**err).clone()),
            }
            pc += 1;
        }
        Ok(Value::Unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_minicpp::parse_module;

    fn run_vm(src: &str) -> (Value, Profile) {
        let m = parse_module(src, "t").unwrap();
        let mut vm = Vm::new(&m, RunConfig::default());
        let v = vm.run_main().unwrap();
        let (p, _) = vm.into_parts();
        (v, p)
    }

    #[test]
    fn basic_arithmetic_and_loops() {
        let (v, p) =
            run_vm("int main() { int s = 0; for (int i = 1; i <= 10; i++) { s += i; } return s; }");
        assert_eq!(v, Value::Int(55));
        assert!(p.total_cycles > 0);
        assert_eq!(p.loop_stats.len(), 1);
        assert_eq!(p.loop_stats.values().next().unwrap().iterations, 10);
    }

    #[test]
    fn globals_functions_and_memory() {
        let (v, _) = run_vm(
            "int scale = 3;\
             int mul(int x) { return x * scale; }\
             int main() {\
               double* a = alloc_double(4);\
               for (int i = 0; i < 4; i++) { a[i] = (double)mul(i); }\
               double s = 0.0;\
               for (int i = 0; i < 4; i++) { s += a[i]; }\
               return (int)s;\
             }",
        );
        assert_eq!(v, Value::Int(18));
    }

    #[test]
    fn return_from_nested_loops_records_stats() {
        let (v, p) = run_vm(
            "int main() {\
               for (int i = 0; i < 10; i++) {\
                 for (int j = 0; j < 10; j++) {\
                   if (i * 10 + j == 23) { return i * 10 + j; }\
                 }\
               }\
               return -1;\
             }",
        );
        assert_eq!(v, Value::Int(23));
        // Both loops have stats despite the early return.
        assert_eq!(p.loop_stats.len(), 2);
    }
}
