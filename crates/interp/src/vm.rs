//! The register VM: the fast execution engine.
//!
//! Executes a [`Program`] produced by [`crate::compile`]. The inner loop is
//! a `match` over register-addressed instructions — every operand names a
//! frame register, so the hot path moves no operand-stack traffic at all;
//! call targets are pre-bound and cycle costs are baked into the
//! instructions. Hot adjacent pairs are fused into superinstructions by
//! [`crate::peephole`]. Every observable (results, virtual clock, counters,
//! per-loop stats, memory provenance, kernel tracing, errors) is
//! bit-identical to the tree-walking [`crate::Interpreter`]. The
//! differential tests in `tests/engine_differential.rs` and the workspace
//! proptests enforce that.
//!
//! Frames share one `regs` vector (`base`-offset per call): registers
//! `[0, locals)` are the function's named slots, the rest its expression
//! temporaries. Loop bookkeeping lives on an explicit context stack so
//! `return` can record per-loop stats for every loop it unwinds, innermost
//! first, exactly as nested `exec_for` returns do in the tree-walker.

use crate::compile::{CallTarget, Insn, Program, SpanId, NO_SPAN};
use crate::error::{RuntimeError, RuntimeResult};
use crate::eval::RunConfig;
use crate::intrinsics::{self, Intrinsic};
use crate::memory::Memory;
use crate::ops::{self, BinCosts, IntrinsicCtx};
use crate::profile::Profile;
use crate::value::{Pointer, Value};
use crate::vmprof::{FrameKey, VmProfile, VmProfiler};
use psa_minicpp::ast::{BinOp, Module, NodeId, Scalar, Type};
use psa_minicpp::Span;
use std::sync::Arc;

/// The declared type the specialiser folds trailing coercions against
/// (`ops::coerce` only reads pointer-ness and the scalar, so this stands
/// in exactly for whatever plain-`double` declaration was folded).
const DOUBLE: Type = Type::scalar(Scalar::Double);

/// Per-loop bookkeeping while the loop is running.
struct LoopCtx {
    id: NodeId,
    start_cycles: u64,
    iters: u64,
    /// The induction variable's value at the top of the current iteration;
    /// the step advances from here even if the body reassigned the
    /// variable (tree-walker semantics).
    cur_i: i64,
}

/// Code-chunk id inside a [`Program`]: a function index, or the module's
/// globals-initialisation chunk.
const GLOBALS_CHUNK: u32 = u32::MAX;

fn code_of(program: &Program, id: u32) -> &[Insn] {
    if id == GLOBALS_CHUNK {
        &program.globals_init
    } else {
        &program.funcs[id as usize].code
    }
}

/// A suspended caller activation on the VM's explicit call stack. User
/// calls do not recurse into the host stack — MiniC++ `max_call_depth`
/// would otherwise be bounded by Rust's thread stack — so each `Call`
/// pushes one of these and the dispatch loop continues in the callee.
struct Frame {
    /// Caller chunk / resume point.
    ret_code: u32,
    ret_pc: usize,
    ret_base: usize,
    ret_loop_base: usize,
    /// Absolute register receiving the callee's return value.
    ret_dst: usize,
    /// The *callee* activation this frame suspended into, for its epilogue
    /// (frame truncation, watch/profiler unwind) on return or error.
    callee_base: usize,
    watched: bool,
    prof_depth: Option<usize>,
}

/// Why a dispatch chunk stopped: the activation returned, or it needs a
/// user call performed by the trampoline in [`Vm::exec`].
enum StepOut {
    Return(Value),
    Call {
        fidx: u16,
        /// Absolute index of the first argument register.
        args_at: usize,
        argc: usize,
        span: Span,
        /// Absolute destination register for the result.
        dst: usize,
        resume_pc: usize,
    },
}

/// Integer comparison for the fused compare+branch fast path.
#[inline(always)]
fn cmp_int(op: BinOp, a: i64, b: i64) -> bool {
    match op {
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        _ => unreachable!("fused comparison"),
    }
}

/// Float comparison for the fused compare+branch fast path.
#[inline(always)]
fn cmp_f64(op: BinOp, a: f64, b: f64) -> bool {
    match op {
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        _ => unreachable!("fused comparison"),
    }
}

/// The VM. Same construction and observation API as [`crate::Interpreter`].
pub struct Vm {
    program: Arc<Program>,
    /// The memory arena, public so harnesses can set up and inspect data.
    pub memory: Memory,
    profile: Profile,
    config: RunConfig,
    bin_costs: BinCosts,
    globals: Vec<Option<Value>>,
    /// All frames' register files, `base`-offset per call.
    regs: Vec<Value>,
    loop_ctxs: Vec<LoopCtx>,
    watch_depth: usize,
    call_depth: usize,
    timer_stack: Vec<(i64, u64)>,
    kernel_snapshot: Option<(u64, u64, u64, u64)>,
    heap_count: u32,
    /// Instructions dispatched and user calls made, for the metrics
    /// registry. Deliberately NOT part of [`Profile`]: profiles are
    /// compared bit-for-bit between engines and the tree-walker has no
    /// dispatch counter.
    dispatches: u64,
    /// Dispatches that took a type-specialised route: the `F64*`
    /// instruction forms, plus per-iteration credit for [`Insn::DeferredFor`]
    /// loops. Always `<= dispatches`; `ArithBlock` interiors count in
    /// neither.
    spec_dispatches: u64,
    calls: u64,
    /// Frame profiler; `None` (the default) costs nothing on the hot path.
    profiler: Option<Box<VmProfiler>>,
}

impl Vm {
    /// Compile `module` and set up a VM to run it under `config`.
    pub fn new(module: &Module, config: RunConfig) -> Self {
        let program = Arc::new(Program::compile(module, &config));
        Vm::with_program(program, config)
    }

    /// Reuse an already-compiled program (it must have been compiled with a
    /// config agreeing on `cost_model` and `watch_function`).
    pub fn with_program(program: Arc<Program>, config: RunConfig) -> Self {
        let bin_costs = BinCosts::of(&config.cost_model);
        let globals = vec![None; program.global_names.len()];
        Vm {
            program,
            memory: Memory::new(),
            profile: Profile::default(),
            config,
            bin_costs,
            globals,
            regs: Vec::new(),
            loop_ctxs: Vec::new(),
            watch_depth: 0,
            call_depth: 0,
            timer_stack: Vec::new(),
            kernel_snapshot: None,
            heap_count: 0,
            dispatches: 0,
            spec_dispatches: 0,
            calls: 0,
            profiler: None,
        }
    }

    /// Attach a fresh frame profiler; subsequent runs attribute virtual
    /// cycles and wall time to `(function, loop)` frames.
    pub fn enable_profiling(&mut self) {
        self.profiler = Some(Box::new(VmProfiler::new()));
    }

    /// Detach the profiler and aggregate its report. `root` names the
    /// outermost frame (conventionally the module name).
    pub fn take_vm_profile(&mut self, root: &str) -> Option<VmProfile> {
        self.profiler.take().map(|p| p.finish(&self.program, root))
    }

    /// Instructions dispatched by this VM so far.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Dispatches that took a type-specialised route so far (see the
    /// field doc for what counts).
    pub fn specialized_dispatches(&self) -> u64 {
        self.spec_dispatches
    }

    /// User-function calls made by this VM so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// The accumulated profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Consume the VM, returning profile and memory.
    pub fn into_parts(self) -> (Profile, Memory) {
        (self.profile, self.memory)
    }

    /// Execute module globals then `main()`.
    pub fn run_main(&mut self) -> RuntimeResult<Value> {
        let (d0, s0, c0) = (self.dispatches, self.spec_dispatches, self.calls);
        if let Some(p) = self.profiler.as_mut() {
            p.enter(FrameKey::Root, self.profile.total_cycles);
        }
        let result = self
            .init_globals()
            .and_then(|()| self.call_by_name("main", Vec::new(), Span::SYNTHETIC));
        if let Some(p) = self.profiler.as_mut() {
            // Unwinds every frame an error path abandoned, too.
            p.exit_to(0, self.profile.total_cycles);
        }
        psa_obs::counter_add("psa_vm_runs_total", &[], 1);
        psa_obs::counter_add("psa_vm_dispatches_total", &[], self.dispatches - d0);
        psa_obs::counter_add("psa_vm_calls_total", &[], self.calls - c0);
        let spec = self.spec_dispatches - s0;
        psa_obs::counter_add(
            "psa_vm_dispatch_class_total",
            &[("class", "specialized")],
            spec,
        );
        psa_obs::counter_add(
            "psa_vm_dispatch_class_total",
            &[("class", "generic")],
            (self.dispatches - d0) - spec,
        );
        // Flight-recorder census snapshot: this run's dispatch deltas,
        // attributed to the ambient causal span (the DAG node running us).
        psa_obs::recorder::record_vm_census(self.dispatches - d0, spec, self.calls - c0);
        result
    }

    /// Initialise module-level globals (idempotent).
    pub fn init_globals(&mut self) -> RuntimeResult<()> {
        if self.globals.iter().any(|g| g.is_some()) {
            return Ok(());
        }
        let program = Arc::clone(&self.program);
        let base = self.regs.len();
        self.regs
            .resize(base + program.globals_init_regs, Value::Unit);
        let loop_base = self.loop_ctxs.len();
        let result = self.exec(&program, GLOBALS_CHUNK, base, loop_base);
        self.regs.truncate(base);
        result.map(|_| ())
    }

    /// Call a function by name with pre-built argument values.
    pub fn call_by_name(
        &mut self,
        name: &str,
        args: Vec<Value>,
        span: Span,
    ) -> RuntimeResult<Value> {
        let program = Arc::clone(&self.program);
        if let Some(&fidx) = program.fn_by_name.get(name) {
            let argc = args.len();
            let at = self.regs.len();
            self.regs.extend(args);
            let result = self.call_user(&program, fidx, at, argc, span);
            self.regs.truncate(at);
            return result;
        }
        match intrinsics::lookup(name) {
            Some(intr) => self.call_intrinsic(name, intr, &args, span),
            None => Err(RuntimeError::Unbound {
                name: name.to_string(),
                span,
            }),
        }
    }

    fn charge(&mut self, cycles: u64) -> RuntimeResult<()> {
        ops::charge(&mut self.profile, self.config.max_cycles, cycles)
    }

    /// Call a user function whose `argc` arguments sit in registers
    /// `args_at..args_at + argc` (absolute indices — the caller's frame, or
    /// a scratch region appended by [`Vm::call_by_name`]). They are read in
    /// place: no per-call argument `Vec`, the dominant allocation in
    /// call-heavy programs.
    fn call_user(
        &mut self,
        program: &Program,
        fidx: u16,
        args_at: usize,
        argc: usize,
        span: Span,
    ) -> RuntimeResult<Value> {
        let (base, watched, prof_depth) = self.call_prologue(program, fidx, args_at, argc, span)?;
        let loop_base = self.loop_ctxs.len();
        let result = self.exec(program, u32::from(fidx), base, loop_base);
        self.call_epilogue(base, watched, prof_depth);
        result
    }

    /// Everything a user call does before its body runs: depth and arity
    /// checks, the call charge, profiler/watch entry, frame allocation and
    /// parameter coercion. Returns the callee's frame base plus the state
    /// [`Vm::call_epilogue`] needs. A coercion error propagates *without*
    /// the epilogue, like the tree-walker's `?` inside its `call_user`.
    fn call_prologue(
        &mut self,
        program: &Program,
        fidx: u16,
        args_at: usize,
        argc: usize,
        span: Span,
    ) -> RuntimeResult<(usize, bool, Option<usize>)> {
        let func = &program.funcs[fidx as usize];
        if self.call_depth >= self.config.max_call_depth {
            return Err(RuntimeError::StackOverflow {
                depth: self.config.max_call_depth,
            });
        }
        if argc != func.params.len() {
            return Err(RuntimeError::Type {
                message: format!(
                    "`{}` expects {} arguments, got {}",
                    func.name,
                    func.params.len(),
                    argc
                ),
                span,
            });
        }
        self.charge(self.config.cost_model.call)?;
        self.calls += 1;
        let prof_depth = self.profiler.as_ref().map(|p| p.depth());
        if let Some(p) = self.profiler.as_mut() {
            p.enter(FrameKey::Func(fidx), self.profile.total_cycles);
        }

        let watched = func.watched;
        if watched {
            if self.watch_depth == 0 {
                self.kernel_snapshot = Some((
                    self.profile.total_cycles,
                    self.profile.flops,
                    self.profile.bytes_loaded,
                    self.profile.bytes_stored,
                ));
            }
            self.watch_depth += 1;
            self.profile.kernel_calls += 1;
        }
        self.call_depth += 1;

        let base = self.regs.len();
        self.regs.resize(base + func.regs, Value::Unit);
        let mut ptr_args: Vec<(String, Pointer)> = Vec::new();
        for (i, param) in func.params.iter().enumerate() {
            let coerced = ops::coerce(self.regs[args_at + i], param.ty, param.span)?;
            if watched && self.watch_depth == 1 {
                if let Value::Ptr(p) = coerced {
                    ptr_args.push((param.name.clone(), p));
                }
            }
            self.regs[base + i] = coerced;
        }
        if watched && self.watch_depth == 1 {
            self.profile.kernel_arg_ptrs.push(ptr_args);
        }
        Ok((base, watched, prof_depth))
    }

    /// Everything a user call does after its body stops, whether it
    /// returned or errored: frame truncation, watch-window aggregation and
    /// profiler unwind.
    fn call_epilogue(&mut self, base: usize, watched: bool, prof_depth: Option<usize>) {
        self.regs.truncate(base);
        self.call_depth -= 1;
        if watched {
            self.watch_depth -= 1;
            if self.watch_depth == 0 {
                let (c0, f0, l0, s0) = self.kernel_snapshot.take().expect("snapshot set on entry");
                self.profile.kernel_cycles += self.profile.total_cycles - c0;
                self.profile.kernel_flops += self.profile.flops - f0;
                self.profile.kernel_bytes_loaded += self.profile.bytes_loaded - l0;
                self.profile.kernel_bytes_stored += self.profile.bytes_stored - s0;
            }
        }
        if let Some(depth) = prof_depth {
            if let Some(p) = self.profiler.as_mut() {
                // `exit_to` (not a single `exit`): an error mid-frame leaves
                // loop frames open; unwind them with the call frame.
                p.exit_to(depth, self.profile.total_cycles);
            }
        }
    }

    /// The call trampoline: runs chunk `entry` to completion, performing
    /// user calls on an explicit [`Frame`] stack so MiniC++ call depth
    /// never consumes host stack. Errors unwind every suspended
    /// activation's epilogue, innermost first — exactly what nested host
    /// recursion through [`Vm::call_user`] would have done.
    fn exec(
        &mut self,
        program: &Program,
        entry: u32,
        base: usize,
        loop_base: usize,
    ) -> RuntimeResult<Value> {
        let mut frames: Vec<Frame> = Vec::new();
        let mut cur_code = entry;
        let mut cur_base = base;
        let mut cur_loop_base = loop_base;
        let mut cur_pc = 0usize;
        loop {
            let code = code_of(program, cur_code);
            let step = self.run_chunk(program, code, cur_base, cur_loop_base, cur_pc);
            match step {
                Ok(StepOut::Return(v)) => match frames.pop() {
                    None => return Ok(v),
                    Some(fr) => {
                        self.call_epilogue(fr.callee_base, fr.watched, fr.prof_depth);
                        self.regs[fr.ret_dst] = v;
                        cur_code = fr.ret_code;
                        cur_base = fr.ret_base;
                        cur_loop_base = fr.ret_loop_base;
                        cur_pc = fr.ret_pc;
                    }
                },
                Ok(StepOut::Call {
                    fidx,
                    args_at,
                    argc,
                    span,
                    dst,
                    resume_pc,
                }) => match self.call_prologue(program, fidx, args_at, argc, span) {
                    Ok((callee_base, watched, prof_depth)) => {
                        frames.push(Frame {
                            ret_code: cur_code,
                            ret_pc: resume_pc,
                            ret_base: cur_base,
                            ret_loop_base: cur_loop_base,
                            ret_dst: dst,
                            callee_base,
                            watched,
                            prof_depth,
                        });
                        cur_code = u32::from(fidx);
                        cur_base = callee_base;
                        cur_loop_base = self.loop_ctxs.len();
                        cur_pc = 0;
                    }
                    Err(e) => {
                        // The failed callee never entered, so it gets no
                        // epilogue; every suspended caller does.
                        while let Some(fr) = frames.pop() {
                            self.call_epilogue(fr.callee_base, fr.watched, fr.prof_depth);
                        }
                        return Err(e);
                    }
                },
                Err(e) => {
                    while let Some(fr) = frames.pop() {
                        self.call_epilogue(fr.callee_base, fr.watched, fr.prof_depth);
                    }
                    return Err(e);
                }
            }
        }
    }

    fn call_intrinsic(
        &mut self,
        name: &str,
        intr: Intrinsic,
        args: &[Value],
        span: Span,
    ) -> RuntimeResult<Value> {
        let mut ctx = IntrinsicCtx {
            profile: &mut self.profile,
            memory: &mut self.memory,
            cost_model: &self.config.cost_model,
            max_cycles: self.config.max_cycles,
            timer_stack: &mut self.timer_stack,
            heap_count: &mut self.heap_count,
            watch: self.watch_depth > 0,
        };
        ops::exec_intrinsic(&mut ctx, name, intr, args, span)
    }

    /// The interpreter loop: dispatch `code` with frame registers at `base`
    /// until the activation returns or requests a user call (performed by
    /// the [`Vm::exec`] trampoline, which then resumes this chunk).
    fn run_chunk(
        &mut self,
        program: &Program,
        code: &[Insn],
        base: usize,
        loop_base: usize,
        start_pc: usize,
    ) -> RuntimeResult<StepOut> {
        // Split `self` into disjoint borrows once: the dispatch loop then
        // addresses the register file, profile and counters directly, so
        // the optimiser can keep their pointers in machine registers
        // instead of reloading through `&mut self` after every handler.
        let costs = self.bin_costs;
        let Vm {
            regs,
            profile,
            memory,
            config,
            globals,
            loop_ctxs,
            watch_depth,
            timer_stack,
            heap_count,
            dispatches,
            spec_dispatches,
            profiler,
            ..
        } = self;
        let frame = &mut regs.as_mut_slice()[base..];
        let max_cycles = config.max_cycles;
        // The watch window only toggles at call boundaries, which suspend
        // this chunk, so one snapshot per chunk entry is exact.
        let watch = *watch_depth > 0;
        let spans = program.spans.as_slice();
        let mut pc = start_pc;
        while let Some(insn) = code.get(pc) {
            *dispatches += 1;
            match insn {
                // Straight-line instructions: one shared implementation
                // (`step_arith`) serves both this dispatch loop and the
                // batched `ArithBlock` form below.
                insn @ (Insn::Const { .. }
                | Insn::Copy { .. }
                | Insn::AssignLocal { .. }
                | Insn::Coerce { .. }
                | Insn::Cast { .. }
                | Insn::Un { .. }
                | Insn::Bin { .. }
                | Insn::BinImm { .. }
                | Insn::BinImmRev { .. }
                | Insn::ToBool { .. }
                | Insn::Index { .. }
                | Insn::IndexAddr { .. }
                | Insn::LoadElem { .. }
                | Insn::StoreElem { .. }
                | Insn::MathCall { .. }
                | Insn::BinAssign { .. }
                | Insn::BinImmAssign { .. }
                | Insn::IndexBin { .. }
                | Insn::IndexBinImm { .. }
                | Insn::BinCoerce { .. }
                | Insn::BinImmCoerce { .. }
                | Insn::IndexCoerce { .. }
                | Insn::MathCallCoerce { .. }
                | Insn::IndexBinCoerce { .. }
                | Insn::IndexBinImmCoerce { .. }
                | Insn::BinImm2 { .. }
                | Insn::MathCallImm { .. }) => step_arith(
                    insn, frame, profile, memory, costs, max_cycles, watch, spans,
                )?,
                // Type-specialised straight-line forms: same shared
                // implementation, but metered separately so the
                // specialisation rate is observable.
                insn @ (Insn::F64Bin { .. }
                | Insn::F64BinImm { .. }
                | Insn::F64BinAssign { .. }
                | Insn::F64BinImmAssign { .. }
                | Insn::F64Index { .. }
                | Insn::F64Store { .. }
                | Insn::F64MathCallImm { .. }) => {
                    *spec_dispatches += 1;
                    step_spec(
                        insn, frame, profile, memory, costs, max_cycles, watch, spans, None,
                    )?;
                }
                Insn::ArithBlock(steps) => {
                    for s in steps.iter() {
                        step_arith(s, frame, profile, memory, costs, max_cycles, watch, spans)?;
                    }
                }
                Insn::LoadGlobal { dst, gidx, span } => {
                    let v = globals[*gidx as usize].ok_or_else(|| RuntimeError::Unbound {
                        name: program.global_names[*gidx as usize].to_string(),
                        span: sp(spans, *span),
                    })?;
                    *reg_mut(frame, *dst) = v;
                }
                Insn::CopyToGlobal { gidx, src } => {
                    globals[*gidx as usize] = Some(reg(frame, *src));
                }
                Insn::AssignGlobal { gidx, src, span } => {
                    let new = reg(frame, *src);
                    match globals[*gidx as usize] {
                        Some(cur) => {
                            globals[*gidx as usize] =
                                Some(ops::convert_assign(Some(cur), new, sp(spans, *span))?);
                        }
                        None => {
                            return Err(RuntimeError::Unbound {
                                name: program.global_names[*gidx as usize].to_string(),
                                span: sp(spans, *span),
                            })
                        }
                    }
                }
                Insn::Jump(target) => {
                    pc = *target as usize;
                    continue;
                }
                Insn::JumpIfFalse {
                    src,
                    target,
                    cost,
                    span,
                } => {
                    let v = reg(frame, *src);
                    ops::charge(&mut *profile, max_cycles, *cost)?;
                    let b = v.truthy().ok_or_else(|| RuntimeError::Type {
                        message: format!("condition is not boolean-testable ({})", v.type_name()),
                        span: sp(spans, *span),
                    })?;
                    if !b {
                        pc = *target as usize;
                        continue;
                    }
                }
                Insn::AndShort {
                    src,
                    dst,
                    target,
                    cost,
                    span,
                } => {
                    let v = reg(frame, *src);
                    ops::charge(&mut *profile, max_cycles, *cost)?;
                    let b = v.truthy().ok_or_else(|| RuntimeError::Type {
                        message: format!("condition is not boolean-testable ({})", v.type_name()),
                        span: sp(spans, *span),
                    })?;
                    if !b {
                        *reg_mut(frame, *dst) = Value::Bool(false);
                        pc = *target as usize;
                        continue;
                    }
                }
                Insn::OrShort {
                    src,
                    dst,
                    target,
                    cost,
                    span,
                } => {
                    let v = reg(frame, *src);
                    ops::charge(&mut *profile, max_cycles, *cost)?;
                    let b = v.truthy().ok_or_else(|| RuntimeError::Type {
                        message: format!("condition is not boolean-testable ({})", v.type_name()),
                        span: sp(spans, *span),
                    })?;
                    if b {
                        *reg_mut(frame, *dst) = Value::Bool(true);
                        pc = *target as usize;
                        continue;
                    }
                }
                Insn::AllocArray {
                    dst,
                    len,
                    scalar,
                    name,
                    span,
                } => {
                    let len_v = reg(frame, *len);
                    let len =
                        len_v
                            .as_i64()
                            .filter(|&n| n >= 0)
                            .ok_or_else(|| RuntimeError::Type {
                                message: format!(
                                    "array length of `{name}` must be a non-negative int"
                                ),
                                span: sp(spans, *span),
                            })?;
                    let id = memory.alloc(*scalar, len as usize, name.to_string());
                    *reg_mut(frame, *dst) = Value::Ptr(Pointer {
                        buffer: id,
                        offset: 0,
                    });
                }
                Insn::Call {
                    dst,
                    site,
                    first_arg,
                } => {
                    let site = &program.call_sites[*site as usize];
                    let at = base + *first_arg as usize;
                    let args_from = *first_arg as usize;
                    let v = match &site.target {
                        CallTarget::User(fidx) => {
                            return Ok(StepOut::Call {
                                fidx: *fidx,
                                args_at: at,
                                argc: site.argc,
                                span: site.span,
                                dst: base + *dst as usize,
                                resume_pc: pc + 1,
                            });
                        }
                        CallTarget::Intrinsic(intr) => {
                            // Arguments are read in place from the caller's
                            // registers; the ctx borrows disjoint fields so
                            // the slice stays valid.
                            let mut ctx = IntrinsicCtx {
                                profile: &mut *profile,
                                memory: &mut *memory,
                                cost_model: &config.cost_model,
                                max_cycles,
                                timer_stack: &mut *timer_stack,
                                heap_count: &mut *heap_count,
                                watch,
                            };
                            ops::exec_intrinsic(
                                &mut ctx,
                                &site.name,
                                *intr,
                                &frame[args_from..args_from + site.argc],
                                site.span,
                            )?
                        }
                        CallTarget::Unknown => {
                            return Err(RuntimeError::Unbound {
                                name: site.name.to_string(),
                                span: site.span,
                            })
                        }
                    };
                    *reg_mut(frame, *dst) = v;
                }
                Insn::Ret { src, has_value } => {
                    let v = if *has_value {
                        reg(frame, *src)
                    } else {
                        Value::Unit
                    };
                    while loop_ctxs.len() > loop_base {
                        record_loop_exit(profile, loop_ctxs, profiler);
                    }
                    return Ok(StepOut::Return(v));
                }
                Insn::LoopEnter { id } => {
                    loop_ctxs.push(LoopCtx {
                        id: *id,
                        start_cycles: profile.total_cycles,
                        iters: 0,
                        cur_i: 0,
                    });
                    if let Some(p) = profiler.as_mut() {
                        p.enter(FrameKey::Loop(*id), profile.total_cycles);
                    }
                }
                Insn::LoopExit => record_loop_exit(profile, loop_ctxs, profiler),
                Insn::ForInit {
                    slot,
                    src,
                    bound,
                    name,
                    span,
                } => {
                    let v = reg(frame, *src);
                    let i = v.as_i64().ok_or_else(|| RuntimeError::Type {
                        message: format!("loop init for `{name}` must be integral"),
                        span: sp(spans, *span),
                    })?;
                    if !*bound {
                        return Err(RuntimeError::Unbound {
                            name: name.to_string(),
                            span: sp(spans, *span),
                        });
                    }
                    *reg_mut(frame, *slot) = Value::Int(i);
                }
                Insn::ForTest {
                    slot,
                    bound,
                    cond_op,
                    exit,
                    cost,
                    span,
                } => {
                    let i = reg(frame, *slot).as_i64().unwrap_or(0);
                    let bound_v = reg(frame, *bound);
                    let bound = bound_v.as_i64().ok_or_else(|| RuntimeError::Type {
                        message: "loop bound must be integral".into(),
                        span: sp(spans, *span),
                    })?;
                    ops::charge(&mut *profile, max_cycles, *cost)?;
                    profile.int_ops += 1;
                    let keep = match cond_op {
                        BinOp::Lt => i < bound,
                        BinOp::Le => i <= bound,
                        BinOp::Gt => i > bound,
                        BinOp::Ge => i >= bound,
                        BinOp::Ne => i != bound,
                        _ => false,
                    };
                    let ctx = loop_ctxs.last_mut().expect("open loop context");
                    ctx.cur_i = i;
                    if keep {
                        ctx.iters += 1;
                    } else {
                        pc = *exit as usize;
                        continue;
                    }
                }
                Insn::ForStep {
                    slot,
                    step,
                    negative,
                    cost,
                    span,
                } => {
                    let v = reg(frame, *step);
                    let step = v.as_i64().ok_or_else(|| RuntimeError::Type {
                        message: "loop step must be integral".into(),
                        span: sp(spans, *span),
                    })?;
                    let i = loop_ctxs.last().expect("open loop context").cur_i;
                    let next = if *negative { i - step } else { i + step };
                    *reg_mut(frame, *slot) = Value::Int(next);
                    ops::charge(&mut *profile, max_cycles, *cost)?;
                    profile.int_ops += 1;
                }
                Insn::WhileTest {
                    src,
                    exit,
                    cost,
                    span,
                } => {
                    let v = reg(frame, *src);
                    ops::charge(&mut *profile, max_cycles, *cost)?;
                    let b = v.truthy().ok_or_else(|| RuntimeError::Type {
                        message: format!("condition is not boolean-testable ({})", v.type_name()),
                        span: sp(spans, *span),
                    })?;
                    if b {
                        loop_ctxs.last_mut().expect("open loop context").iters += 1;
                    } else {
                        pc = *exit as usize;
                        continue;
                    }
                }
                Insn::Raise(err) => return Err((**err).clone()),

                // ----------------------------------------------------------
                // Superinstructions. Each performs exactly the steps of the
                // pair it replaced; the compare+branch forms collapse the two
                // cycle charges into one combined `charge()` (see
                // `crate::peephole` for why that is exact).
                // ----------------------------------------------------------
                Insn::CmpBranch {
                    op,
                    l,
                    r,
                    target,
                    branch_cost,
                    cmp_span,
                    br_span,
                } => {
                    let lv = reg(frame, *l);
                    let rv = reg(frame, *r);
                    let b = fused_cmp(
                        profile,
                        max_cycles,
                        costs,
                        *op,
                        lv,
                        rv,
                        *branch_cost,
                        sp(spans, *cmp_span),
                        sp(spans, *br_span),
                    )?;
                    if !b {
                        pc = *target as usize;
                        continue;
                    }
                }
                Insn::CmpImmBranch {
                    op,
                    l,
                    imm,
                    target,
                    branch_cost,
                    cmp_span,
                    br_span,
                } => {
                    let lv = reg(frame, *l);
                    let b = fused_cmp(
                        profile,
                        max_cycles,
                        costs,
                        *op,
                        lv,
                        *imm,
                        *branch_cost,
                        sp(spans, *cmp_span),
                        sp(spans, *br_span),
                    )?;
                    if !b {
                        pc = *target as usize;
                        continue;
                    }
                }
                Insn::CmpWhile {
                    op,
                    l,
                    r,
                    exit,
                    branch_cost,
                    cmp_span,
                    br_span,
                } => {
                    let lv = reg(frame, *l);
                    let rv = reg(frame, *r);
                    let b = fused_cmp(
                        profile,
                        max_cycles,
                        costs,
                        *op,
                        lv,
                        rv,
                        *branch_cost,
                        sp(spans, *cmp_span),
                        sp(spans, *br_span),
                    )?;
                    if b {
                        loop_ctxs.last_mut().expect("open loop context").iters += 1;
                    } else {
                        pc = *exit as usize;
                        continue;
                    }
                }
                Insn::CmpImmWhile {
                    op,
                    l,
                    imm,
                    exit,
                    branch_cost,
                    cmp_span,
                    br_span,
                } => {
                    let lv = reg(frame, *l);
                    let b = fused_cmp(
                        profile,
                        max_cycles,
                        costs,
                        *op,
                        lv,
                        *imm,
                        *branch_cost,
                        sp(spans, *cmp_span),
                        sp(spans, *br_span),
                    )?;
                    if b {
                        loop_ctxs.last_mut().expect("open loop context").iters += 1;
                    } else {
                        pc = *exit as usize;
                        continue;
                    }
                }
                Insn::ForStepJump {
                    slot,
                    step,
                    negative,
                    cost,
                    span,
                    target,
                } => {
                    let v = reg(frame, *step);
                    let step = v.as_i64().ok_or_else(|| RuntimeError::Type {
                        message: "loop step must be integral".into(),
                        span: sp(spans, *span),
                    })?;
                    let i = loop_ctxs.last().expect("open loop context").cur_i;
                    let next = if *negative { i - step } else { i + step };
                    *reg_mut(frame, *slot) = Value::Int(next);
                    ops::charge(&mut *profile, max_cycles, *cost)?;
                    profile.int_ops += 1;
                    pc = *target as usize;
                    continue;
                }
                Insn::DeferredFor(d) => {
                    // One dispatch runs the whole counted loop (see
                    // `peephole::defer_loops` for eligibility). While
                    // `clock + acc + iter_max <= max_cycles` the coming
                    // iteration provably cannot exhaust the budget, so its
                    // test/step/fast-path charges accumulate in `acc`
                    // instead of the virtual clock; once that precheck
                    // fails, `acc` is reconciled and iterations replay with
                    // precise immediate charges, so a budget exhaustion
                    // fires at exactly the cycle the unspecialised loop
                    // would report. Generic body instructions always charge
                    // immediately — exact in both modes, since under the
                    // precheck they cannot fail either.
                    let mut acc: u64 = 0;
                    let mut entered: u64 = 0;
                    let mut err: Option<RuntimeError> = None;
                    'deferred: loop {
                        let i = reg(frame, d.slot).as_i64().unwrap_or(0);
                        let bound_v = reg(frame, d.bound);
                        let Some(bound) = bound_v.as_i64() else {
                            err = Some(RuntimeError::Type {
                                message: "loop bound must be integral".into(),
                                span: sp(spans, d.test_span),
                            });
                            break 'deferred;
                        };
                        let precise = profile
                            .total_cycles
                            .saturating_add(acc)
                            .saturating_add(d.iter_max)
                            > max_cycles;
                        if precise {
                            profile.total_cycles += acc;
                            acc = 0;
                            if let Err(e) = ops::charge(&mut *profile, max_cycles, d.test_cost) {
                                err = Some(e);
                                break 'deferred;
                            }
                        } else {
                            acc += d.test_cost;
                        }
                        profile.int_ops += 1;
                        // `ForTest` semantics, including its `_ => false`.
                        let keep = match d.cond_op {
                            BinOp::Lt => i < bound,
                            BinOp::Le => i <= bound,
                            BinOp::Gt => i > bound,
                            BinOp::Ge => i >= bound,
                            BinOp::Ne => i != bound,
                            _ => false,
                        };
                        let ctx = loop_ctxs.last_mut().expect("open loop context");
                        ctx.cur_i = i;
                        if !keep {
                            break 'deferred;
                        }
                        ctx.iters += 1;
                        entered += 1;
                        for s in d.body.iter() {
                            let r = if precise {
                                step_arith(
                                    s, frame, profile, memory, costs, max_cycles, watch, spans,
                                )
                            } else {
                                match s {
                                    Insn::F64Bin { .. }
                                    | Insn::F64BinImm { .. }
                                    | Insn::F64BinAssign { .. }
                                    | Insn::F64BinImmAssign { .. }
                                    | Insn::F64Index { .. }
                                    | Insn::F64Store { .. }
                                    | Insn::F64MathCallImm { .. } => step_spec(
                                        s,
                                        frame,
                                        profile,
                                        memory,
                                        costs,
                                        max_cycles,
                                        watch,
                                        spans,
                                        Some(&mut acc),
                                    ),
                                    _ => step_arith(
                                        s, frame, profile, memory, costs, max_cycles, watch, spans,
                                    ),
                                }
                            };
                            if let Err(e) = r {
                                err = Some(e);
                                break 'deferred;
                            }
                        }
                        // `ForStepJump` semantics: the step advances from the
                        // value latched at the test, even if the body
                        // reassigned the variable.
                        let sv = reg(frame, d.step);
                        let Some(step) = sv.as_i64() else {
                            err = Some(RuntimeError::Type {
                                message: "loop step must be integral".into(),
                                span: sp(spans, d.step_span),
                            });
                            break 'deferred;
                        };
                        let next = if d.negative { i - step } else { i + step };
                        *reg_mut(frame, d.slot) = Value::Int(next);
                        if precise {
                            if let Err(e) = ops::charge(&mut *profile, max_cycles, d.step_cost) {
                                err = Some(e);
                                break 'deferred;
                            }
                        } else {
                            acc += d.step_cost;
                        }
                        profile.int_ops += 1;
                    }
                    // Reconcile deferred charges with the virtual clock
                    // before the `LoopExit` (or the error path) observes it.
                    profile.total_cycles += acc;
                    *dispatches += entered * (d.body.len() as u64 + 2);
                    *spec_dispatches += entered * (u64::from(d.nspec) + 2);
                    if let Some(e) = err {
                        return Err(e);
                    }
                }
            }
            pc += 1;
        }
        Ok(StepOut::Return(Value::Unit))
    }
}

/// Record stats for the innermost open loop and close it.
fn record_loop_exit(
    profile: &mut Profile,
    loop_ctxs: &mut Vec<LoopCtx>,
    profiler: &mut Option<Box<VmProfiler>>,
) {
    let ctx = loop_ctxs.pop().expect("open loop context");
    let stats = profile.loop_stats.entry(ctx.id).or_default();
    stats.entries += 1;
    stats.iterations += ctx.iters;
    stats.cycles += profile.total_cycles - ctx.start_cycles;
    if let Some(p) = profiler.as_mut() {
        p.exit(profile.total_cycles);
    }
}

/// Fused comparison + branch-charge. Same-type numeric operands take a
/// specialised path with one combined charge; anything else replays the
/// exact unfused sequence (`apply_binary`, branch charge, truthiness).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn fused_cmp(
    profile: &mut Profile,
    max_cycles: u64,
    costs: BinCosts,
    op: BinOp,
    lv: Value,
    rv: Value,
    branch_cost: u64,
    cmp_span: Span,
    br_span: Span,
) -> RuntimeResult<bool> {
    match (lv, rv) {
        (Value::Int(a), Value::Int(b)) => {
            ops::charge(&mut *profile, max_cycles, costs.int_op + branch_cost)?;
            profile.int_ops += 1;
            Ok(cmp_int(op, a, b))
        }
        (Value::Double(a), Value::Double(b)) => {
            ops::charge(&mut *profile, max_cycles, costs.fp_op + branch_cost)?;
            Ok(cmp_f64(op, a, b))
        }
        (Value::Float(a), Value::Float(b)) => {
            ops::charge(&mut *profile, max_cycles, costs.fp_op + branch_cost)?;
            Ok(cmp_f64(op, f64::from(a), f64::from(b)))
        }
        _ => {
            let v = ops::apply_binary(&mut *profile, max_cycles, costs, op, lv, rv, cmp_span)?;
            ops::charge(&mut *profile, max_cycles, branch_cost)?;
            v.truthy().ok_or_else(|| RuntimeError::Type {
                message: format!("condition is not boolean-testable ({})", v.type_name()),
                span: br_span,
            })
        }
    }
}

/// The `Index` load sequence shared by the fused index+binop forms.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn index_load(
    profile: &mut Profile,
    memory: &mut Memory,
    watch: bool,
    max_cycles: u64,
    base_v: Value,
    idx_v: Value,
    cost: u64,
    base_span: Span,
    index_span: Span,
    load_span: Span,
) -> RuntimeResult<Value> {
    let ptr = base_v.as_ptr().ok_or_else(|| RuntimeError::Type {
        message: "indexed value is not a pointer".into(),
        span: base_span,
    })?;
    let idx = idx_v.as_i64().ok_or_else(|| RuntimeError::Type {
        message: "index is not integral".into(),
        span: index_span,
    })?;
    ops::charge(&mut *profile, max_cycles, cost)?;
    profile.int_ops += 1;
    profile.loads += 1;
    profile.bytes_loaded += memory.elem_bytes(ptr.buffer);
    memory.load(ptr.buffer, ptr.offset + idx, load_span, watch)
}

/// Frame-register read.
///
/// SAFETY: `Program` compilation verifies every register operand of every
/// instruction against its function's frame size (`verify_code` in
/// `crate::compile`, run unconditionally), `Insn` values cannot be built
/// outside this crate, and the trampoline sizes the live frame to exactly
/// that register count before dispatching — so `i` is always in bounds
/// here and in [`reg_mut`].
/// Resolve an interned span through the program's side table. Hot-path
/// callers pass the result into error constructors and provenance hooks
/// whose value is dead unless the cold path runs; the indexed load itself
/// is a single L1 hit off the critical path.
#[inline(always)]
fn sp(spans: &[Span], id: SpanId) -> Span {
    spans[id.0 as usize]
}

#[inline(always)]
fn reg(frame: &[Value], i: u16) -> Value {
    debug_assert!((i as usize) < frame.len());
    unsafe { *frame.get_unchecked(i as usize) }
}

/// Frame-register write slot; same bounds contract as [`reg`].
#[inline(always)]
fn reg_mut(frame: &mut [Value], i: u16) -> &mut Value {
    debug_assert!((i as usize) < frame.len());
    unsafe { frame.get_unchecked_mut(i as usize) }
}

/// Execute one straight-line instruction — every arithmetic / memory form
/// with no control flow. Shared verbatim by the dispatch loop and by
/// [`Insn::ArithBlock`] batches, so batching cannot change semantics: a
/// block only removes the outer dispatch between consecutive steps.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn step_arith(
    insn: &Insn,
    frame: &mut [Value],
    profile: &mut Profile,
    memory: &mut Memory,
    costs: ops::BinCosts,
    max_cycles: u64,
    watch: bool,
    spans: &[Span],
) -> RuntimeResult<()> {
    // Every `*Coerce` variant differs from its base form only by this
    // tail: write the produced value through the fused declaration
    // coercion. The macro keeps the paired decode arms from duplicating
    // their whole producer sequence.
    macro_rules! store_coerced {
        ($dst:expr, $v:expr, $ty:expr, $co:expr) => {
            *reg_mut(frame, *$dst) = ops::coerce($v, *$ty, sp(spans, *$co))?
        };
    }
    // The shared binary-op producer of the fused arithmetic forms.
    macro_rules! binop {
        ($op:expr, $l:expr, $r:expr, $span:expr) => {
            ops::apply_binary(
                &mut *profile,
                max_cycles,
                costs,
                *$op,
                $l,
                $r,
                sp(spans, *$span),
            )?
        };
    }
    match insn {
        Insn::Const { dst, v } => *reg_mut(frame, *dst) = *v,
        Insn::Copy { dst, src } => *reg_mut(frame, *dst) = reg(frame, *src),
        Insn::AssignLocal { slot, src, span } => {
            let new = reg(frame, *src);
            let cur = reg(frame, *slot);
            *reg_mut(frame, *slot) = ops::convert_assign(Some(cur), new, sp(spans, *span))?;
        }
        Insn::Coerce { dst, src, ty, span } => {
            let v = reg(frame, *src);
            *reg_mut(frame, *dst) = ops::coerce(v, *ty, sp(spans, *span))?;
        }
        Insn::Cast {
            dst,
            src,
            ty,
            cost,
            span,
        } => {
            let v = reg(frame, *src);
            ops::charge(&mut *profile, max_cycles, *cost)?;
            *reg_mut(frame, *dst) = ops::coerce(v, *ty, sp(spans, *span))?;
        }
        Insn::Un { op, dst, src, span } => {
            let v = reg(frame, *src);
            let r = ops::apply_unary(&mut *profile, max_cycles, costs, *op, v, sp(spans, *span))?;
            *reg_mut(frame, *dst) = r;
        }
        Insn::Bin {
            op,
            dst,
            l,
            r,
            span,
        } => {
            let lv = reg(frame, *l);
            let rv = reg(frame, *r);
            let v = ops::apply_binary(
                &mut *profile,
                max_cycles,
                costs,
                *op,
                lv,
                rv,
                sp(spans, *span),
            )?;
            *reg_mut(frame, *dst) = v;
        }
        Insn::BinImm {
            op,
            dst,
            l,
            imm,
            span,
        } => {
            let lv = reg(frame, *l);
            let v = ops::apply_binary(
                &mut *profile,
                max_cycles,
                costs,
                *op,
                lv,
                *imm,
                sp(spans, *span),
            )?;
            *reg_mut(frame, *dst) = v;
        }
        Insn::BinImmRev {
            op,
            dst,
            imm,
            r,
            span,
        } => {
            let rv = reg(frame, *r);
            let v = ops::apply_binary(
                &mut *profile,
                max_cycles,
                costs,
                *op,
                *imm,
                rv,
                sp(spans, *span),
            )?;
            *reg_mut(frame, *dst) = v;
        }
        Insn::ToBool {
            dst,
            src,
            cost,
            span,
        } => {
            let v = reg(frame, *src);
            ops::charge(&mut *profile, max_cycles, *cost)?;
            let b = v.truthy().ok_or_else(|| RuntimeError::Type {
                message: format!("condition is not boolean-testable ({})", v.type_name()),
                span: sp(spans, *span),
            })?;
            *reg_mut(frame, *dst) = Value::Bool(b);
        }
        Insn::Index {
            dst,
            base: b,
            idx,
            cost,
            base_span,
            index_span,
            span,
        } => {
            let base_v = reg(frame, *b);
            let idx_v = reg(frame, *idx);
            let ptr = base_v.as_ptr().ok_or_else(|| RuntimeError::Type {
                message: "indexed value is not a pointer".into(),
                span: sp(spans, *base_span),
            })?;
            let idx = idx_v.as_i64().ok_or_else(|| RuntimeError::Type {
                message: "index is not integral".into(),
                span: sp(spans, *index_span),
            })?;
            ops::charge(&mut *profile, max_cycles, *cost)?;
            profile.int_ops += 1;
            profile.loads += 1;
            profile.bytes_loaded += memory.elem_bytes(ptr.buffer);
            let v = memory.load(ptr.buffer, ptr.offset + idx, sp(spans, *span), watch)?;
            *reg_mut(frame, *dst) = v;
        }
        Insn::IndexAddr {
            dst,
            base: b,
            idx,
            cost,
            base_span,
            index_span,
        } => {
            let base_v = reg(frame, *b);
            let idx_v = reg(frame, *idx);
            let ptr = base_v.as_ptr().ok_or_else(|| RuntimeError::Type {
                message: "indexed value is not a pointer".into(),
                span: sp(spans, *base_span),
            })?;
            let idx = idx_v.as_i64().ok_or_else(|| RuntimeError::Type {
                message: "index is not integral".into(),
                span: sp(spans, *index_span),
            })?;
            ops::charge(&mut *profile, max_cycles, *cost)?;
            profile.int_ops += 1;
            *reg_mut(frame, *dst) = Value::Ptr(Pointer {
                buffer: ptr.buffer,
                offset: ptr.offset + idx,
            });
        }
        Insn::LoadElem {
            dst,
            addr,
            cost,
            span,
        } => {
            let p = reg(frame, *addr).as_ptr().expect("element address");
            // Load first, charge after — tree-walker order for the
            // compound-assignment read.
            let old = memory.load(p.buffer, p.offset, sp(spans, *span), watch)?;
            ops::charge(&mut *profile, max_cycles, *cost)?;
            profile.loads += 1;
            profile.bytes_loaded += memory.elem_bytes(p.buffer);
            *reg_mut(frame, *dst) = old;
        }
        Insn::StoreElem {
            addr,
            src,
            cost,
            span,
        } => {
            let p = reg(frame, *addr).as_ptr().expect("element address");
            let v = reg(frame, *src);
            memory.store(p.buffer, p.offset, v, sp(spans, *span), watch)?;
            ops::charge(&mut *profile, max_cycles, *cost)?;
            profile.stores += 1;
            profile.bytes_stored += memory.elem_bytes(p.buffer);
        }
        Insn::MathCall {
            dst,
            a,
            b,
            f,
            cycles,
            flops,
            name,
            span,
        } => {
            let v = math_eval(
                frame,
                profile,
                max_cycles,
                *a,
                *b,
                *f,
                *cycles,
                *flops,
                name,
                sp(spans, *span),
            )?;
            *reg_mut(frame, *dst) = v;
        }
        Insn::BinAssign {
            op,
            slot,
            l,
            r,
            span,
            asg_span,
        } => {
            let lv = reg(frame, *l);
            let rv = reg(frame, *r);
            let v = ops::apply_binary(
                &mut *profile,
                max_cycles,
                costs,
                *op,
                lv,
                rv,
                sp(spans, *span),
            )?;
            let cur = reg(frame, *slot);
            *reg_mut(frame, *slot) = ops::convert_assign(Some(cur), v, sp(spans, *asg_span))?;
        }
        Insn::BinImmAssign {
            op,
            slot,
            l,
            imm,
            span,
            asg_span,
        } => {
            let lv = reg(frame, *l);
            let v = ops::apply_binary(
                &mut *profile,
                max_cycles,
                costs,
                *op,
                lv,
                *imm,
                sp(spans, *span),
            )?;
            let cur = reg(frame, *slot);
            *reg_mut(frame, *slot) = ops::convert_assign(Some(cur), v, sp(spans, *asg_span))?;
        }
        Insn::IndexBin {
            op,
            dst,
            base: b,
            idx,
            r,
            cost,
            base_span,
            index_span,
            load_span,
            span,
        } => {
            let base_v = reg(frame, *b);
            let idx_v = reg(frame, *idx);
            let rv = reg(frame, *r);
            let loaded = index_load(
                profile,
                memory,
                watch,
                max_cycles,
                base_v,
                idx_v,
                *cost,
                sp(spans, *base_span),
                sp(spans, *index_span),
                sp(spans, *load_span),
            )?;
            let v = ops::apply_binary(
                &mut *profile,
                max_cycles,
                costs,
                *op,
                loaded,
                rv,
                sp(spans, *span),
            )?;
            *reg_mut(frame, *dst) = v;
        }
        Insn::IndexBinImm {
            op,
            dst,
            base: b,
            idx,
            imm,
            cost,
            base_span,
            index_span,
            load_span,
            span,
        } => {
            let base_v = reg(frame, *b);
            let idx_v = reg(frame, *idx);
            let loaded = index_load(
                profile,
                memory,
                watch,
                max_cycles,
                base_v,
                idx_v,
                *cost,
                sp(spans, *base_span),
                sp(spans, *index_span),
                sp(spans, *load_span),
            )?;
            let v = ops::apply_binary(
                &mut *profile,
                max_cycles,
                costs,
                *op,
                loaded,
                *imm,
                sp(spans, *span),
            )?;
            *reg_mut(frame, *dst) = v;
        }
        Insn::BinCoerce {
            op,
            dst,
            l,
            r,
            ty,
            span,
            co_span,
        } => {
            let v = binop!(op, reg(frame, *l), reg(frame, *r), span);
            store_coerced!(dst, v, ty, co_span);
        }
        Insn::BinImmCoerce {
            op,
            dst,
            l,
            imm,
            ty,
            span,
            co_span,
        } => {
            let v = binop!(op, reg(frame, *l), *imm, span);
            store_coerced!(dst, v, ty, co_span);
        }
        Insn::IndexCoerce {
            dst,
            base: b,
            idx,
            cost,
            ty,
            base_span,
            index_span,
            span,
            co_span,
        } => {
            let v = index_load(
                profile,
                memory,
                watch,
                max_cycles,
                reg(frame, *b),
                reg(frame, *idx),
                *cost,
                sp(spans, *base_span),
                sp(spans, *index_span),
                sp(spans, *span),
            )?;
            store_coerced!(dst, v, ty, co_span);
        }
        Insn::MathCallCoerce {
            dst,
            a,
            b,
            f,
            cycles,
            flops,
            name,
            ty,
            span,
            co_span,
        } => {
            let v = math_eval(
                frame,
                profile,
                max_cycles,
                *a,
                *b,
                *f,
                *cycles,
                *flops,
                name,
                sp(spans, *span),
            )?;
            store_coerced!(dst, v, ty, co_span);
        }
        Insn::IndexBinCoerce {
            op,
            dst,
            base: b,
            idx,
            r,
            cost,
            ty,
            base_span,
            index_span,
            load_span,
            span,
            co_span,
        } => {
            let loaded = index_load(
                profile,
                memory,
                watch,
                max_cycles,
                reg(frame, *b),
                reg(frame, *idx),
                *cost,
                sp(spans, *base_span),
                sp(spans, *index_span),
                sp(spans, *load_span),
            )?;
            let v = binop!(op, loaded, reg(frame, *r), span);
            store_coerced!(dst, v, ty, co_span);
        }
        Insn::IndexBinImmCoerce {
            op,
            dst,
            base: b,
            idx,
            imm,
            cost,
            ty,
            base_span,
            index_span,
            load_span,
            span,
            co_span,
        } => {
            let loaded = index_load(
                profile,
                memory,
                watch,
                max_cycles,
                reg(frame, *b),
                reg(frame, *idx),
                *cost,
                sp(spans, *base_span),
                sp(spans, *index_span),
                sp(spans, *load_span),
            )?;
            let v = binop!(op, loaded, *imm, span);
            store_coerced!(dst, v, ty, co_span);
        }
        Insn::BinImm2 {
            op1,
            op2,
            dst,
            l,
            imm1,
            imm2,
            span1,
            span2,
        } => {
            let lv = reg(frame, *l);
            let t = ops::apply_binary(
                &mut *profile,
                max_cycles,
                costs,
                *op1,
                lv,
                *imm1,
                sp(spans, *span1),
            )?;
            let v = ops::apply_binary(
                &mut *profile,
                max_cycles,
                costs,
                *op2,
                t,
                *imm2,
                sp(spans, *span2),
            )?;
            *reg_mut(frame, *dst) = v;
        }
        Insn::MathCallImm {
            op,
            rev,
            dst,
            l,
            imm,
            f,
            cycles,
            flops,
            bin_span,
        } => {
            let lv = reg(frame, *l);
            let (a_v, b_v) = if *rev { (*imm, lv) } else { (lv, *imm) };
            let t = ops::apply_binary(
                &mut *profile,
                max_cycles,
                costs,
                *op,
                a_v,
                b_v,
                sp(spans, *bin_span),
            )?;
            // The fusion gate (floating immediate, arithmetic op) means the
            // binop result is always numeric, so the unfused pair's
            // non-numeric-argument intrinsic error cannot fire here.
            let av = t
                .as_f64()
                .unwrap_or_else(|| unreachable!("fused math argument is numeric"));
            ops::charge(&mut *profile, max_cycles, u64::from(*cycles))?;
            profile.flops += u64::from(*flops);
            *reg_mut(frame, *dst) = if f.single {
                Value::Float(f.op.eval_f32(av as f32, 0.0))
            } else {
                Value::Double(f.op.eval_f64(av, 0.0))
            };
        }
        // Type-specialised forms are straight-line too (blocks and precise
        // deferred-loop replays reach them here); immediate charging.
        insn @ (Insn::F64Bin { .. }
        | Insn::F64BinImm { .. }
        | Insn::F64BinAssign { .. }
        | Insn::F64BinImmAssign { .. }
        | Insn::F64Index { .. }
        | Insn::F64Store { .. }
        | Insn::F64MathCallImm { .. }) => step_spec(
            insn, frame, profile, memory, costs, max_cycles, watch, spans, None,
        )?,
        _ => unreachable!("not a straight-line instruction"),
    }
    Ok(())
}

/// The `MathCall` evaluation, shared with its fused-coercion form:
/// argument checks in `ops::exec_intrinsic` order, one baked charge, then
/// the host-math evaluation.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn math_eval(
    frame: &[Value],
    profile: &mut Profile,
    max_cycles: u64,
    a: u16,
    b: u16,
    f: intrinsics::MathFn,
    cycles: u64,
    flops: u64,
    name: &str,
    span: Span,
) -> RuntimeResult<Value> {
    let av = reg(frame, a)
        .as_f64()
        .ok_or_else(|| RuntimeError::Intrinsic {
            message: format!("`{name}` needs a numeric argument"),
            span,
        })?;
    let bv = if f.op.arity() == 2 {
        reg(frame, b)
            .as_f64()
            .ok_or_else(|| RuntimeError::Intrinsic {
                message: format!("`{name}` needs numeric arguments"),
                span,
            })?
    } else {
        0.0
    };
    ops::charge(&mut *profile, max_cycles, cycles)?;
    profile.flops += flops;
    Ok(if f.single {
        Value::Float(f.op.eval_f32(av as f32, bv as f32))
    } else {
        Value::Double(f.op.eval_f64(av, bv))
    })
}

/// The folded declaration coercion of a specialised instruction's generic
/// fallback: identity when the specialiser folded nothing
/// ([`NO_SPAN`] sentinel), otherwise the exact `ops::coerce` the base
/// `*Coerce` form would have run. Fast paths skip this call entirely —
/// their result is already `Double`, for which the coercion is identity.
#[inline(always)]
fn co_tail(v: Value, co_span: SpanId, spans: &[Span]) -> RuntimeResult<Value> {
    if co_span == NO_SPAN {
        Ok(v)
    } else {
        ops::coerce(v, DOUBLE, sp(spans, co_span))
    }
}

/// Execute one type-specialised instruction.
///
/// `defer` is `Some(acc)` inside a deferred-loop iteration whose budget
/// precheck passed: fast-path charges accumulate into `acc` instead of
/// the virtual clock (the iteration provably cannot exhaust the budget).
/// `None` charges immediately. Generic fallbacks always charge
/// immediately — they replay the exact unspecialised sequence, and under
/// the precheck those charges cannot fail either, so both modes stay
/// cycle-exact.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn step_spec(
    insn: &Insn,
    frame: &mut [Value],
    profile: &mut Profile,
    memory: &mut Memory,
    costs: ops::BinCosts,
    max_cycles: u64,
    watch: bool,
    spans: &[Span],
    mut defer: Option<&mut u64>,
) -> RuntimeResult<()> {
    // One fast-path charge: into the deferral accumulator, or the clock.
    macro_rules! pay {
        ($c:expr) => {
            match defer.as_deref_mut() {
                Some(acc) => *acc += $c,
                None => ops::charge(&mut *profile, max_cycles, $c)?,
            }
        };
    }
    // The four arithmetic ops the specialiser admits (`Rem` is excluded:
    // its generic path charges without counting a flop).
    macro_rules! f64_arith {
        ($op:expr, $a:expr, $b:expr) => {
            match $op {
                BinOp::Add => $a + $b,
                BinOp::Sub => $a - $b,
                BinOp::Mul => $a * $b,
                BinOp::Div => $a / $b,
                _ => unreachable!("specialised arithmetic op"),
            }
        };
    }
    match insn {
        Insn::F64Bin {
            op,
            dst,
            l,
            r,
            span,
            co_span,
        } => {
            let lv = reg(frame, *l);
            let rv = reg(frame, *r);
            if let (Value::Double(a), Value::Double(b)) = (lv, rv) {
                pay!(if *op == BinOp::Div {
                    costs.fp_div
                } else {
                    costs.fp_op
                });
                profile.flops += 1;
                *reg_mut(frame, *dst) = Value::Double(f64_arith!(*op, a, b));
            } else {
                let v = ops::apply_binary(
                    &mut *profile,
                    max_cycles,
                    costs,
                    *op,
                    lv,
                    rv,
                    sp(spans, *span),
                )?;
                *reg_mut(frame, *dst) = co_tail(v, *co_span, spans)?;
            }
        }
        Insn::F64BinImm {
            op,
            rev,
            dst,
            l,
            imm,
            imm_f64,
            span,
            co_span,
        } => {
            let lv = reg(frame, *l);
            if let Value::Double(a) = lv {
                pay!(if *op == BinOp::Div {
                    costs.fp_div
                } else {
                    costs.fp_op
                });
                profile.flops += 1;
                let (x, y) = if *rev { (*imm_f64, a) } else { (a, *imm_f64) };
                *reg_mut(frame, *dst) = Value::Double(f64_arith!(*op, x, y));
            } else {
                let (a_v, b_v) = if *rev { (*imm, lv) } else { (lv, *imm) };
                let v = ops::apply_binary(
                    &mut *profile,
                    max_cycles,
                    costs,
                    *op,
                    a_v,
                    b_v,
                    sp(spans, *span),
                )?;
                *reg_mut(frame, *dst) = co_tail(v, *co_span, spans)?;
            }
        }
        Insn::F64BinAssign {
            op,
            slot,
            l,
            r,
            span,
            asg_span,
        } => {
            let lv = reg(frame, *l);
            let rv = reg(frame, *r);
            if let (Value::Double(a), Value::Double(b), Value::Double(_)) =
                (lv, rv, reg(frame, *slot))
            {
                // Slot already holds a double, so `convert_assign` is
                // identity and the write needs no replay.
                pay!(if *op == BinOp::Div {
                    costs.fp_div
                } else {
                    costs.fp_op
                });
                profile.flops += 1;
                *reg_mut(frame, *slot) = Value::Double(f64_arith!(*op, a, b));
            } else {
                let v = ops::apply_binary(
                    &mut *profile,
                    max_cycles,
                    costs,
                    *op,
                    lv,
                    rv,
                    sp(spans, *span),
                )?;
                let cur = reg(frame, *slot);
                *reg_mut(frame, *slot) = ops::convert_assign(Some(cur), v, sp(spans, *asg_span))?;
            }
        }
        Insn::F64BinImmAssign {
            op,
            rev,
            slot,
            l,
            imm,
            imm_f64,
            span,
            asg_span,
        } => {
            let lv = reg(frame, *l);
            if let (Value::Double(a), Value::Double(_)) = (lv, reg(frame, *slot)) {
                pay!(if *op == BinOp::Div {
                    costs.fp_div
                } else {
                    costs.fp_op
                });
                profile.flops += 1;
                let (x, y) = if *rev { (*imm_f64, a) } else { (a, *imm_f64) };
                *reg_mut(frame, *slot) = Value::Double(f64_arith!(*op, x, y));
            } else {
                let (a_v, b_v) = if *rev { (*imm, lv) } else { (lv, *imm) };
                let v = ops::apply_binary(
                    &mut *profile,
                    max_cycles,
                    costs,
                    *op,
                    a_v,
                    b_v,
                    sp(spans, *span),
                )?;
                let cur = reg(frame, *slot);
                *reg_mut(frame, *slot) = ops::convert_assign(Some(cur), v, sp(spans, *asg_span))?;
            }
        }
        Insn::F64Index {
            dst,
            base: b,
            idx,
            cost,
            base_span,
            index_span,
            span,
            co_span,
        } => {
            let base_v = reg(frame, *b);
            let idx_v = reg(frame, *idx);
            // Pure probes first; any mismatch replays the whole generic
            // sequence with nothing yet charged or counted.
            if let (Value::Ptr(p), Some(i)) = (base_v, idx_v.as_i64()) {
                if memory.is_f64(p.buffer) {
                    pay!(*cost);
                    profile.int_ops += 1;
                    profile.loads += 1;
                    profile.bytes_loaded += 8;
                    // Bounds error after the charge — generic order.
                    let x = memory.load_f64(p.buffer, p.offset + i, sp(spans, *span), watch)?;
                    *reg_mut(frame, *dst) = Value::Double(x);
                    return Ok(());
                }
            }
            let v = index_load(
                profile,
                memory,
                watch,
                max_cycles,
                base_v,
                idx_v,
                *cost,
                sp(spans, *base_span),
                sp(spans, *index_span),
                sp(spans, *span),
            )?;
            *reg_mut(frame, *dst) = co_tail(v, *co_span, spans)?;
        }
        Insn::F64Store {
            addr,
            src,
            cost,
            span,
        } => {
            let p = reg(frame, *addr).as_ptr().expect("element address");
            let v = reg(frame, *src);
            match v {
                Value::Double(x) if memory.is_f64(p.buffer) => {
                    // Store first, charge after — generic `StoreElem` order
                    // for the bounds error.
                    memory.store_f64(p.buffer, p.offset, x, sp(spans, *span), watch)?;
                    pay!(*cost);
                    profile.stores += 1;
                    profile.bytes_stored += 8;
                }
                _ => {
                    memory.store(p.buffer, p.offset, v, sp(spans, *span), watch)?;
                    ops::charge(&mut *profile, max_cycles, *cost)?;
                    profile.stores += 1;
                    profile.bytes_stored += memory.elem_bytes(p.buffer);
                }
            }
        }
        Insn::F64MathCallImm {
            op,
            rev,
            dst,
            l,
            imm,
            imm_f64,
            f,
            cycles,
            flops,
            bin_span,
        } => {
            let lv = reg(frame, *l);
            if let Value::Double(a) = lv {
                let bin_cost = if *op == BinOp::Div {
                    costs.fp_div
                } else {
                    costs.fp_op
                };
                // One combined charge for binop + intrinsic: exact because
                // `charge(c1); charge(c2)` fails iff `charge(c1 + c2)` does,
                // at the same clock value, and the budget error carries
                // only the limit.
                pay!(bin_cost + u64::from(*cycles));
                profile.flops += 1 + u64::from(*flops);
                let (x, y) = if *rev { (*imm_f64, a) } else { (a, *imm_f64) };
                let t = f64_arith!(*op, x, y);
                // The specialiser only emits this form for `!f.single`.
                *reg_mut(frame, *dst) = Value::Double(f.op.eval_f64(t, 0.0));
            } else {
                // Generic `MathCallImm` replay, verbatim.
                let (a_v, b_v) = if *rev { (*imm, lv) } else { (lv, *imm) };
                let t = ops::apply_binary(
                    &mut *profile,
                    max_cycles,
                    costs,
                    *op,
                    a_v,
                    b_v,
                    sp(spans, *bin_span),
                )?;
                let av = t
                    .as_f64()
                    .unwrap_or_else(|| unreachable!("fused math argument is numeric"));
                ops::charge(&mut *profile, max_cycles, u64::from(*cycles))?;
                profile.flops += u64::from(*flops);
                *reg_mut(frame, *dst) = if f.single {
                    Value::Float(f.op.eval_f32(av as f32, 0.0))
                } else {
                    Value::Double(f.op.eval_f64(av, 0.0))
                };
            }
        }
        _ => unreachable!("not a type-specialised instruction"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_minicpp::parse_module;

    fn run_vm(src: &str) -> (Value, Profile) {
        let m = parse_module(src, "t").unwrap();
        let mut vm = Vm::new(&m, RunConfig::default());
        let v = vm.run_main().unwrap();
        let (p, _) = vm.into_parts();
        (v, p)
    }

    #[test]
    fn basic_arithmetic_and_loops() {
        let (v, p) =
            run_vm("int main() { int s = 0; for (int i = 1; i <= 10; i++) { s += i; } return s; }");
        assert_eq!(v, Value::Int(55));
        assert!(p.total_cycles > 0);
        assert_eq!(p.loop_stats.len(), 1);
        assert_eq!(p.loop_stats.values().next().unwrap().iterations, 10);
    }

    #[test]
    fn globals_functions_and_memory() {
        let (v, _) = run_vm(
            "int scale = 3;\
             int mul(int x) { return x * scale; }\
             int main() {\
               double* a = alloc_double(4);\
               for (int i = 0; i < 4; i++) { a[i] = (double)mul(i); }\
               double s = 0.0;\
               for (int i = 0; i < 4; i++) { s += a[i]; }\
               return (int)s;\
             }",
        );
        assert_eq!(v, Value::Int(18));
    }

    #[test]
    fn return_from_nested_loops_records_stats() {
        let (v, p) = run_vm(
            "int main() {\
               for (int i = 0; i < 10; i++) {\
                 for (int j = 0; j < 10; j++) {\
                   if (i * 10 + j == 23) { return i * 10 + j; }\
                 }\
               }\
               return -1;\
             }",
        );
        assert_eq!(v, Value::Int(23));
        // Both loops have stats despite the early return.
        assert_eq!(p.loop_stats.len(), 2);
    }
}
