//! Runtime values and numeric coercion rules.
//!
//! MiniC++ follows C-like promotion: mixed `int`/floating arithmetic promotes
//! to the floating operand; `float op double` promotes to `double`. Keeping
//! `float` as a true `f32` matters: the "Employ SP" transforms in the paper
//! trade precision for device throughput, and the interpreter makes that
//! trade observable.

use crate::memory::BufferId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A pointer value: which allocation it points into and the element offset.
/// Provenance is never erased, which is what makes the dynamic alias
/// analysis exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pointer {
    pub buffer: BufferId,
    /// Offset in *elements* from the start of the allocation.
    pub offset: i64,
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Int(i64),
    Float(f32),
    Double(f64),
    Bool(bool),
    Ptr(Pointer),
    /// Result of `void` calls.
    Unit,
}

impl Value {
    /// Truthiness for conditions; ints/floats are C-truthy.
    pub fn truthy(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(v) => Some(*v != 0),
            Value::Float(v) => Some(*v != 0.0),
            Value::Double(v) => Some(*v != 0.0),
            Value::Ptr(_) | Value::Unit => None,
        }
    }

    /// Numeric value as f64 (for promotion), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(f64::from(*v)),
            Value::Double(v) => Some(*v),
            Value::Bool(b) => Some(f64::from(u8::from(*b))),
            _ => None,
        }
    }

    /// Integer value, truncating floats (C cast semantics).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            Value::Double(v) => Some(*v as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    pub fn as_ptr(&self) -> Option<Pointer> {
        match self {
            Value::Ptr(p) => Some(*p),
            _ => None,
        }
    }

    /// True if either operand is floating, i.e. the operation counts as a
    /// FLOP for arithmetic-intensity purposes.
    pub fn is_floating(&self) -> bool {
        matches!(self, Value::Float(_) | Value::Double(_))
    }

    /// A short type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Double(_) => "double",
            Value::Bool(_) => "bool",
            Value::Ptr(_) => "pointer",
            Value::Unit => "void",
        }
    }
}

/// The promotion rank of a numeric value (higher wins in mixed arithmetic).
fn rank(v: &Value) -> u8 {
    match v {
        Value::Bool(_) => 0,
        Value::Int(_) => 1,
        Value::Float(_) => 2,
        Value::Double(_) => 3,
        _ => 4,
    }
}

/// The common type two operands promote to, following C arithmetic
/// conversions restricted to MiniC++'s types.
pub fn promote(lhs: &Value, rhs: &Value) -> Option<Promoted> {
    let hi = rank(lhs).max(rank(rhs));
    match hi {
        0 | 1 => Some(Promoted::Int(lhs.as_i64()?, rhs.as_i64()?)),
        2 => Some(Promoted::Float(lhs.as_f64()? as f32, rhs.as_f64()? as f32)),
        3 => Some(Promoted::Double(lhs.as_f64()?, rhs.as_f64()?)),
        _ => None,
    }
}

/// A pair of operands after promotion to their common type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Promoted {
    Int(i64, i64),
    Float(f32, f32),
    Double(f64, f64),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}f"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Ptr(p) => write!(f, "&{}[{}]", p.buffer, p.offset),
            Value::Unit => write!(f, "()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_follows_c_rules() {
        assert_eq!(
            promote(&Value::Int(2), &Value::Double(0.5)),
            Some(Promoted::Double(2.0, 0.5))
        );
        assert_eq!(
            promote(&Value::Int(2), &Value::Float(0.5)),
            Some(Promoted::Float(2.0, 0.5))
        );
        assert_eq!(
            promote(&Value::Float(1.0), &Value::Double(2.0)),
            Some(Promoted::Double(1.0, 2.0))
        );
        assert_eq!(
            promote(&Value::Int(1), &Value::Int(2)),
            Some(Promoted::Int(1, 2))
        );
        assert_eq!(promote(&Value::Unit, &Value::Int(1)), None);
    }

    #[test]
    fn float_stays_single_precision() {
        // 0.1f + 0.2f in f32 differs from the f64 result — the SP transform
        // is numerically observable.
        let Promoted::Float(a, b) = promote(&Value::Float(0.1), &Value::Float(0.2)).unwrap() else {
            panic!()
        };
        let sum32 = f64::from(a + b);
        let sum64 = 0.1f64 + 0.2f64;
        assert_ne!(sum32, sum64);
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::Int(0).truthy(), Some(false));
        assert_eq!(Value::Double(0.5).truthy(), Some(true));
        assert_eq!(Value::Unit.truthy(), None);
    }

    #[test]
    fn casts_truncate() {
        assert_eq!(Value::Double(2.9).as_i64(), Some(2));
        assert_eq!(Value::Double(-2.9).as_i64(), Some(-2));
    }
}
