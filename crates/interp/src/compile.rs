//! One-pass compiler: MiniC++ AST → flat bytecode for the [`crate::vm::Vm`].
//!
//! The lowering buys three things the tree-walker pays for on every visit:
//!
//! * **slot-resolved locals** — [`psa_minicpp::scopes`] turns the runtime
//!   scope-chain walk into a compile-time frame index, so variable access is
//!   `locals[base + slot]` with zero hashing and zero string traffic;
//! * **pre-bound call targets** — every call site is resolved once to a
//!   user-function index or an [`Intrinsic`], following the tree-walker's
//!   lookup order (user functions shadow intrinsics);
//! * **baked cycle costs** — each instruction carries the virtual-cycle
//!   charge the cost model assigns it, computed here so the interpreter
//!   loop never consults (or clones) the [`CostModel`].
//!
//! Costs that the tree-walker charges as one combined `charge()` call (the
//! for-loop test's `int_op + branch`, an indexed load's `int_op + load`)
//! are baked combined too, so the two engines' virtual clocks agree at
//! every instruction boundary, including the exact cycle at which a budget
//! exhaustion triggers.
//!
//! Names that do not resolve — unbound identifiers, assignment to a
//! non-lvalue — compile to [`Insn::Raise`] carrying the exact
//! [`RuntimeError`] the tree-walker would produce at that point, placed so
//! that any side effects sequenced before the error still happen.

use crate::error::RuntimeError;
use crate::eval::RunConfig;
use crate::intrinsics::{self, Intrinsic};
use crate::profile::CostModel;
use crate::value::{Pointer, Value};
use psa_minicpp::ast::*;
use psa_minicpp::scopes::{resolve_function, SlotMap};
use psa_minicpp::Span;
use std::collections::HashMap;

/// Resolved target of one call site.
#[derive(Debug, Clone)]
pub(crate) enum CallTarget {
    /// Index into [`Program::funcs`].
    User(u16),
    Intrinsic(Intrinsic),
    /// Neither a user function nor an intrinsic: unbound at runtime.
    Unknown,
}

/// One static call site: target plus the argument count and span of the
/// call expression (arity errors are reported by the callee at runtime).
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    pub name: Box<str>,
    pub target: CallTarget,
    pub argc: usize,
    pub span: Span,
}

/// A compiled function parameter (binding still coerces at call time).
#[derive(Debug, Clone)]
pub(crate) struct CompiledParam {
    pub name: String,
    pub ty: Type,
    pub span: Span,
}

/// One compiled function body.
#[derive(Debug)]
pub(crate) struct CompiledFn {
    pub name: String,
    pub params: Vec<CompiledParam>,
    /// Frame slots this function needs (includes the parameters).
    pub locals: usize,
    /// Baked `config.watch_function == name`.
    pub watched: bool,
    pub code: Vec<Insn>,
}

/// A whole module, compiled.
#[derive(Debug)]
pub struct Program {
    pub(crate) funcs: Vec<CompiledFn>,
    /// First definition wins, like [`Module::function`].
    pub(crate) fn_by_name: HashMap<String, u16>,
    /// Global variable names, one entry per distinct name (redeclaration
    /// reuses the slot, mirroring the tree-walker's by-name map).
    pub(crate) global_names: Vec<Box<str>>,
    /// Initialiser chunk for module globals; runs once before `main`.
    pub(crate) globals_init: Vec<Insn>,
    pub(crate) globals_init_locals: usize,
    pub(crate) call_sites: Vec<CallSite>,
}

/// Bytecode instructions. `cost` fields are virtual cycles baked from the
/// cost model at compile time.
#[derive(Debug, Clone)]
pub(crate) enum Insn {
    /// Push a constant.
    Const(Value),
    /// Duplicate the top of stack.
    Dup,
    /// Swap the top two stack values.
    Swap,
    /// Discard the top of stack (expression statements).
    Pop,
    /// Push `locals[base + slot]`.
    LoadLocal(u16),
    /// Pop into `locals[base + slot]` (declaration: no conversion).
    StoreLocal(u16),
    /// Push global `gidx`; unbound error if not yet initialised.
    LoadGlobal { gidx: u16, span: Span },
    /// Copy a just-initialised local into its global slot (init chunk).
    CopyLocalToGlobal { slot: u16, gidx: u16 },
    /// Pop and assign to a local with C assignment conversion.
    AssignLocal { slot: u16, span: Span },
    /// Pop and assign to a global with C assignment conversion; unbound
    /// error if the global is not yet initialised.
    AssignGlobal { gidx: u16, span: Span },
    /// Pop, coerce to `ty` (declaration initialiser — no charge).
    Coerce { ty: Type, span: Span },
    /// Pop, charge `cost`, coerce to `ty` (cast expression).
    Cast { ty: Type, cost: u64, span: Span },
    /// Unary operator (charging inside `ops::apply_unary`).
    Un { op: UnOp, span: Span },
    /// Binary operator; pops rhs then lhs.
    Bin { op: BinOp, span: Span },
    /// Binary operator; pops lhs then rhs (compound assignment, where the
    /// old value is computed after — and stacked above — the rhs).
    BinRev { op: BinOp, span: Span },
    /// Unconditional jump.
    Jump(u32),
    /// Pop a condition: charge, truthiness-check, jump if false.
    JumpIfFalse { target: u32, cost: u64, span: Span },
    /// `&&`: pop lhs condition (charge + check); on false push `false` and
    /// jump past the rhs.
    AndShort { target: u32, cost: u64, span: Span },
    /// `||`: pop lhs condition (charge + check); on true push `true` and
    /// jump past the rhs.
    OrShort { target: u32, cost: u64, span: Span },
    /// Pop a condition (charge + check), push it as a `Bool` (rhs of a
    /// short-circuit operator).
    ToBool { cost: u64, span: Span },
    /// Indexed load `base[index]`: pops index then base. `cost` combines
    /// address arithmetic and the load.
    Index {
        cost: u64,
        base_span: Span,
        index_span: Span,
        span: Span,
    },
    /// Address of `base[index]` as a pointer: pops index then base.
    /// `cost` is the address arithmetic.
    IndexAddr {
        cost: u64,
        base_span: Span,
        index_span: Span,
    },
    /// Pop a pointer, push the element it addresses (compound assignment
    /// read; load first, charge after, like the tree-walker).
    LoadElem { cost: u64, span: Span },
    /// Pop value then pointer, store through it.
    StoreElem { cost: u64, span: Span },
    /// Pop a length, allocate a named buffer, push the pointer.
    AllocArray {
        scalar: Scalar,
        name: Box<str>,
        span: Span,
    },
    /// Call through `call_sites[idx]`; arguments are on the stack.
    Call(u32),
    /// A math intrinsic called with the correct arity: arguments popped
    /// straight off the stack, cycle cost and FLOP count baked at compile
    /// time. `name` feeds the tree-walker's error messages.
    MathCall {
        f: intrinsics::MathFn,
        cycles: u64,
        flops: u64,
        name: Box<str>,
        span: Span,
    },
    /// Return (popping the value if `has_value`), recording stats for any
    /// loops still open in this frame.
    Ret { has_value: bool },
    /// Open a loop-stats context for loop `id`.
    LoopEnter { id: NodeId },
    /// Close the innermost loop context and record its stats.
    LoopExit,
    /// Pop the init value, int-check it, bind the induction variable.
    /// `bound == false` raises the tree-walker's unbound error instead.
    ForInit {
        slot: u16,
        bound: bool,
        name: Box<str>,
        span: Span,
    },
    /// Pop the bound, charge, compare against the induction variable and
    /// either count an iteration or jump to `exit`. Also latches the
    /// iteration's start value of the induction variable.
    ForTest {
        slot: u16,
        cond_op: BinOp,
        exit: u32,
        cost: u64,
        span: Span,
    },
    /// Pop the step, advance the induction variable from its latched
    /// start-of-iteration value, charge.
    ForStep {
        slot: u16,
        negative: bool,
        cost: u64,
        span: Span,
    },
    /// Pop the condition, charge, check; count an iteration or jump out.
    WhileTest { exit: u32, cost: u64, span: Span },
    /// Raise a pre-built runtime error (unbound name, non-lvalue target).
    Raise(Box<RuntimeError>),
}

impl Program {
    /// Compile a module. `config` supplies the cost model baked into
    /// instructions and the watched-function name baked into functions.
    pub fn compile(module: &Module, config: &RunConfig) -> Program {
        let mut fn_by_name: HashMap<String, u16> = HashMap::new();
        let mut fn_items: Vec<&Function> = Vec::new();
        for item in &module.items {
            if let Item::Function(f) = item {
                if !fn_by_name.contains_key(&f.name) {
                    fn_by_name.insert(f.name.clone(), fn_items.len() as u16);
                    fn_items.push(f);
                }
            }
        }

        // Global slots: one per distinct name, first occurrence fixes the
        // index (redeclaration writes the same slot, like a by-name map).
        let mut global_idx: HashMap<String, u16> = HashMap::new();
        let mut global_names: Vec<Box<str>> = Vec::new();
        for item in &module.items {
            if let Item::Global(stmt) = item {
                if let StmtKind::Decl(d) = &stmt.kind {
                    global_idx.entry(d.name.clone()).or_insert_with(|| {
                        global_names.push(d.name.clone().into_boxed_str());
                        (global_names.len() - 1) as u16
                    });
                }
            }
        }

        let mut call_sites = Vec::new();

        // The globals-initialiser chunk mirrors `Interpreter::init_globals`:
        // one shared frame, each declaration compiled in order, its value
        // copied to the global slot immediately (so later initialisers can
        // observe earlier globals through their frame slots).
        let mut init = Compiler {
            cm: &config.cost_model,
            fn_by_name: &fn_by_name,
            global_idx: &global_idx,
            call_sites: &mut call_sites,
            names: NameResolution::InitChunk {
                scope: HashMap::new(),
                next_slot: 0,
            },
            code: Vec::new(),
            loops: Vec::new(),
        };
        for item in &module.items {
            if let Item::Global(stmt) = item {
                if let StmtKind::Decl(d) = &stmt.kind {
                    let slot = init.compile_decl(d);
                    let gidx = global_idx[&d.name];
                    init.code.push(Insn::CopyLocalToGlobal { slot, gidx });
                }
            }
        }
        init.code.push(Insn::Ret { has_value: false });
        let globals_init = std::mem::take(&mut init.code);
        let globals_init_locals = match &init.names {
            NameResolution::InitChunk { next_slot, .. } => *next_slot as usize,
            _ => unreachable!(),
        };
        drop(init);

        let mut funcs = Vec::with_capacity(fn_items.len());
        for f in &fn_items {
            let slots = resolve_function(f);
            let mut c = Compiler {
                cm: &config.cost_model,
                fn_by_name: &fn_by_name,
                global_idx: &global_idx,
                call_sites: &mut call_sites,
                names: NameResolution::Func(&slots),
                code: Vec::new(),
                loops: Vec::new(),
            };
            c.compile_block(&f.body);
            c.code.push(Insn::Ret { has_value: false });
            let code = std::mem::take(&mut c.code);
            drop(c);
            funcs.push(CompiledFn {
                name: f.name.clone(),
                params: f
                    .params
                    .iter()
                    .map(|p| CompiledParam {
                        name: p.name.clone(),
                        ty: p.ty,
                        span: p.span,
                    })
                    .collect(),
                locals: slots.locals,
                watched: config.watch_function.as_deref() == Some(f.name.as_str()),
                code,
            });
        }

        Program {
            funcs,
            fn_by_name,
            global_names,
            globals_init,
            globals_init_locals,
            call_sites,
        }
    }
}

/// How the compiler maps identifier uses to slots.
enum NameResolution<'a> {
    /// Inside a function: the precomputed per-`NodeId` slot map.
    Func(&'a SlotMap),
    /// Inside the globals-init chunk: a by-name scope built as declarations
    /// are compiled (later initialisers see earlier declarations).
    InitChunk {
        scope: HashMap<String, u16>,
        next_slot: u16,
    },
}

struct Compiler<'a> {
    cm: &'a CostModel,
    fn_by_name: &'a HashMap<String, u16>,
    global_idx: &'a HashMap<String, u16>,
    call_sites: &'a mut Vec<CallSite>,
    names: NameResolution<'a>,
    code: Vec<Insn>,
    /// Innermost-last stack of open loops, holding jump indices to patch.
    loops: Vec<OpenLoop>,
}

#[derive(Default)]
struct OpenLoop {
    breaks: Vec<usize>,
    continues: Vec<usize>,
}

impl<'a> Compiler<'a> {
    fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    /// Slot an identifier use reads, if it is a local here.
    fn ident_slot(&self, e: &Expr, name: &str) -> Option<u16> {
        match &self.names {
            NameResolution::Func(slots) => slots.ident_slot(e.id),
            NameResolution::InitChunk { scope, .. } => scope.get(name).copied(),
        }
    }

    /// Slot a declaration writes (allocating one in the init chunk, where a
    /// redeclared name reuses its slot like a by-name map overwrite).
    fn decl_slot(&mut self, d: &VarDecl) -> u16 {
        match &mut self.names {
            NameResolution::Func(slots) => slots
                .decl_slot(d.id)
                .expect("declaration resolved by scope analysis"),
            NameResolution::InitChunk { scope, next_slot } => {
                *scope.entry(d.name.clone()).or_insert_with(|| {
                    let s = *next_slot;
                    *next_slot += 1;
                    s
                })
            }
        }
    }

    fn unbound(&mut self, name: &str, span: Span) {
        self.code.push(Insn::Raise(Box::new(RuntimeError::Unbound {
            name: name.to_string(),
            span,
        })));
    }

    // --------------------------------------------------------------
    // Statements
    // --------------------------------------------------------------

    fn compile_block(&mut self, b: &Block) {
        for stmt in &b.stmts {
            self.compile_stmt(stmt);
        }
    }

    fn compile_stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Decl(d) => {
                self.compile_decl(d);
            }
            StmtKind::Assign { target, op, value } => self.compile_assign(target, *op, value),
            StmtKind::Expr(e) => {
                self.compile_expr(e);
                self.code.push(Insn::Pop);
            }
            StmtKind::If { cond, then, els } => {
                self.compile_expr(cond);
                let test = self.code.len();
                self.code.push(Insn::JumpIfFalse {
                    target: 0,
                    cost: self.cm.branch,
                    span: cond.span,
                });
                self.compile_block(then);
                match els {
                    Some(els) => {
                        let skip_else = self.code.len();
                        self.code.push(Insn::Jump(0));
                        let else_pc = self.pc();
                        self.patch_jump(test, else_pc);
                        self.compile_block(els);
                        let end = self.pc();
                        self.patch_jump(skip_else, end);
                    }
                    None => {
                        let end = self.pc();
                        self.patch_jump(test, end);
                    }
                }
            }
            StmtKind::For(l) => self.compile_for(l),
            StmtKind::While { cond, body } => self.compile_while(stmt.id, cond, body),
            StmtKind::Return(e) => match e {
                Some(e) => {
                    self.compile_expr(e);
                    self.code.push(Insn::Ret { has_value: true });
                }
                None => self.code.push(Insn::Ret { has_value: false }),
            },
            StmtKind::Break => match self.loops.last_mut() {
                Some(l) => {
                    l.breaks.push(self.code.len());
                    self.code.push(Insn::Jump(0));
                }
                // `break` outside any loop: the tree-walker's `Flow::Break`
                // propagates out of the function body, returning unit.
                None => self.code.push(Insn::Ret { has_value: false }),
            },
            StmtKind::Continue => match self.loops.last_mut() {
                Some(l) => {
                    l.continues.push(self.code.len());
                    self.code.push(Insn::Jump(0));
                }
                None => self.code.push(Insn::Ret { has_value: false }),
            },
            StmtKind::Block(b) => self.compile_block(b),
        }
    }

    /// Compile a declaration; returns the slot it wrote.
    fn compile_decl(&mut self, d: &VarDecl) -> u16 {
        if let Some(len_expr) = &d.array_len {
            self.compile_expr(len_expr);
            let slot = self.decl_slot(d);
            self.code.push(Insn::AllocArray {
                scalar: d.ty.scalar,
                name: d.name.clone().into_boxed_str(),
                span: d.span,
            });
            self.code.push(Insn::StoreLocal(slot));
            return slot;
        }
        match &d.init {
            Some(init) => {
                self.compile_expr(init);
                if !d.ty.is_pointer() {
                    self.code.push(Insn::Coerce {
                        ty: d.ty,
                        span: d.span,
                    });
                }
            }
            None => {
                let v = match (d.ty.is_pointer(), d.ty.scalar) {
                    (true, _) => Value::Ptr(Pointer {
                        buffer: crate::BufferId(u32::MAX),
                        offset: 0,
                    }),
                    (_, Scalar::Int) => Value::Int(0),
                    (_, Scalar::Float) => Value::Float(0.0),
                    (_, Scalar::Double) => Value::Double(0.0),
                    (_, Scalar::Bool) => Value::Bool(false),
                    (_, Scalar::Void) => Value::Unit,
                };
                self.code.push(Insn::Const(v));
            }
        }
        let slot = self.decl_slot(d);
        self.code.push(Insn::StoreLocal(slot));
        slot
    }

    fn compile_assign(&mut self, target: &Expr, op: AssignOp, value: &Expr) {
        match &target.kind {
            ExprKind::Ident(name) => {
                // The rhs is evaluated first in all cases.
                self.compile_expr(value);
                let slot = self.ident_slot(target, name);
                let gidx = match slot {
                    Some(_) => None,
                    None => self.global_idx.get(name).copied(),
                };
                if slot.is_none() && gidx.is_none() {
                    // Never bound: the tree-walker reports unbound after
                    // evaluating the rhs (compound fails at the old-value
                    // read, simple at the final set — same error).
                    self.unbound(name, target.span);
                    return;
                }
                if let Some(bop) = op.bin_op() {
                    match (slot, gidx) {
                        (Some(s), _) => self.code.push(Insn::LoadLocal(s)),
                        (None, Some(g)) => self.code.push(Insn::LoadGlobal {
                            gidx: g,
                            span: target.span,
                        }),
                        _ => unreachable!(),
                    }
                    self.code.push(Insn::BinRev {
                        op: bop,
                        span: target.span,
                    });
                }
                match (slot, gidx) {
                    (Some(s), _) => self.code.push(Insn::AssignLocal {
                        slot: s,
                        span: target.span,
                    }),
                    (None, Some(g)) => self.code.push(Insn::AssignGlobal {
                        gidx: g,
                        span: target.span,
                    }),
                    _ => unreachable!(),
                }
            }
            ExprKind::Index { base, index } => {
                self.compile_expr(base);
                self.compile_expr(index);
                self.code.push(Insn::IndexAddr {
                    cost: self.cm.int_op,
                    base_span: base.span,
                    index_span: index.span,
                });
                match op.bin_op() {
                    None => {
                        self.compile_expr(value);
                    }
                    Some(bop) => {
                        // [ptr] → [ptr ptr rhs] → [ptr rhs ptr] →
                        // [ptr rhs old] → [ptr new]; rhs evaluates before
                        // the old value loads, like the tree-walker.
                        self.code.push(Insn::Dup);
                        self.compile_expr(value);
                        self.code.push(Insn::Swap);
                        self.code.push(Insn::LoadElem {
                            cost: self.cm.load,
                            span: target.span,
                        });
                        self.code.push(Insn::BinRev {
                            op: bop,
                            span: target.span,
                        });
                    }
                }
                self.code.push(Insn::StoreElem {
                    cost: self.cm.store,
                    span: target.span,
                });
            }
            _ => {
                // Not an lvalue: the tree-walker errors without evaluating
                // either side.
                self.code.push(Insn::Raise(Box::new(RuntimeError::Type {
                    message: "assignment target is not an lvalue".into(),
                    span: target.span,
                })));
            }
        }
    }

    fn compile_for(&mut self, l: &ForLoop) {
        self.code.push(Insn::LoopEnter { id: l.id });
        self.compile_expr(&l.init);
        let (slot, bound) = match &self.names {
            NameResolution::Func(slots) => {
                let v = slots.for_var(l.id).expect("for loop resolved");
                (v.slot, v.bound)
            }
            NameResolution::InitChunk { scope, next_slot } => {
                // Globals are initialised by declarations only; a loop here
                // can only appear inside nested expressions, which MiniC++
                // does not allow — but resolve defensively by name.
                match scope.get(&l.var) {
                    Some(&s) => (s, true),
                    None => (*next_slot, false),
                }
            }
        };
        self.code.push(Insn::ForInit {
            slot,
            bound,
            name: l.var.clone().into_boxed_str(),
            span: l.span,
        });
        self.loops.push(OpenLoop::default());
        let top = self.pc();
        self.compile_expr(&l.bound);
        let test = self.code.len();
        self.code.push(Insn::ForTest {
            slot,
            cond_op: l.cond_op,
            exit: 0,
            cost: self.cm.int_op + self.cm.branch,
            span: l.span,
        });
        self.compile_block(&l.body);
        let step_pc = self.pc();
        self.compile_expr(&l.step);
        self.code.push(Insn::ForStep {
            slot,
            negative: l.step_negative,
            cost: self.cm.int_op,
            span: l.span,
        });
        self.code.push(Insn::Jump(top));
        let exit = self.pc();
        self.code.push(Insn::LoopExit);
        self.patch_jump(test, exit);
        let open = self.loops.pop().expect("loop open");
        for pc in open.breaks {
            self.patch_jump(pc, exit);
        }
        for pc in open.continues {
            self.patch_jump(pc, step_pc);
        }
    }

    fn compile_while(&mut self, id: NodeId, cond: &Expr, body: &Block) {
        self.code.push(Insn::LoopEnter { id });
        self.loops.push(OpenLoop::default());
        let top = self.pc();
        self.compile_expr(cond);
        let test = self.code.len();
        self.code.push(Insn::WhileTest {
            exit: 0,
            cost: self.cm.branch,
            span: cond.span,
        });
        self.compile_block(body);
        self.code.push(Insn::Jump(top));
        let exit = self.pc();
        self.code.push(Insn::LoopExit);
        self.patch_jump(test, exit);
        let open = self.loops.pop().expect("loop open");
        for pc in open.breaks {
            self.patch_jump(pc, exit);
        }
        for pc in open.continues {
            self.patch_jump(pc, top);
        }
    }

    fn patch_jump(&mut self, at: usize, to: u32) {
        match &mut self.code[at] {
            Insn::Jump(t) => *t = to,
            Insn::JumpIfFalse { target, .. }
            | Insn::AndShort { target, .. }
            | Insn::OrShort { target, .. } => *target = to,
            Insn::ForTest { exit, .. } | Insn::WhileTest { exit, .. } => *exit = to,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    // --------------------------------------------------------------
    // Expressions
    // --------------------------------------------------------------

    fn compile_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(v) => self.code.push(Insn::Const(Value::Int(*v))),
            ExprKind::FloatLit { value, single } => self.code.push(Insn::Const(if *single {
                Value::Float(*value as f32)
            } else {
                Value::Double(*value)
            })),
            ExprKind::BoolLit(b) => self.code.push(Insn::Const(Value::Bool(*b))),
            ExprKind::Ident(name) => match self.ident_slot(e, name) {
                Some(slot) => self.code.push(Insn::LoadLocal(slot)),
                None => match self.global_idx.get(name) {
                    Some(&gidx) => self.code.push(Insn::LoadGlobal { gidx, span: e.span }),
                    None => self.unbound(name, e.span),
                },
            },
            ExprKind::Unary { op, expr } => {
                self.compile_expr(expr);
                self.code.push(Insn::Un {
                    op: *op,
                    span: e.span,
                });
            }
            ExprKind::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    self.compile_expr(lhs);
                    let short = self.code.len();
                    self.code.push(Insn::AndShort {
                        target: 0,
                        cost: self.cm.branch,
                        span: lhs.span,
                    });
                    self.compile_expr(rhs);
                    self.code.push(Insn::ToBool {
                        cost: self.cm.branch,
                        span: rhs.span,
                    });
                    let end = self.pc();
                    self.patch_jump(short, end);
                }
                BinOp::Or => {
                    self.compile_expr(lhs);
                    let short = self.code.len();
                    self.code.push(Insn::OrShort {
                        target: 0,
                        cost: self.cm.branch,
                        span: lhs.span,
                    });
                    self.compile_expr(rhs);
                    self.code.push(Insn::ToBool {
                        cost: self.cm.branch,
                        span: rhs.span,
                    });
                    let end = self.pc();
                    self.patch_jump(short, end);
                }
                _ => {
                    self.compile_expr(lhs);
                    self.compile_expr(rhs);
                    self.code.push(Insn::Bin {
                        op: *op,
                        span: e.span,
                    });
                }
            },
            ExprKind::Call { callee, args } => {
                for a in args {
                    self.compile_expr(a);
                }
                // Tree-walker lookup order: user functions shadow
                // intrinsics; unknown names are unbound at call time.
                let target = match self.fn_by_name.get(callee) {
                    Some(&idx) => CallTarget::User(idx),
                    None => match intrinsics::lookup(callee) {
                        Some(i) => CallTarget::Intrinsic(i),
                        None => CallTarget::Unknown,
                    },
                };
                // Arity-correct math calls get a dedicated instruction with
                // the cost-class lookup resolved now; wrong-arity calls fall
                // through to the generic path for its exact error.
                if let CallTarget::Intrinsic(Intrinsic::Math(f)) = target {
                    if args.len() == f.op.arity() {
                        let (cycles, flops) = match f.op.cost_class() {
                            intrinsics::MathCost::Cheap => (self.cm.fp_op, 1),
                            intrinsics::MathCost::Sqrt => (self.cm.sqrt, self.cm.sqrt_flops),
                            intrinsics::MathCost::Transcendental => {
                                (self.cm.transcendental, self.cm.transcendental_flops)
                            }
                        };
                        self.code.push(Insn::MathCall {
                            f,
                            cycles,
                            flops,
                            name: callee.clone().into_boxed_str(),
                            span: e.span,
                        });
                        return;
                    }
                }
                let site = self.call_sites.len() as u32;
                self.call_sites.push(CallSite {
                    name: callee.clone().into_boxed_str(),
                    target,
                    argc: args.len(),
                    span: e.span,
                });
                self.code.push(Insn::Call(site));
            }
            ExprKind::Index { base, index } => {
                self.compile_expr(base);
                self.compile_expr(index);
                self.code.push(Insn::Index {
                    cost: self.cm.int_op + self.cm.load,
                    base_span: base.span,
                    index_span: index.span,
                    span: e.span,
                });
            }
            ExprKind::Cast { ty, expr } => {
                self.compile_expr(expr);
                self.code.push(Insn::Cast {
                    ty: *ty,
                    cost: self.cm.fp_op,
                    span: e.span,
                });
            }
            ExprKind::Ternary { cond, then, els } => {
                self.compile_expr(cond);
                let test = self.code.len();
                self.code.push(Insn::JumpIfFalse {
                    target: 0,
                    cost: self.cm.branch,
                    span: cond.span,
                });
                self.compile_expr(then);
                let skip_else = self.code.len();
                self.code.push(Insn::Jump(0));
                let else_pc = self.pc();
                self.patch_jump(test, else_pc);
                self.compile_expr(els);
                let end = self.pc();
                self.patch_jump(skip_else, end);
            }
        }
    }
}
