//! One-pass compiler: MiniC++ AST → register-addressed code for the
//! [`crate::vm::Vm`].
//!
//! The lowering targets a **register machine**: every instruction names its
//! source and destination registers explicitly, so the interpreter loop
//! moves no operand-stack traffic at all. A function's register file is
//!
//! ```text
//! [ 0 .. locals )          frame slots, assigned by psa_minicpp::scopes
//! [ locals .. regs )       expression temporaries, stack-disciplined
//! ```
//!
//! Locals are already slot-resolved by [`psa_minicpp::scopes`], so register
//! allocation reduces to handing out temporaries above the slots: each
//! expression node frees its operands' temporaries and claims the lowest
//! free register for its result (reads always happen before the write, so
//! `dst` may alias an operand). A local variable read compiles to *nothing*
//! — the slot itself is the operand register.
//!
//! On top of the flat lowering the lowering buys, in order:
//!
//! * **pre-bound call targets** — every call site is resolved once to a
//!   user-function index or an [`Intrinsic`], following the tree-walker's
//!   lookup order (user functions shadow intrinsics);
//! * **baked cycle costs** — each instruction carries the virtual-cycle
//!   charge the cost model assigns it, computed here so the interpreter
//!   loop never consults (or clones) the [`CostModel`];
//! * **immediate operands** — a literal operand of a binary op is baked
//!   into the instruction ([`Insn::BinImm`]/[`Insn::BinImmRev`]) instead of
//!   being materialised through a register;
//! * **superinstructions** — a peephole pass ([`crate::peephole`]) fuses
//!   hot adjacent pairs (compare+branch, load+binop, binop+assign,
//!   step+jump) into single dispatches, reusing the combined cycle charges
//!   this module already bakes.
//!
//! Costs that the tree-walker charges as one combined `charge()` call (the
//! for-loop test's `int_op + branch`, an indexed load's `int_op + load`)
//! are baked combined too, so the two engines' virtual clocks agree at
//! every instruction boundary, including the exact cycle at which a budget
//! exhaustion triggers.
//!
//! Names that do not resolve — unbound identifiers, assignment to a
//! non-lvalue — compile to [`Insn::Raise`] carrying the exact
//! [`RuntimeError`] the tree-walker would produce at that point, placed so
//! that any side effects sequenced before the error still happen.

use crate::error::RuntimeError;
use crate::eval::RunConfig;
use crate::intrinsics::{self, Intrinsic};
use crate::ops;
use crate::peephole;
use crate::profile::CostModel;
use crate::value::{Pointer, Value};
use psa_minicpp::ast::*;
use psa_minicpp::scopes::{resolve_function, SlotMap};
use psa_minicpp::Span;
use std::collections::HashMap;

/// Resolved target of one call site.
#[derive(Debug, Clone)]
pub(crate) enum CallTarget {
    /// Index into [`Program::funcs`].
    User(u16),
    Intrinsic(Intrinsic),
    /// Neither a user function nor an intrinsic: unbound at runtime.
    Unknown,
}

/// One static call site: target plus the argument count and span of the
/// call expression (arity errors are reported by the callee at runtime).
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    pub name: Box<str>,
    pub target: CallTarget,
    pub argc: usize,
    pub span: Span,
}

/// An interned source span: index into [`Program::spans`].
///
/// Spans are only consumed on cold paths — error construction and
/// watch-mode provenance — but a [`Span`] is 16 bytes and the fused
/// superinstructions carry up to five of them, which bloated [`Insn`] to
/// 128 bytes and made the bytecode stream through L1 on every loop
/// iteration. Interning cuts each span field to 4 bytes; handlers resolve
/// through the side table with a single indexed load whose result is dead
/// on the happy path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SpanId(pub u32);

/// Sentinel "no span": marks an absent trailing coercion on the
/// type-specialised instructions (never resolved through the span table).
pub(crate) const NO_SPAN: SpanId = SpanId(u32::MAX);

/// Metadata of one [`Insn::DeferredFor`] loop, boxed to keep the `Insn`
/// enum at its 64-byte budget (the indirection is paid once per loop
/// *execution*, not per iteration).
#[derive(Debug, Clone)]
pub(crate) struct DeferredLoop {
    /// Induction-variable slot, bound register, and the test operator —
    /// lifted from the replaced [`Insn::ForTest`].
    pub slot: u16,
    pub bound: u16,
    pub cond_op: BinOp,
    /// Step register and direction, lifted from [`Insn::ForStepJump`].
    pub step: u16,
    pub negative: bool,
    pub test_cost: u64,
    pub step_cost: u64,
    /// Upper bound on the virtual cycles one full iteration can charge
    /// (test + worst case of every body instruction + step). While
    /// `clock + accumulator + iter_max ≤ max_cycles`, an iteration provably
    /// cannot exhaust the budget, so its charges may be deferred into the
    /// accumulator; otherwise the VM flushes and replays precisely.
    pub iter_max: u64,
    /// Specialised instructions in `body`, for the dispatch-class metrics.
    pub nspec: u32,
    /// The straight-line loop body (everything between `ForTest` and
    /// `ForStepJump`).
    pub body: Box<[Insn]>,
    pub test_span: SpanId,
    pub step_span: SpanId,
}

/// A compiled function parameter (binding still coerces at call time).
#[derive(Debug, Clone)]
pub(crate) struct CompiledParam {
    pub name: String,
    pub ty: Type,
    pub span: Span,
}

/// One compiled function body.
#[derive(Debug)]
pub(crate) struct CompiledFn {
    pub name: String,
    pub params: Vec<CompiledParam>,
    /// Total frame registers: named local slots (parameters first) in
    /// `0..locals`, then the expression-temporary high-water mark.
    pub regs: usize,
    /// Baked `config.watch_function == name`.
    pub watched: bool,
    pub code: Vec<Insn>,
}

/// A whole module, compiled.
#[derive(Debug)]
pub struct Program {
    pub(crate) funcs: Vec<CompiledFn>,
    /// First definition wins, like [`Module::function`].
    pub(crate) fn_by_name: HashMap<String, u16>,
    /// Global variable names, one entry per distinct name (redeclaration
    /// reuses the slot, mirroring the tree-walker's by-name map).
    pub(crate) global_names: Vec<Box<str>>,
    /// Initialiser chunk for module globals; runs once before `main`.
    pub(crate) globals_init: Vec<Insn>,
    /// Frame registers the initialiser chunk needs.
    pub(crate) globals_init_regs: usize,
    pub(crate) call_sites: Vec<CallSite>,
    /// Interned [`Span`] side table; [`SpanId`]s in instructions index it.
    pub(crate) spans: Vec<Span>,
}

/// Register-addressed instructions. Register operands (`dst`, `src`, `l`,
/// `r`, …) are `u16` indices into the current frame's register file; `cost`
/// fields are virtual cycles baked from the cost model at compile time.
///
/// The variants after [`Insn::Raise`] are **superinstructions**: they are
/// never emitted by the compiler directly, only by the peephole pass in
/// [`crate::peephole`], and each one performs exactly the observable steps
/// of the pair it replaces.
#[derive(Debug, Clone)]
pub(crate) enum Insn {
    /// `dst = v`.
    Const { dst: u16, v: Value },
    /// `dst = src` (pointer declarations, ternary/short-circuit results).
    Copy { dst: u16, src: u16 },
    /// `dst = global[gidx]`; unbound error if not yet initialised.
    LoadGlobal { dst: u16, gidx: u16, span: SpanId },
    /// Copy a just-initialised local into its global slot (init chunk).
    CopyToGlobal { gidx: u16, src: u16 },
    /// Assign `src` to a local with C assignment conversion.
    AssignLocal { slot: u16, src: u16, span: SpanId },
    /// Assign `src` to a global with C assignment conversion; unbound
    /// error if the global is not yet initialised.
    AssignGlobal { gidx: u16, src: u16, span: SpanId },
    /// `dst = coerce(src, ty)` (declaration initialiser — no charge).
    Coerce {
        dst: u16,
        src: u16,
        ty: Type,
        span: SpanId,
    },
    /// Charge `cost`, then `dst = coerce(src, ty)` (cast expression).
    Cast {
        dst: u16,
        src: u16,
        ty: Type,
        cost: u64,
        span: SpanId,
    },
    /// Unary operator (charging inside `ops::apply_unary`).
    Un {
        op: UnOp,
        dst: u16,
        src: u16,
        span: SpanId,
    },
    /// `dst = l op r`.
    Bin {
        op: BinOp,
        dst: u16,
        l: u16,
        r: u16,
        span: SpanId,
    },
    /// `dst = l op imm` (literal right operand baked in).
    BinImm {
        op: BinOp,
        dst: u16,
        l: u16,
        imm: Value,
        span: SpanId,
    },
    /// `dst = imm op r` (literal left operand baked in).
    BinImmRev {
        op: BinOp,
        dst: u16,
        imm: Value,
        r: u16,
        span: SpanId,
    },
    /// Unconditional jump.
    Jump(u32),
    /// Charge, truthiness-check `src`, jump if false.
    JumpIfFalse {
        src: u16,
        target: u32,
        cost: u64,
        span: SpanId,
    },
    /// `&&`: charge + check `src`; on false `dst = false` and jump past
    /// the rhs.
    AndShort {
        src: u16,
        dst: u16,
        target: u32,
        cost: u64,
        span: SpanId,
    },
    /// `||`: charge + check `src`; on true `dst = true` and jump past the
    /// rhs.
    OrShort {
        src: u16,
        dst: u16,
        target: u32,
        cost: u64,
        span: SpanId,
    },
    /// Charge + check `src`, `dst = Bool(it)` (rhs of a short-circuit).
    ToBool {
        dst: u16,
        src: u16,
        cost: u64,
        span: SpanId,
    },
    /// Indexed load `dst = base[idx]`. `cost` combines address arithmetic
    /// and the load (`int_op + load`), exactly the tree-walker's one
    /// combined charge.
    Index {
        dst: u16,
        base: u16,
        idx: u16,
        cost: u64,
        base_span: SpanId,
        index_span: SpanId,
        span: SpanId,
    },
    /// `dst = &base[idx]` as a pointer. `cost` is the address arithmetic.
    IndexAddr {
        dst: u16,
        base: u16,
        idx: u16,
        cost: u64,
        base_span: SpanId,
        index_span: SpanId,
    },
    /// `dst = *addr` (compound assignment read; load first, charge after,
    /// like the tree-walker).
    LoadElem {
        dst: u16,
        addr: u16,
        cost: u64,
        span: SpanId,
    },
    /// `*addr = src`.
    StoreElem {
        addr: u16,
        src: u16,
        cost: u64,
        span: SpanId,
    },
    /// Allocate a named buffer of `regs[len]` elements; `dst` gets the
    /// pointer.
    AllocArray {
        dst: u16,
        len: u16,
        scalar: Scalar,
        name: Box<str>,
        span: SpanId,
    },
    /// Call through `call_sites[site]`; arguments occupy the contiguous
    /// registers `first_arg..first_arg + argc`, the result lands in `dst`.
    Call { dst: u16, site: u32, first_arg: u16 },
    /// A math intrinsic called with the correct arity: `a`/`b` are argument
    /// registers (`b` unused for unary ops), cycle cost and FLOP count
    /// baked at compile time. `name` feeds the tree-walker's error
    /// messages.
    MathCall {
        dst: u16,
        a: u16,
        b: u16,
        f: intrinsics::MathFn,
        cycles: u64,
        flops: u64,
        name: Box<str>,
        span: SpanId,
    },
    /// Return (`regs[src]` if `has_value`), recording stats for any loops
    /// still open in this frame.
    Ret { src: u16, has_value: bool },
    /// Open a loop-stats context for loop `id`.
    LoopEnter { id: NodeId },
    /// Close the innermost loop context and record its stats.
    LoopExit,
    /// Int-check `regs[src]`, bind the induction variable. `bound == false`
    /// raises the tree-walker's unbound error instead (after the check).
    ForInit {
        slot: u16,
        src: u16,
        bound: bool,
        name: Box<str>,
        span: SpanId,
    },
    /// Charge, compare the induction variable against `regs[bound]` and
    /// either count an iteration or jump to `exit`. Also latches the
    /// iteration's start value of the induction variable.
    ForTest {
        slot: u16,
        bound: u16,
        cond_op: BinOp,
        exit: u32,
        cost: u64,
        span: SpanId,
    },
    /// Advance the induction variable from its latched start-of-iteration
    /// value by `regs[step]`, charge.
    ForStep {
        slot: u16,
        step: u16,
        negative: bool,
        cost: u64,
        span: SpanId,
    },
    /// Charge, check `regs[src]`; count an iteration or jump out.
    WhileTest {
        src: u16,
        exit: u32,
        cost: u64,
        span: SpanId,
    },
    /// Raise a pre-built runtime error (unbound name, non-lvalue target).
    Raise(Box<RuntimeError>),

    // ------------------------------------------------------------------
    // Superinstructions (emitted only by the peephole pass).
    // ------------------------------------------------------------------
    /// Fused comparison + conditional branch (`Bin` cmp + `JumpIfFalse`).
    /// One combined charge of compare + branch cost — observably identical
    /// to the pair (see `crate::peephole` for the argument).
    CmpBranch {
        op: BinOp,
        l: u16,
        r: u16,
        target: u32,
        branch_cost: u64,
        cmp_span: SpanId,
        br_span: SpanId,
    },
    /// Fused immediate comparison + conditional branch.
    CmpImmBranch {
        op: BinOp,
        l: u16,
        imm: Value,
        target: u32,
        branch_cost: u64,
        cmp_span: SpanId,
        br_span: SpanId,
    },
    /// Fused comparison + while test (`Bin` cmp + `WhileTest`).
    CmpWhile {
        op: BinOp,
        l: u16,
        r: u16,
        exit: u32,
        branch_cost: u64,
        cmp_span: SpanId,
        br_span: SpanId,
    },
    /// Fused immediate comparison + while test.
    CmpImmWhile {
        op: BinOp,
        l: u16,
        imm: Value,
        exit: u32,
        branch_cost: u64,
        cmp_span: SpanId,
        br_span: SpanId,
    },
    /// Fused binop + local assignment (`Bin` + `AssignLocal`): covers both
    /// `x = a op b` and the compound `x op= e` lowering.
    BinAssign {
        op: BinOp,
        slot: u16,
        l: u16,
        r: u16,
        span: SpanId,
        asg_span: SpanId,
    },
    /// Fused immediate binop + local assignment.
    BinImmAssign {
        op: BinOp,
        slot: u16,
        l: u16,
        imm: Value,
        span: SpanId,
        asg_span: SpanId,
    },
    /// Fused indexed load + binop (`Index` + `Bin` whose left operand is
    /// the loaded value): `dst = base[idx] op r`.
    IndexBin {
        op: BinOp,
        dst: u16,
        base: u16,
        idx: u16,
        r: u16,
        cost: u64,
        base_span: SpanId,
        index_span: SpanId,
        load_span: SpanId,
        span: SpanId,
    },
    /// Fused indexed load + immediate binop: `dst = base[idx] op imm`.
    IndexBinImm {
        op: BinOp,
        dst: u16,
        base: u16,
        idx: u16,
        imm: Value,
        cost: u64,
        base_span: SpanId,
        index_span: SpanId,
        load_span: SpanId,
        span: SpanId,
    },
    /// Fused for-step + back-edge jump (`ForStep` + `Jump`).
    ForStepJump {
        slot: u16,
        step: u16,
        negative: bool,
        cost: u64,
        span: SpanId,
        target: u32,
    },
    /// Fused binop + declaration coercion (`Bin` + `Coerce` of the result):
    /// `dst = coerce(l op r, ty)`. `Coerce` never charges, so the fusion
    /// only removes a dispatch and a dead temporary write.
    BinCoerce {
        op: BinOp,
        dst: u16,
        l: u16,
        r: u16,
        ty: Type,
        span: SpanId,
        co_span: SpanId,
    },
    /// Fused immediate binop + declaration coercion.
    BinImmCoerce {
        op: BinOp,
        dst: u16,
        l: u16,
        imm: Value,
        ty: Type,
        span: SpanId,
        co_span: SpanId,
    },
    /// Fused indexed load + declaration coercion:
    /// `dst = coerce(base[idx], ty)`.
    IndexCoerce {
        dst: u16,
        base: u16,
        idx: u16,
        cost: u64,
        ty: Type,
        base_span: SpanId,
        index_span: SpanId,
        span: SpanId,
        co_span: SpanId,
    },
    /// Fused math intrinsic + declaration coercion.
    MathCallCoerce {
        dst: u16,
        a: u16,
        b: u16,
        f: intrinsics::MathFn,
        cycles: u64,
        flops: u64,
        name: Box<str>,
        ty: Type,
        span: SpanId,
        co_span: SpanId,
    },
    /// Fused [`Insn::IndexBin`] + declaration coercion (forms on the
    /// second peephole pass, once `Index` + `Bin` have already fused).
    IndexBinCoerce {
        op: BinOp,
        dst: u16,
        base: u16,
        idx: u16,
        r: u16,
        cost: u64,
        ty: Type,
        base_span: SpanId,
        index_span: SpanId,
        load_span: SpanId,
        span: SpanId,
        co_span: SpanId,
    },
    /// A maximal run of straight-line instructions executed as one
    /// dispatch. Formed by the peephole's final blocking pass from
    /// consecutive arithmetic / memory instructions none of which (except
    /// the first) is a jump target. Each step runs through the *same*
    /// `step_arith` implementation the dispatch loop uses, so a block is
    /// observably identical to its steps — it only removes the dispatch
    /// overhead between them.
    ArithBlock(Box<[Insn]>),
    /// Fused [`Insn::IndexBinImm`] + declaration coercion (second pass).
    IndexBinImmCoerce {
        op: BinOp,
        dst: u16,
        base: u16,
        idx: u16,
        imm: Value,
        cost: u64,
        ty: Type,
        base_span: SpanId,
        index_span: SpanId,
        load_span: SpanId,
        span: SpanId,
        co_span: SpanId,
    },
    /// Fused pair of immediate binops where the second consumes the
    /// first's single-use temporary: `dst = (l op1 imm1) op2 imm2`.
    /// Executes both `apply_binary` calls in order (identical charges and
    /// identical error behaviour); only the dead temporary write is
    /// elided. Covers the ubiquitous affine address form `i * N + k` and
    /// chained scalings like `c * v - 1.0`.
    BinImm2 {
        op1: BinOp,
        op2: BinOp,
        dst: u16,
        l: u16,
        imm1: Value,
        imm2: Value,
        span1: SpanId,
        span2: SpanId,
    },
    /// Fused immediate binop + unary math intrinsic consuming its
    /// single-use temporary: `dst = f(l op imm)` (`rev` flips the binop
    /// operands: `f(imm op l)`). Only formed when `imm` is floating and
    /// `op` is `+ - * /`, which makes the binop's result always numeric —
    /// so the intrinsic's non-numeric-argument error (the only consumer
    /// of the call's source name) is unreachable and the name need not be
    /// carried. `cycles`/`flops` are the intrinsic's baked charges
    /// (verified to fit `u32` at fusion time).
    MathCallImm {
        op: BinOp,
        rev: bool,
        dst: u16,
        l: u16,
        imm: Value,
        f: intrinsics::MathFn,
        cycles: u32,
        flops: u32,
        bin_span: SpanId,
    },

    // ------------------------------------------------------------------
    // Type-specialised variants (emitted only by `crate::typeinfer`).
    //
    // Each is the fast form of the generic instruction it replaces, valid
    // when static inference proved the operands are `f64`. Pointer-element
    // inference is optimistic (see `typeinfer`), so every handler re-checks
    // the runtime tags and replays the generic semantics verbatim on
    // mismatch — the rewrite can never change observable behaviour.
    // `co_span == NO_SPAN` means no trailing coercion was folded in; any
    // other value marks a folded declaration coercion to plain `double`
    // (identity on the fast path, replayed exactly on the fallback).
    // ------------------------------------------------------------------
    /// Specialised `Bin`/`BinCoerce`: `dst = l op r`, both proved `f64`,
    /// `op` ∈ `+ - * /`.
    F64Bin {
        op: BinOp,
        dst: u16,
        l: u16,
        r: u16,
        span: SpanId,
        co_span: SpanId,
    },
    /// Specialised `BinImm`/`BinImmRev`/`BinImmCoerce`: one `f64` register
    /// operand and a numeric immediate pre-converted to `imm_f64` (the
    /// identical `as_f64` promotion the generic path performs). `rev`
    /// flips the operand order (`imm op l`); the original `imm` is kept
    /// for the generic fallback.
    F64BinImm {
        op: BinOp,
        rev: bool,
        dst: u16,
        l: u16,
        imm: Value,
        imm_f64: f64,
        span: SpanId,
        co_span: SpanId,
    },
    /// Specialised `BinAssign`: `slot = slot-convert(l op r)` where `l`,
    /// `r` *and the slot's current value* are all proved `f64`, making the
    /// assignment conversion the identity.
    F64BinAssign {
        op: BinOp,
        slot: u16,
        l: u16,
        r: u16,
        span: SpanId,
        asg_span: SpanId,
    },
    /// Specialised `BinImmAssign` (see `F64BinImm` for the immediate).
    F64BinImmAssign {
        op: BinOp,
        rev: bool,
        slot: u16,
        l: u16,
        imm: Value,
        imm_f64: f64,
        span: SpanId,
        asg_span: SpanId,
    },
    /// Specialised `Index`/`IndexCoerce`: `dst = base[idx]` where `base`
    /// was inferred `double*`. The handler probes the buffer's actual
    /// element type before charging anything.
    F64Index {
        dst: u16,
        base: u16,
        idx: u16,
        cost: u64,
        base_span: SpanId,
        index_span: SpanId,
        span: SpanId,
        co_span: SpanId,
    },
    /// Specialised `StoreElem`: `*addr = src` where `src` was inferred
    /// `f64` (fast only when the buffer really is a `double` buffer).
    F64Store {
        addr: u16,
        src: u16,
        cost: u64,
        span: SpanId,
    },
    /// Specialised `MathCallImm` for a double-precision intrinsic whose
    /// register operand was inferred `f64`: one combined charge of binop +
    /// intrinsic cycles (exact — see the VM handler for the argument).
    F64MathCallImm {
        op: BinOp,
        rev: bool,
        dst: u16,
        l: u16,
        imm: Value,
        imm_f64: f64,
        f: intrinsics::MathFn,
        cycles: u32,
        flops: u32,
        bin_span: SpanId,
    },
    /// A counted `for` loop with a straight-line body, executed as one
    /// dispatch per *loop* with per-iteration charge deferral (emitted by
    /// `peephole::defer_loops`, replacing `ForTest .. body .. ForStepJump`).
    /// The normal exit falls through to the next instruction (the old
    /// `ForTest` exit target, always the loop's `LoopExit`).
    DeferredFor(Box<DeferredLoop>),
}

/// How much of the bytecode optimisation pipeline [`Program::compile_with`]
/// runs. Every level is observationally identical to every other (and to
/// the tree walker); the differential proptests hold all of them to that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OptLevel {
    /// Flat one-instruction-per-operation register lowering.
    Unfused,
    /// Superinstruction pair fusion + straight-line blocking (the PR 7
    /// pipeline), without type specialisation or loop-charge deferral.
    Unspecialized,
    /// Fusion, then type-inference-driven specialisation
    /// ([`crate::typeinfer`]), then loop-charge deferral, then blocking.
    Full,
}

impl Program {
    /// Compile a module through the full optimisation pipeline (fusion,
    /// type specialisation, loop-charge deferral, blocking). `config`
    /// supplies the cost model baked into instructions and the
    /// watched-function name baked into functions.
    pub fn compile(module: &Module, config: &RunConfig) -> Program {
        Program::compile_with(module, config, OptLevel::Full)
    }

    /// Compile without any peephole pass: the plain one-instruction-per-
    /// operation register lowering. This is the reference bytecode the
    /// differential proptests run as the middle semantics between the tree
    /// walker and the optimised fast paths.
    pub fn compile_unfused(module: &Module, config: &RunConfig) -> Program {
        Program::compile_with(module, config, OptLevel::Unfused)
    }

    /// Compile with superinstruction fusion but *without* type
    /// specialisation or loop-charge deferral — the PR 7 pipeline, kept as
    /// an escape hatch and as the third leg of the four-way differential
    /// proptest.
    pub fn compile_unspecialized(module: &Module, config: &RunConfig) -> Program {
        Program::compile_with(module, config, OptLevel::Unspecialized)
    }

    fn compile_with(module: &Module, config: &RunConfig, level: OptLevel) -> Program {
        let mut fn_by_name: HashMap<String, u16> = HashMap::new();
        let mut fn_items: Vec<&Function> = Vec::new();
        for item in &module.items {
            if let Item::Function(f) = item {
                if !fn_by_name.contains_key(&f.name) {
                    fn_by_name.insert(f.name.clone(), fn_items.len() as u16);
                    fn_items.push(f);
                }
            }
        }

        // Global slots: one per distinct name, first occurrence fixes the
        // index (redeclaration writes the same slot, like a by-name map).
        let mut global_idx: HashMap<String, u16> = HashMap::new();
        let mut global_names: Vec<Box<str>> = Vec::new();
        for item in &module.items {
            if let Item::Global(stmt) = item {
                if let StmtKind::Decl(d) = &stmt.kind {
                    global_idx.entry(d.name.clone()).or_insert_with(|| {
                        global_names.push(d.name.clone().into_boxed_str());
                        (global_names.len() - 1) as u16
                    });
                }
            }
        }

        let mut call_sites = Vec::new();
        let mut spans = SpanInterner::default();

        // The globals-initialiser chunk mirrors `Interpreter::init_globals`:
        // one shared frame, each declaration compiled in order, its value
        // copied to the global slot immediately (so later initialisers can
        // observe earlier globals through their frame slots). Temporaries
        // live above the per-name slots, of which there are at most one per
        // distinct global name.
        let init_first_temp = global_names.len() as u16;
        let mut init = Compiler {
            cm: &config.cost_model,
            fn_by_name: &fn_by_name,
            global_idx: &global_idx,
            call_sites: &mut call_sites,
            spans: &mut spans,
            names: NameResolution::InitChunk {
                scope: HashMap::new(),
                next_slot: 0,
            },
            code: Vec::new(),
            loops: Vec::new(),
            temp_top: init_first_temp,
            max_regs: init_first_temp,
        };
        for item in &module.items {
            if let Item::Global(stmt) = item {
                if let StmtKind::Decl(d) = &stmt.kind {
                    let slot = init.compile_decl(d);
                    let gidx = global_idx[&d.name];
                    init.code.push(Insn::CopyToGlobal { gidx, src: slot });
                }
            }
        }
        init.code.push(Insn::Ret {
            src: 0,
            has_value: false,
        });
        let mut globals_init = std::mem::take(&mut init.code);
        let globals_init_regs = init.max_regs as usize;
        match level {
            OptLevel::Unfused => {}
            OptLevel::Unspecialized => {
                globals_init = peephole::fuse(globals_init, init_first_temp);
            }
            OptLevel::Full => {
                globals_init = peephole::optimize(
                    globals_init,
                    init_first_temp,
                    &[],
                    globals_init_regs,
                    &call_sites,
                    &config.cost_model,
                );
            }
        }

        let mut funcs = Vec::with_capacity(fn_items.len());
        for f in &fn_items {
            let slots = resolve_function(f);
            let first_temp = slots.locals as u16;
            let mut c = Compiler {
                cm: &config.cost_model,
                fn_by_name: &fn_by_name,
                global_idx: &global_idx,
                call_sites: &mut call_sites,
                spans: &mut spans,
                names: NameResolution::Func(&slots),
                code: Vec::new(),
                loops: Vec::new(),
                temp_top: first_temp,
                max_regs: first_temp,
            };
            c.compile_block(&f.body);
            c.code.push(Insn::Ret {
                src: 0,
                has_value: false,
            });
            let mut code = std::mem::take(&mut c.code);
            let regs = c.max_regs as usize;
            match level {
                OptLevel::Unfused => {}
                OptLevel::Unspecialized => {
                    code = peephole::fuse(code, first_temp);
                }
                OptLevel::Full => {
                    let param_tys: Vec<Type> = f.params.iter().map(|p| p.ty).collect();
                    code = peephole::optimize(
                        code,
                        first_temp,
                        &param_tys,
                        regs,
                        &call_sites,
                        &config.cost_model,
                    );
                }
            }
            funcs.push(CompiledFn {
                name: f.name.clone(),
                params: f
                    .params
                    .iter()
                    .map(|p| CompiledParam {
                        name: p.name.clone(),
                        ty: p.ty,
                        span: p.span,
                    })
                    .collect(),
                regs,
                watched: config.watch_function.as_deref() == Some(f.name.as_str()),
                code,
            });
        }

        let spans = spans.spans;
        verify_code(
            &globals_init,
            globals_init_regs,
            &call_sites,
            global_names.len(),
        );
        for f in &funcs {
            verify_code(&f.code, f.regs, &call_sites, global_names.len());
        }

        Program {
            funcs,
            fn_by_name,
            global_names,
            globals_init,
            globals_init_regs,
            call_sites,
            spans,
        }
    }

    /// Static specialisation census over the whole program: counts of
    /// `(specialized, total, deferred_loops)` instructions, looking through
    /// `ArithBlock`s and deferred loop bodies (a `DeferredFor` counts as
    /// one specialised instruction itself, plus whatever its body holds;
    /// an `ArithBlock` contributes only its steps). Used for the
    /// `fig5 --engine=vm` specialisation-rate diagnostic.
    pub fn specialization_stats(&self) -> (u64, u64, u64) {
        fn walk(code: &[Insn], acc: &mut (u64, u64, u64)) {
            for insn in code {
                match insn {
                    Insn::ArithBlock(steps) => walk(steps, acc),
                    Insn::DeferredFor(d) => {
                        acc.0 += 1;
                        acc.1 += 1;
                        acc.2 += 1;
                        walk(&d.body, acc);
                    }
                    Insn::F64Bin { .. }
                    | Insn::F64BinImm { .. }
                    | Insn::F64BinAssign { .. }
                    | Insn::F64BinImmAssign { .. }
                    | Insn::F64Index { .. }
                    | Insn::F64Store { .. }
                    | Insn::F64MathCallImm { .. } => {
                        acc.0 += 1;
                        acc.1 += 1;
                    }
                    _ => acc.1 += 1,
                }
            }
        }
        let mut acc = (0, 0, 0);
        walk(&self.globals_init, &mut acc);
        for f in &self.funcs {
            walk(&f.code, &mut acc);
        }
        acc
    }
}

/// Verify that every register (and global-slot) operand of every
/// instruction addresses a slot inside a frame of `nregs` registers. The
/// VM dispatch loop reads frame registers without per-access bounds checks
/// on the strength of this check, so it runs unconditionally — it is
/// linear in code size and a negligible fraction of compile time. Any
/// violation is a compiler bug and panics immediately.
fn verify_code(code: &[Insn], nregs: usize, call_sites: &[CallSite], global_count: usize) {
    let chk = |r: u16| {
        assert!(
            (r as usize) < nregs,
            "register operand {r} outside frame of {nregs}: compiler bug"
        )
    };
    let gchk = |g: u16| {
        assert!(
            (g as usize) < global_count,
            "global operand {g} outside {global_count} slots: compiler bug"
        )
    };
    for insn in code {
        match insn {
            Insn::Const { dst, .. } => chk(*dst),
            Insn::Copy { dst, src } => {
                chk(*dst);
                chk(*src);
            }
            Insn::LoadGlobal { dst, gidx, .. } => {
                chk(*dst);
                gchk(*gidx);
            }
            Insn::CopyToGlobal { gidx, src } => {
                gchk(*gidx);
                chk(*src);
            }
            Insn::AssignLocal { slot, src, .. } => {
                chk(*slot);
                chk(*src);
            }
            Insn::AssignGlobal { gidx, src, .. } => {
                gchk(*gidx);
                chk(*src);
            }
            Insn::Coerce { dst, src, .. }
            | Insn::Cast { dst, src, .. }
            | Insn::Un { dst, src, .. }
            | Insn::ToBool { dst, src, .. } => {
                chk(*dst);
                chk(*src);
            }
            Insn::Bin { dst, l, r, .. } => {
                chk(*dst);
                chk(*l);
                chk(*r);
            }
            Insn::BinImm { dst, l, .. } => {
                chk(*dst);
                chk(*l);
            }
            Insn::BinImmRev { dst, r, .. } => {
                chk(*dst);
                chk(*r);
            }
            Insn::Jump(_) | Insn::LoopEnter { .. } | Insn::LoopExit | Insn::Raise(_) => {}
            Insn::JumpIfFalse { src, .. } | Insn::WhileTest { src, .. } => chk(*src),
            Insn::AndShort { src, dst, .. } | Insn::OrShort { src, dst, .. } => {
                chk(*src);
                chk(*dst);
            }
            Insn::Index { dst, base, idx, .. } | Insn::IndexAddr { dst, base, idx, .. } => {
                chk(*dst);
                chk(*base);
                chk(*idx);
            }
            Insn::LoadElem { dst, addr, .. } => {
                chk(*dst);
                chk(*addr);
            }
            Insn::StoreElem { addr, src, .. } => {
                chk(*addr);
                chk(*src);
            }
            Insn::AllocArray { dst, len, .. } => {
                chk(*dst);
                chk(*len);
            }
            Insn::Call {
                dst,
                site,
                first_arg,
            } => {
                chk(*dst);
                let argc = call_sites[*site as usize].argc;
                if argc > 0 {
                    chk(*first_arg);
                    chk(*first_arg + argc as u16 - 1);
                }
            }
            Insn::MathCall { dst, a, b, f, .. } | Insn::MathCallCoerce { dst, a, b, f, .. } => {
                chk(*dst);
                chk(*a);
                if f.op.arity() == 2 {
                    chk(*b);
                }
            }
            Insn::Ret { src, has_value } => {
                if *has_value {
                    chk(*src);
                }
            }
            Insn::ForInit { slot, src, .. } => {
                chk(*slot);
                chk(*src);
            }
            Insn::ForTest { slot, bound, .. } => {
                chk(*slot);
                chk(*bound);
            }
            Insn::ForStep { slot, step, .. } | Insn::ForStepJump { slot, step, .. } => {
                chk(*slot);
                chk(*step);
            }
            Insn::CmpBranch { l, r, .. } | Insn::CmpWhile { l, r, .. } => {
                chk(*l);
                chk(*r);
            }
            Insn::CmpImmBranch { l, .. } | Insn::CmpImmWhile { l, .. } => chk(*l),
            Insn::BinAssign { slot, l, r, .. } => {
                chk(*slot);
                chk(*l);
                chk(*r);
            }
            Insn::BinImmAssign { slot, l, .. } => {
                chk(*slot);
                chk(*l);
            }
            Insn::IndexBin {
                dst, base, idx, r, ..
            }
            | Insn::IndexBinCoerce {
                dst, base, idx, r, ..
            } => {
                chk(*dst);
                chk(*base);
                chk(*idx);
                chk(*r);
            }
            Insn::IndexBinImm { dst, base, idx, .. }
            | Insn::IndexBinImmCoerce { dst, base, idx, .. }
            | Insn::IndexCoerce { dst, base, idx, .. } => {
                chk(*dst);
                chk(*base);
                chk(*idx);
            }
            Insn::BinCoerce { dst, l, r, .. } => {
                chk(*dst);
                chk(*l);
                chk(*r);
            }
            Insn::BinImmCoerce { dst, l, .. } => {
                chk(*dst);
                chk(*l);
            }
            Insn::BinImm2 { dst, l, .. } | Insn::MathCallImm { dst, l, .. } => {
                chk(*dst);
                chk(*l);
            }
            Insn::ArithBlock(steps) => verify_code(steps, nregs, call_sites, global_count),
            Insn::F64Bin { dst, l, r, .. } => {
                chk(*dst);
                chk(*l);
                chk(*r);
            }
            Insn::F64BinImm { dst, l, .. } | Insn::F64MathCallImm { dst, l, .. } => {
                chk(*dst);
                chk(*l);
            }
            Insn::F64BinAssign { slot, l, r, .. } => {
                chk(*slot);
                chk(*l);
                chk(*r);
            }
            Insn::F64BinImmAssign { slot, l, .. } => {
                chk(*slot);
                chk(*l);
            }
            Insn::F64Index { dst, base, idx, .. } => {
                chk(*dst);
                chk(*base);
                chk(*idx);
            }
            Insn::F64Store { addr, src, .. } => {
                chk(*addr);
                chk(*src);
            }
            Insn::DeferredFor(d) => {
                chk(d.slot);
                chk(d.bound);
                chk(d.step);
                verify_code(&d.body, nregs, call_sites, global_count);
            }
        }
    }
}

/// How the compiler maps identifier uses to slots.
enum NameResolution<'a> {
    /// Inside a function: the precomputed per-`NodeId` slot map.
    Func(&'a SlotMap),
    /// Inside the globals-init chunk: a by-name scope built as declarations
    /// are compiled (later initialisers see earlier declarations).
    InitChunk {
        scope: HashMap<String, u16>,
        next_slot: u16,
    },
}

struct Compiler<'a> {
    cm: &'a CostModel,
    fn_by_name: &'a HashMap<String, u16>,
    global_idx: &'a HashMap<String, u16>,
    call_sites: &'a mut Vec<CallSite>,
    spans: &'a mut SpanInterner,
    names: NameResolution<'a>,
    code: Vec<Insn>,
    /// Innermost-last stack of open loops, holding jump indices to patch.
    loops: Vec<OpenLoop>,
    /// Next free temporary register (slots live below the initial value).
    temp_top: u16,
    /// Register-file high-water mark.
    max_regs: u16,
}

/// Builds [`Program::spans`]: interns each distinct [`Span`] once.
#[derive(Default)]
struct SpanInterner {
    spans: Vec<Span>,
    by_span: HashMap<Span, SpanId>,
}

impl SpanInterner {
    fn intern(&mut self, s: Span) -> SpanId {
        *self.by_span.entry(s).or_insert_with(|| {
            let id = SpanId(u32::try_from(self.spans.len()).expect("span table overflow"));
            self.spans.push(s);
            id
        })
    }
}

#[derive(Default)]
struct OpenLoop {
    breaks: Vec<usize>,
    continues: Vec<usize>,
}

/// A literal's runtime value, if the expression is a literal (used to bake
/// immediate operands; literal evaluation has no observable effects, so
/// folding it into the consuming instruction is exact).
fn lit_value(e: &Expr) -> Option<Value> {
    match &e.kind {
        ExprKind::IntLit(v) => Some(Value::Int(*v)),
        ExprKind::FloatLit { value, single } => Some(if *single {
            Value::Float(*value as f32)
        } else {
            Value::Double(*value)
        }),
        ExprKind::BoolLit(b) => Some(Value::Bool(*b)),
        _ => None,
    }
}

impl<'a> Compiler<'a> {
    fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    /// Intern a span for an instruction operand.
    fn sp(&mut self, s: Span) -> SpanId {
        self.spans.intern(s)
    }

    /// Claim the next temporary register.
    fn temp(&mut self) -> u16 {
        let t = self.temp_top;
        assert!(t != u16::MAX, "function exceeds 65534 registers");
        self.temp_top += 1;
        self.max_regs = self.max_regs.max(self.temp_top);
        t
    }

    /// Slot an identifier use reads, if it is a local here.
    fn ident_slot(&self, e: &Expr, name: &str) -> Option<u16> {
        match &self.names {
            NameResolution::Func(slots) => slots.ident_slot(e.id),
            NameResolution::InitChunk { scope, .. } => scope.get(name).copied(),
        }
    }

    /// Slot a declaration writes (allocating one in the init chunk, where a
    /// redeclared name reuses its slot like a by-name map overwrite).
    fn decl_slot(&mut self, d: &VarDecl) -> u16 {
        match &mut self.names {
            NameResolution::Func(slots) => slots
                .decl_slot(d.id)
                .expect("declaration resolved by scope analysis"),
            NameResolution::InitChunk { scope, next_slot } => {
                *scope.entry(d.name.clone()).or_insert_with(|| {
                    let s = *next_slot;
                    *next_slot += 1;
                    s
                })
            }
        }
    }

    fn unbound(&mut self, name: &str, span: Span) {
        self.code.push(Insn::Raise(Box::new(RuntimeError::Unbound {
            name: name.to_string(),
            span,
        })));
    }

    // --------------------------------------------------------------
    // Statements
    // --------------------------------------------------------------

    fn compile_block(&mut self, b: &Block) {
        for stmt in &b.stmts {
            self.compile_stmt(stmt);
        }
    }

    fn compile_stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Decl(d) => {
                self.compile_decl(d);
            }
            StmtKind::Assign { target, op, value } => self.compile_assign(target, *op, value),
            StmtKind::Expr(e) => {
                let mark = self.temp_top;
                self.compile_expr(e);
                self.temp_top = mark;
            }
            StmtKind::If { cond, then, els } => {
                let mark = self.temp_top;
                let c = self.compile_expr(cond);
                self.temp_top = mark;
                let test = self.code.len();
                let insn = Insn::JumpIfFalse {
                    src: c,
                    target: 0,
                    cost: self.cm.branch,
                    span: self.sp(cond.span),
                };
                self.code.push(insn);
                self.compile_block(then);
                match els {
                    Some(els) => {
                        let skip_else = self.code.len();
                        self.code.push(Insn::Jump(0));
                        let else_pc = self.pc();
                        self.patch_jump(test, else_pc);
                        self.compile_block(els);
                        let end = self.pc();
                        self.patch_jump(skip_else, end);
                    }
                    None => {
                        let end = self.pc();
                        self.patch_jump(test, end);
                    }
                }
            }
            StmtKind::For(l) => self.compile_for(l),
            StmtKind::While { cond, body } => self.compile_while(stmt.id, cond, body),
            StmtKind::Return(e) => match e {
                Some(e) => {
                    let mark = self.temp_top;
                    let r = self.compile_expr(e);
                    self.temp_top = mark;
                    self.code.push(Insn::Ret {
                        src: r,
                        has_value: true,
                    });
                }
                None => self.code.push(Insn::Ret {
                    src: 0,
                    has_value: false,
                }),
            },
            StmtKind::Break => match self.loops.last_mut() {
                Some(l) => {
                    l.breaks.push(self.code.len());
                    self.code.push(Insn::Jump(0));
                }
                // `break` outside any loop: the tree-walker's `Flow::Break`
                // propagates out of the function body, returning unit.
                None => self.code.push(Insn::Ret {
                    src: 0,
                    has_value: false,
                }),
            },
            StmtKind::Continue => match self.loops.last_mut() {
                Some(l) => {
                    l.continues.push(self.code.len());
                    self.code.push(Insn::Jump(0));
                }
                None => self.code.push(Insn::Ret {
                    src: 0,
                    has_value: false,
                }),
            },
            StmtKind::Block(b) => self.compile_block(b),
        }
    }

    /// Compile a declaration; returns the slot it wrote.
    fn compile_decl(&mut self, d: &VarDecl) -> u16 {
        let mark = self.temp_top;
        if let Some(len_expr) = &d.array_len {
            let len = self.compile_expr(len_expr);
            let slot = self.decl_slot(d);
            self.temp_top = mark;
            let insn = Insn::AllocArray {
                dst: slot,
                len,
                scalar: d.ty.scalar,
                name: d.name.clone().into_boxed_str(),
                span: self.sp(d.span),
            };
            self.code.push(insn);
            return slot;
        }
        match &d.init {
            Some(init) => {
                // A literal initialiser coerces at compile time: literals
                // are always coercible scalars and coercion charges
                // nothing, so the fold is exact.
                if let Some(v) = lit_value(init) {
                    let folded = if d.ty.is_pointer() {
                        Ok(v)
                    } else {
                        ops::coerce(v, d.ty, d.span)
                    };
                    if let Ok(v) = folded {
                        let slot = self.decl_slot(d);
                        self.code.push(Insn::Const { dst: slot, v });
                        return slot;
                    }
                }
                let r = self.compile_expr(init);
                let slot = self.decl_slot(d);
                self.temp_top = mark;
                if d.ty.is_pointer() {
                    // Pointer declarations store without conversion.
                    self.code.push(Insn::Copy { dst: slot, src: r });
                } else {
                    let insn = Insn::Coerce {
                        dst: slot,
                        src: r,
                        ty: d.ty,
                        span: self.sp(d.span),
                    };
                    self.code.push(insn);
                }
                slot
            }
            None => {
                let v = match (d.ty.is_pointer(), d.ty.scalar) {
                    (true, _) => Value::Ptr(Pointer {
                        buffer: crate::BufferId(u32::MAX),
                        offset: 0,
                    }),
                    (_, Scalar::Int) => Value::Int(0),
                    (_, Scalar::Float) => Value::Float(0.0),
                    (_, Scalar::Double) => Value::Double(0.0),
                    (_, Scalar::Bool) => Value::Bool(false),
                    (_, Scalar::Void) => Value::Unit,
                };
                let slot = self.decl_slot(d);
                self.code.push(Insn::Const { dst: slot, v });
                slot
            }
        }
    }

    fn compile_assign(&mut self, target: &Expr, op: AssignOp, value: &Expr) {
        let mark = self.temp_top;
        match &target.kind {
            ExprKind::Ident(name) => {
                // The rhs is evaluated first in all cases.
                let r = self.compile_expr(value);
                let slot = self.ident_slot(target, name);
                let gidx = match slot {
                    Some(_) => None,
                    None => self.global_idx.get(name).copied(),
                };
                if slot.is_none() && gidx.is_none() {
                    // Never bound: the tree-walker reports unbound after
                    // evaluating the rhs (compound fails at the old-value
                    // read, simple at the final set — same error).
                    self.unbound(name, target.span);
                    self.temp_top = mark;
                    return;
                }
                match op.bin_op() {
                    None => match (slot, gidx) {
                        (Some(s), _) => {
                            let insn = Insn::AssignLocal {
                                slot: s,
                                src: r,
                                span: self.sp(target.span),
                            };
                            self.code.push(insn);
                        }
                        (None, Some(g)) => {
                            let insn = Insn::AssignGlobal {
                                gidx: g,
                                src: r,
                                span: self.sp(target.span),
                            };
                            self.code.push(insn);
                        }
                        _ => unreachable!(),
                    },
                    Some(bop) => match (slot, gidx) {
                        (Some(s), _) => {
                            let t = self.temp();
                            let insn = Insn::Bin {
                                op: bop,
                                dst: t,
                                l: s,
                                r,
                                span: self.sp(target.span),
                            };
                            self.code.push(insn);
                            let insn = Insn::AssignLocal {
                                slot: s,
                                src: t,
                                span: self.sp(target.span),
                            };
                            self.code.push(insn);
                        }
                        (None, Some(g)) => {
                            let old = self.temp();
                            let insn = Insn::LoadGlobal {
                                dst: old,
                                gidx: g,
                                span: self.sp(target.span),
                            };
                            self.code.push(insn);
                            let t = self.temp();
                            let insn = Insn::Bin {
                                op: bop,
                                dst: t,
                                l: old,
                                r,
                                span: self.sp(target.span),
                            };
                            self.code.push(insn);
                            let insn = Insn::AssignGlobal {
                                gidx: g,
                                src: t,
                                span: self.sp(target.span),
                            };
                            self.code.push(insn);
                        }
                        _ => unreachable!(),
                    },
                }
            }
            ExprKind::Index { base, index } => {
                let b = self.compile_expr(base);
                let i = self.compile_expr(index);
                self.temp_top = mark;
                let addr = self.temp();
                let insn = Insn::IndexAddr {
                    dst: addr,
                    base: b,
                    idx: i,
                    cost: self.cm.int_op,
                    base_span: self.sp(base.span),
                    index_span: self.sp(index.span),
                };
                self.code.push(insn);
                match op.bin_op() {
                    None => {
                        let r = self.compile_expr(value);
                        let insn = Insn::StoreElem {
                            addr,
                            src: r,
                            cost: self.cm.store,
                            span: self.sp(target.span),
                        };
                        self.code.push(insn);
                    }
                    Some(bop) => {
                        // The rhs evaluates before the old value loads,
                        // like the tree-walker.
                        let r = self.compile_expr(value);
                        let old = self.temp();
                        let insn = Insn::LoadElem {
                            dst: old,
                            addr,
                            cost: self.cm.load,
                            span: self.sp(target.span),
                        };
                        self.code.push(insn);
                        let t = self.temp();
                        let insn = Insn::Bin {
                            op: bop,
                            dst: t,
                            l: old,
                            r,
                            span: self.sp(target.span),
                        };
                        self.code.push(insn);
                        let insn = Insn::StoreElem {
                            addr,
                            src: t,
                            cost: self.cm.store,
                            span: self.sp(target.span),
                        };
                        self.code.push(insn);
                    }
                }
            }
            _ => {
                // Not an lvalue: the tree-walker errors without evaluating
                // either side.
                self.code.push(Insn::Raise(Box::new(RuntimeError::Type {
                    message: "assignment target is not an lvalue".into(),
                    span: target.span,
                })));
            }
        }
        self.temp_top = mark;
    }

    /// A loop-header operand (bound or step) that can be pinned to one
    /// register for the whole loop: a literal (materialised once — literal
    /// evaluation has no observable effects) or a local (the slot itself;
    /// reading it per iteration sees reassignments exactly like the
    /// tree-walker's per-iteration evaluation). Globals and compound
    /// expressions return `None` and are re-evaluated every iteration.
    fn pinned_loop_operand(&mut self, e: &Expr) -> Option<u16> {
        if let Some(v) = lit_value(e) {
            let t = self.temp();
            self.code.push(Insn::Const { dst: t, v });
            return Some(t);
        }
        if let ExprKind::Ident(name) = &e.kind {
            if let Some(slot) = self.ident_slot(e, name) {
                return Some(slot);
            }
        }
        None
    }

    fn compile_for(&mut self, l: &ForLoop) {
        self.code.push(Insn::LoopEnter { id: l.id });
        let mark = self.temp_top;
        let init = self.compile_expr(&l.init);
        self.temp_top = mark;
        let (slot, bound) = match &self.names {
            NameResolution::Func(slots) => {
                let v = slots.for_var(l.id).expect("for loop resolved");
                (v.slot, v.bound)
            }
            NameResolution::InitChunk { scope, next_slot } => {
                // Globals are initialised by declarations only; a loop here
                // can only appear inside nested expressions, which MiniC++
                // does not allow — but resolve defensively by name.
                match scope.get(&l.var) {
                    Some(&s) => (s, true),
                    None => (*next_slot, false),
                }
            }
        };
        let insn = Insn::ForInit {
            slot,
            src: init,
            bound,
            name: l.var.clone().into_boxed_str(),
            span: self.sp(l.span),
        };
        self.code.push(insn);
        self.loops.push(OpenLoop::default());
        // Pin pure bound/step operands outside the loop; their registers
        // stay live for the whole loop (temp_top is not reset until exit).
        let pinned_bound = self.pinned_loop_operand(&l.bound);
        let pinned_step = self.pinned_loop_operand(&l.step);
        let loop_mark = self.temp_top;
        let top = self.pc();
        let bound_reg = match pinned_bound {
            Some(r) => r,
            None => {
                let r = self.compile_expr(&l.bound);
                self.temp_top = loop_mark;
                r
            }
        };
        let test = self.code.len();
        let insn = Insn::ForTest {
            slot,
            bound: bound_reg,
            cond_op: l.cond_op,
            exit: 0,
            cost: self.cm.int_op + self.cm.branch,
            span: self.sp(l.span),
        };
        self.code.push(insn);
        self.compile_block(&l.body);
        let step_pc = self.pc();
        let step_reg = match pinned_step {
            Some(r) => r,
            None => {
                let r = self.compile_expr(&l.step);
                self.temp_top = loop_mark;
                r
            }
        };
        let insn = Insn::ForStep {
            slot,
            step: step_reg,
            negative: l.step_negative,
            cost: self.cm.int_op,
            span: self.sp(l.span),
        };
        self.code.push(insn);
        self.code.push(Insn::Jump(top));
        let exit = self.pc();
        self.code.push(Insn::LoopExit);
        self.patch_jump(test, exit);
        let open = self.loops.pop().expect("loop open");
        for pc in open.breaks {
            self.patch_jump(pc, exit);
        }
        for pc in open.continues {
            self.patch_jump(pc, step_pc);
        }
        self.temp_top = mark;
    }

    fn compile_while(&mut self, id: NodeId, cond: &Expr, body: &Block) {
        self.code.push(Insn::LoopEnter { id });
        self.loops.push(OpenLoop::default());
        let mark = self.temp_top;
        let top = self.pc();
        let c = self.compile_expr(cond);
        self.temp_top = mark;
        let test = self.code.len();
        let insn = Insn::WhileTest {
            src: c,
            exit: 0,
            cost: self.cm.branch,
            span: self.sp(cond.span),
        };
        self.code.push(insn);
        self.compile_block(body);
        self.code.push(Insn::Jump(top));
        let exit = self.pc();
        self.code.push(Insn::LoopExit);
        self.patch_jump(test, exit);
        let open = self.loops.pop().expect("loop open");
        for pc in open.breaks {
            self.patch_jump(pc, exit);
        }
        for pc in open.continues {
            self.patch_jump(pc, top);
        }
    }

    fn patch_jump(&mut self, at: usize, to: u32) {
        match &mut self.code[at] {
            Insn::Jump(t) => *t = to,
            Insn::JumpIfFalse { target, .. }
            | Insn::AndShort { target, .. }
            | Insn::OrShort { target, .. } => *target = to,
            Insn::ForTest { exit, .. } | Insn::WhileTest { exit, .. } => *exit = to,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    // --------------------------------------------------------------
    // Expressions
    // --------------------------------------------------------------

    /// Compile an expression; returns the register holding its value. The
    /// result register is either a local slot (identifier reads compile to
    /// nothing), or the lowest temporary that was free on entry — operand
    /// temporaries are released before the result register is claimed, so
    /// nested expressions reuse a small register window. Aliasing between
    /// the result and an operand is safe: every instruction reads all of
    /// its sources before writing its destination.
    fn compile_expr(&mut self, e: &Expr) -> u16 {
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::FloatLit { .. } | ExprKind::BoolLit(_) => {
                let v = lit_value(e).expect("literal");
                let dst = self.temp();
                self.code.push(Insn::Const { dst, v });
                dst
            }
            ExprKind::Ident(name) => match self.ident_slot(e, name) {
                Some(slot) => slot,
                None => match self.global_idx.get(name) {
                    Some(&gidx) => {
                        let dst = self.temp();
                        let insn = Insn::LoadGlobal {
                            dst,
                            gidx,
                            span: self.sp(e.span),
                        };
                        self.code.push(insn);
                        dst
                    }
                    None => {
                        self.unbound(name, e.span);
                        // Unreachable at runtime; claim a register so the
                        // enclosing expression still has an operand index.
                        self.temp()
                    }
                },
            },
            ExprKind::Unary { op, expr } => {
                let mark = self.temp_top;
                let src = self.compile_expr(expr);
                self.temp_top = mark;
                let dst = self.temp();
                let insn = Insn::Un {
                    op: *op,
                    dst,
                    src,
                    span: self.sp(e.span),
                };
                self.code.push(insn);
                dst
            }
            ExprKind::Binary { op, lhs, rhs } => match op {
                BinOp::And => self.compile_short_circuit(true, lhs, rhs),
                BinOp::Or => self.compile_short_circuit(false, lhs, rhs),
                _ => {
                    let mark = self.temp_top;
                    // Bake a literal operand into the instruction. A
                    // literal evaluates without observable effects, so for
                    // a literal lhs, skipping straight to the rhs preserves
                    // evaluation order exactly.
                    if let Some(imm) = lit_value(rhs) {
                        let l = self.compile_expr(lhs);
                        self.temp_top = mark;
                        let dst = self.temp();
                        let insn = Insn::BinImm {
                            op: *op,
                            dst,
                            l,
                            imm,
                            span: self.sp(e.span),
                        };
                        self.code.push(insn);
                        return dst;
                    }
                    if let Some(imm) = lit_value(lhs) {
                        let r = self.compile_expr(rhs);
                        self.temp_top = mark;
                        let dst = self.temp();
                        let insn = Insn::BinImmRev {
                            op: *op,
                            dst,
                            imm,
                            r,
                            span: self.sp(e.span),
                        };
                        self.code.push(insn);
                        return dst;
                    }
                    let l = self.compile_expr(lhs);
                    let r = self.compile_expr(rhs);
                    self.temp_top = mark;
                    let dst = self.temp();
                    let insn = Insn::Bin {
                        op: *op,
                        dst,
                        l,
                        r,
                        span: self.sp(e.span),
                    };
                    self.code.push(insn);
                    dst
                }
            },
            ExprKind::Call { callee, args } => self.compile_call(e, callee, args),
            ExprKind::Index { base, index } => {
                let mark = self.temp_top;
                let b = self.compile_expr(base);
                let i = self.compile_expr(index);
                self.temp_top = mark;
                let dst = self.temp();
                let insn = Insn::Index {
                    dst,
                    base: b,
                    idx: i,
                    cost: self.cm.int_op + self.cm.load,
                    base_span: self.sp(base.span),
                    index_span: self.sp(index.span),
                    span: self.sp(e.span),
                };
                self.code.push(insn);
                dst
            }
            ExprKind::Cast { ty, expr } => {
                let mark = self.temp_top;
                let src = self.compile_expr(expr);
                self.temp_top = mark;
                let dst = self.temp();
                let insn = Insn::Cast {
                    dst,
                    src,
                    ty: *ty,
                    cost: self.cm.fp_op,
                    span: self.sp(e.span),
                };
                self.code.push(insn);
                dst
            }
            ExprKind::Ternary { cond, then, els } => {
                let mark = self.temp_top;
                let c = self.compile_expr(cond);
                self.temp_top = mark;
                let dst = self.temp();
                let test = self.code.len();
                let insn = Insn::JumpIfFalse {
                    src: c,
                    target: 0,
                    cost: self.cm.branch,
                    span: self.sp(cond.span),
                };
                self.code.push(insn);
                let tr = self.compile_expr(then);
                if tr != dst {
                    self.code.push(Insn::Copy { dst, src: tr });
                }
                self.temp_top = dst + 1;
                let skip_else = self.code.len();
                self.code.push(Insn::Jump(0));
                let else_pc = self.pc();
                self.patch_jump(test, else_pc);
                let er = self.compile_expr(els);
                if er != dst {
                    self.code.push(Insn::Copy { dst, src: er });
                }
                self.temp_top = dst + 1;
                let end = self.pc();
                self.patch_jump(skip_else, end);
                dst
            }
        }
    }

    /// `&&` / `||` lower to short-circuiting control flow with a dedicated
    /// result register both paths write.
    fn compile_short_circuit(&mut self, is_and: bool, lhs: &Expr, rhs: &Expr) -> u16 {
        let mark = self.temp_top;
        let l = self.compile_expr(lhs);
        self.temp_top = mark;
        let dst = self.temp();
        let short = self.code.len();
        if is_and {
            let insn = Insn::AndShort {
                src: l,
                dst,
                target: 0,
                cost: self.cm.branch,
                span: self.sp(lhs.span),
            };
            self.code.push(insn);
        } else {
            let insn = Insn::OrShort {
                src: l,
                dst,
                target: 0,
                cost: self.cm.branch,
                span: self.sp(lhs.span),
            };
            self.code.push(insn);
        }
        let r = self.compile_expr(rhs);
        let insn = Insn::ToBool {
            dst,
            src: r,
            cost: self.cm.branch,
            span: self.sp(rhs.span),
        };
        self.code.push(insn);
        self.temp_top = dst + 1;
        let end = self.pc();
        self.patch_jump(short, end);
        dst
    }

    fn compile_call(&mut self, e: &Expr, callee: &str, args: &[Expr]) -> u16 {
        // Tree-walker lookup order: user functions shadow intrinsics;
        // unknown names are unbound at call time.
        let target = match self.fn_by_name.get(callee) {
            Some(&idx) => CallTarget::User(idx),
            None => match intrinsics::lookup(callee) {
                Some(i) => CallTarget::Intrinsic(i),
                None => CallTarget::Unknown,
            },
        };
        // Arity-correct math calls get a dedicated instruction with the
        // cost-class lookup resolved now; the arguments can live in any
        // registers (including local slots directly). Wrong-arity calls
        // fall through to the generic path for its exact error.
        if let CallTarget::Intrinsic(Intrinsic::Math(f)) = target {
            if args.len() == f.op.arity() {
                let mark = self.temp_top;
                let a = self.compile_expr(&args[0]);
                let b = if f.op.arity() == 2 {
                    self.compile_expr(&args[1])
                } else {
                    a
                };
                self.temp_top = mark;
                let dst = self.temp();
                let (cycles, flops) = match f.op.cost_class() {
                    intrinsics::MathCost::Cheap => (self.cm.fp_op, 1),
                    intrinsics::MathCost::Sqrt => (self.cm.sqrt, self.cm.sqrt_flops),
                    intrinsics::MathCost::Transcendental => {
                        (self.cm.transcendental, self.cm.transcendental_flops)
                    }
                };
                let insn = Insn::MathCall {
                    dst,
                    a,
                    b,
                    f,
                    cycles,
                    flops,
                    name: callee.to_string().into_boxed_str(),
                    span: self.sp(e.span),
                };
                self.code.push(insn);
                return dst;
            }
        }
        // Generic calls need their arguments in contiguous registers: each
        // argument is compiled straight into its position (expressions land
        // there naturally; bare locals are copied in).
        let mark = self.temp_top;
        let first_arg = mark;
        for (i, a) in args.iter().enumerate() {
            let want = first_arg + i as u16;
            self.temp_top = want;
            let r = self.compile_expr(a);
            if r != want {
                self.temp_top = want;
                let w = self.temp();
                debug_assert_eq!(w, want);
                self.code.push(Insn::Copy { dst: want, src: r });
            } else {
                self.temp_top = want + 1;
                self.max_regs = self.max_regs.max(self.temp_top);
            }
        }
        self.temp_top = mark;
        let dst = self.temp();
        let site = self.call_sites.len() as u32;
        self.call_sites.push(CallSite {
            name: callee.to_string().into_boxed_str(),
            target,
            argc: args.len(),
            span: e.span,
        });
        self.code.push(Insn::Call {
            dst,
            site,
            first_arg,
        });
        dst
    }
}
