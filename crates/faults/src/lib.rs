//! # psa-faults — deterministic, seeded fault injection
//!
//! The test substrate for the flow engine's resilience layer. A
//! [`FaultPlan`] is an immutable list of rules that decide, at **named
//! seams** of the meta-programming stack, whether to force a typed error,
//! a panic, or an artificial delay:
//!
//! | seam | where it is probed | actions honoured |
//! |------|--------------------|------------------|
//! | `task` | `FlowEngine::run_task`, site `"{flow}/{task}"` | error, panic, delay |
//! | `select` | strategy `select` at a branch point, site `"{flow}/{branch}"` | error, panic, delay |
//! | `estimate` | platform-model cached estimates, site `"{family}/{device}"` | panic, delay (error escalates to panic) |
//! | `cache` | `EvalCache::get_or_compute`, site = key domain | panic, delay (error escalates to panic) |
//!
//! Faults are **off by default and zero-cost when disabled**: every probe
//! site first checks one relaxed atomic load (mirroring `psa-obs`), and the
//! site-name string is only built after that check passes.
//!
//! ## Determinism
//!
//! A plan never consults a clock or an OS random source. A rule fires
//! based on the probe's *site name* and its *occurrence index* at that
//! site (a per-rule counter), optionally gated by a seeded hash for
//! probabilistic rules — `splitmix64(seed ⊕ fnv64(site) ⊕ occurrence)`.
//! Probes issued from a single thread of execution therefore fire
//! identically run after run. When the same site name is probed
//! concurrently from sibling branch paths, the *occurrence order* is
//! schedule-dependent; plans that must behave identically under the
//! parallel and sequential engines should target site names that are
//! unique per path (flow names embed the device, e.g.
//! `gpu-rtx-2080-ti/Generate HIP Design`) or use `Occurrence::Always`.
//!
//! ## Plan specification strings
//!
//! [`FaultPlan::parse`] accepts the `--fault-plan=` CLI grammar: clauses
//! separated by `;`.
//!
//! ```text
//! seed=42; task:gpu-rtx=error:codegen:injected vendor failure; cache:profile@3=delay:5
//! ```
//!
//! * `seed=<u64>` — seed for probabilistic rules (default 0);
//! * `<seam>:<site-substring>[@<occurrence>]=<action>` where
//!   `<occurrence>` is `<n>` (fire on the n-th matching probe only, 1-based)
//!   or `~<p>` (fire with probability `p`, seeded), default every probe; and
//!   `<action>` is `error[:<kind>[:<message>]]`, `panic[:<message>]` or
//!   `delay:<millis>`. An empty site substring matches every site of the
//!   seam.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A named injection point category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Seam {
    /// A flow task's `run`.
    Task,
    /// A strategy's `select` at a branch point.
    Select,
    /// A platform-model estimate (HLS report, GPU/CPU time model).
    Estimate,
    /// An evaluation-cache lookup.
    Cache,
}

impl Seam {
    /// The spec-string name of the seam.
    pub fn code(&self) -> &'static str {
        match self {
            Seam::Task => "task",
            Seam::Select => "select",
            Seam::Estimate => "estimate",
            Seam::Cache => "cache",
        }
    }

    fn from_code(s: &str) -> Option<Seam> {
        match s {
            "task" => Some(Seam::Task),
            "select" => Some(Seam::Select),
            "estimate" => Some(Seam::Estimate),
            "cache" => Some(Seam::Cache),
            _ => None,
        }
    }
}

/// What an armed rule does when it fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Force a typed error. `kind` names a `FlowError` constructor
    /// (`precondition`, `transform`, `analysis`, `codegen`, `budget`,
    /// `timeout`, `internal`); consumers map it to their error type. At
    /// seams without a `Result` in the signature this escalates to a panic
    /// (which the engine converts back into a typed internal error).
    Error { kind: String, message: String },
    /// Panic with the given message.
    Panic { message: String },
    /// Sleep for the given number of milliseconds before proceeding
    /// (simulates a slow external toolchain; pairs with deadlines).
    Delay { ms: u64 },
}

/// When a matching rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Occurrence {
    /// Every matching probe.
    Always,
    /// Only the n-th matching probe at a given site (1-based).
    Nth(u64),
    /// Each matching probe independently with probability `p`, decided by
    /// the seeded hash of (site, occurrence index) — deterministic for a
    /// fixed plan and probe sequence.
    Rate(f64),
}

/// One matching rule of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    pub seam: Seam,
    /// Substring the probe's site name must contain (empty = every site).
    pub site: String,
    pub occurrence: Occurrence,
    pub action: FaultAction,
}

/// A deterministic fault-injection plan.
///
/// Immutable after construction apart from its per-site occurrence
/// counters; share it via `Arc` (contexts cloned at branch points share the
/// same counters, as do the global-install consumers).
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    /// Occurrence counters keyed by (rule index, site name).
    counters: Mutex<HashMap<(usize, String), u64>>,
    /// Total number of faults fired by this plan.
    fired: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (no rules ever fire) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Append a rule (builder style).
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Convenience builder: force a typed error at every probe of `seam`
    /// whose site contains `site`.
    pub fn fail(self, seam: Seam, site: &str, kind: &str, message: &str) -> Self {
        self.with_rule(FaultRule {
            seam,
            site: site.to_string(),
            occurrence: Occurrence::Always,
            action: FaultAction::Error {
                kind: kind.to_string(),
                message: message.to_string(),
            },
        })
    }

    /// Convenience builder: panic at every probe of `seam` whose site
    /// contains `site`.
    pub fn panic_at(self, seam: Seam, site: &str, message: &str) -> Self {
        self.with_rule(FaultRule {
            seam,
            site: site.to_string(),
            occurrence: Occurrence::Always,
            action: FaultAction::Panic {
                message: message.to_string(),
            },
        })
    }

    /// The seed driving every probabilistic (`@~p`) occurrence decision.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The number of faults this plan has fired so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// The plan's rules.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Probe a seam: returns the action of the first rule that fires, if
    /// any. Every matching rule's occurrence counter for `site` advances,
    /// fired or not.
    pub fn probe(&self, seam: Seam, site: &str) -> Option<FaultAction> {
        if self.rules.is_empty() {
            return None;
        }
        let mut hit = None;
        let mut counters = self.counters.lock().expect("fault counters poisoned");
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.seam != seam || !site.contains(rule.site.as_str()) {
                continue;
            }
            let n = counters
                .entry((i, site.to_string()))
                .and_modify(|c| *c += 1)
                .or_insert(1);
            let fires = match rule.occurrence {
                Occurrence::Always => true,
                Occurrence::Nth(k) => *n == k,
                Occurrence::Rate(p) => unit_fraction(self.seed ^ fnv64(site), *n) < p,
            };
            if fires && hit.is_none() {
                hit = Some(rule.action.clone());
            }
        }
        drop(counters);
        if hit.is_some() {
            self.fired.fetch_add(1, Ordering::Relaxed);
            psa_obs::counter_add("psa_faults_injected_total", &[("seam", seam.code())], 1);
            psa_obs::recorder::record_fault(seam.code(), site);
        }
        hit
    }

    /// Parse a plan from the `--fault-plan=` spec grammar (see the crate
    /// docs). Returns a human-readable error for malformed specs.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed `{seed}`"))?;
                continue;
            }
            let (lhs, action) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause `{clause}` has no `=<action>`"))?;
            let (seam, site_occ) = lhs
                .split_once(':')
                .ok_or_else(|| format!("clause `{clause}` has no `<seam>:` prefix"))?;
            let seam = Seam::from_code(seam.trim())
                .ok_or_else(|| format!("unknown seam `{}` in `{clause}`", seam.trim()))?;
            let (site, occurrence) = match site_occ.rsplit_once('@') {
                None => (site_occ.to_string(), Occurrence::Always),
                Some((site, occ)) => {
                    let occ = occ.trim();
                    let occurrence = if let Some(p) = occ.strip_prefix('~') {
                        let p: f64 = p.parse().map_err(|_| format!("bad rate `{occ}`"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("rate `{occ}` outside [0, 1]"));
                        }
                        Occurrence::Rate(p)
                    } else {
                        Occurrence::Nth(occ.parse().map_err(|_| format!("bad occurrence `{occ}`"))?)
                    };
                    (site.to_string(), occurrence)
                }
            };
            plan.rules.push(FaultRule {
                seam,
                site,
                occurrence,
                action: parse_action(action.trim())?,
            });
        }
        Ok(plan)
    }
}

fn parse_action(action: &str) -> Result<FaultAction, String> {
    let (head, rest) = match action.split_once(':') {
        Some((h, r)) => (h, Some(r)),
        None => (action, None),
    };
    match head {
        "error" => {
            let (kind, message) = match rest {
                None => ("internal".to_string(), "injected fault".to_string()),
                Some(r) => match r.split_once(':') {
                    Some((k, m)) => (k.to_string(), m.to_string()),
                    None => (r.to_string(), "injected fault".to_string()),
                },
            };
            Ok(FaultAction::Error { kind, message })
        }
        "panic" => Ok(FaultAction::Panic {
            message: rest.unwrap_or("injected panic").to_string(),
        }),
        "delay" => {
            let ms = rest.ok_or("delay needs `:<millis>`")?;
            Ok(FaultAction::Delay {
                ms: ms.parse().map_err(|_| format!("bad delay `{ms}`"))?,
            })
        }
        other => Err(format!("unknown action `{other}`")),
    }
}

/// FNV-1a over a site name.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A deterministic value in [0, 1) for (site hash, occurrence index).
fn unit_fraction(site_hash: u64, occurrence: u64) -> f64 {
    let mut x = site_hash ^ occurrence.wrapping_mul(0x9E3779B97F4A7C15);
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------------
// Ambient (process-global) plan — the `--fault-plan=` CLI surface.
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static RwLock<Option<Arc<FaultPlan>>> {
    static SLOT: std::sync::OnceLock<RwLock<Option<Arc<FaultPlan>>>> = std::sync::OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Install `plan` as the process-global ambient plan. Probe sites with no
/// context-local plan consult it.
pub fn install(plan: Arc<FaultPlan>) {
    *slot().write().expect("fault plan slot poisoned") = Some(plan);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Remove the ambient plan; every probe returns to the zero-cost path.
pub fn clear() {
    ENABLED.store(false, Ordering::Relaxed);
    *slot().write().expect("fault plan slot poisoned") = None;
}

/// Whether an ambient plan is installed (one relaxed load).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed ambient plan, if any.
pub fn active() -> Option<Arc<FaultPlan>> {
    if !enabled() {
        return None;
    }
    slot().read().expect("fault plan slot poisoned").clone()
}

/// Probe the ambient plan. `site` is only invoked when a plan is installed,
/// so disabled probes never allocate.
pub fn probe(seam: Seam, site: impl FnOnce() -> String) -> Option<FaultAction> {
    let plan = active()?;
    plan.probe(seam, &site())
}

/// Probe-and-apply for seams whose signatures cannot carry an error:
/// delays sleep, errors and panics panic (the flow engine's task-seam
/// `catch_unwind` converts the panic into a typed internal error).
pub fn apply(seam: Seam, site: impl FnOnce() -> String) {
    match probe(seam, site) {
        None => {}
        Some(FaultAction::Delay { ms }) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        Some(FaultAction::Panic { message }) => panic!("injected fault: {message}"),
        Some(FaultAction::Error { kind, message }) => {
            panic!("injected fault ({kind}): {message}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::new(7);
        assert_eq!(plan.probe(Seam::Task, "psa-flow/Pointer Analysis"), None);
        assert_eq!(plan.fired(), 0);
    }

    #[test]
    fn substring_site_matching_by_seam() {
        let plan = FaultPlan::new(0).fail(Seam::Task, "gpu-rtx", "codegen", "boom");
        assert_eq!(plan.probe(Seam::Task, "cpu-omp/OMP Num. Threads DSE"), None);
        assert_eq!(plan.probe(Seam::Select, "gpu-rtx-2080-ti/B"), None);
        assert_eq!(
            plan.probe(Seam::Task, "gpu-rtx-2080-ti/Generate HIP Design"),
            Some(FaultAction::Error {
                kind: "codegen".into(),
                message: "boom".into()
            })
        );
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn nth_occurrence_fires_exactly_once_per_site() {
        let plan = FaultPlan::new(0).with_rule(FaultRule {
            seam: Seam::Cache,
            site: "profile".into(),
            occurrence: Occurrence::Nth(2),
            action: FaultAction::Delay { ms: 1 },
        });
        assert_eq!(plan.probe(Seam::Cache, "profile"), None);
        assert!(plan.probe(Seam::Cache, "profile").is_some());
        assert_eq!(plan.probe(Seam::Cache, "profile"), None);
        // A different site has its own counter.
        assert_eq!(plan.probe(Seam::Cache, "profile-b"), None);
        assert!(plan.probe(Seam::Cache, "profile-b").is_some());
    }

    #[test]
    fn rate_rules_are_deterministic_in_seed_site_and_occurrence() {
        let mk = |seed| {
            FaultPlan::new(seed).with_rule(FaultRule {
                seam: Seam::Estimate,
                site: String::new(),
                occurrence: Occurrence::Rate(0.5),
                action: FaultAction::Panic {
                    message: "flaky".into(),
                },
            })
        };
        let fires = |plan: &FaultPlan| -> Vec<bool> {
            (0..64)
                .map(|_| plan.probe(Seam::Estimate, "gpu/RTX 2080 Ti").is_some())
                .collect()
        };
        let a = fires(&mk(42));
        let b = fires(&mk(42));
        assert_eq!(a, b, "same seed, same site, same sequence");
        let c = fires(&mk(43));
        assert_ne!(a, c, "a different seed reshuffles the firing pattern");
        let hits = a.iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&hits), "rate 0.5 over 64 draws: {hits}");
    }

    #[test]
    fn parse_round_trips_the_readme_example() {
        let plan = FaultPlan::parse(
            "seed=42; task:gpu-rtx=error:codegen:injected vendor failure; \
             cache:profile@3=delay:5; select:B (GPU device)@~0.25=panic:lost decision",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(
            plan.rules[0].action,
            FaultAction::Error {
                kind: "codegen".into(),
                message: "injected vendor failure".into()
            }
        );
        assert_eq!(plan.rules[1].occurrence, Occurrence::Nth(3));
        assert_eq!(plan.rules[1].action, FaultAction::Delay { ms: 5 });
        assert_eq!(plan.rules[2].occurrence, Occurrence::Rate(0.25));
        assert_eq!(plan.rules[2].seam, Seam::Select);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("task=error").is_err(), "no seam");
        assert!(FaultPlan::parse("task:x").is_err(), "no action");
        assert!(FaultPlan::parse("warp:x=panic").is_err(), "unknown seam");
        assert!(
            FaultPlan::parse("task:x=explode").is_err(),
            "unknown action"
        );
        assert!(FaultPlan::parse("task:x@~1.5=panic").is_err(), "bad rate");
        assert!(FaultPlan::parse("task:x=delay").is_err(), "delay w/o ms");
        assert!(FaultPlan::parse("seed=nope").is_err(), "bad seed");
    }

    #[test]
    fn error_action_defaults() {
        let plan = FaultPlan::parse("task:x=error").unwrap();
        assert_eq!(
            plan.rules[0].action,
            FaultAction::Error {
                kind: "internal".into(),
                message: "injected fault".into()
            }
        );
        let plan = FaultPlan::parse("task:x=error:budget").unwrap();
        assert_eq!(
            plan.rules[0].action,
            FaultAction::Error {
                kind: "budget".into(),
                message: "injected fault".into()
            }
        );
    }

    #[test]
    fn ambient_plan_install_probe_clear() {
        // Single test exercising the global slot (other tests use plan-local
        // probes to stay hermetic).
        assert!(!enabled());
        assert_eq!(probe(Seam::Task, || unreachable!("disabled probe")), None);
        install(Arc::new(FaultPlan::new(0).fail(
            Seam::Task,
            "only-this-site",
            "transform",
            "x",
        )));
        assert!(enabled());
        assert!(probe(Seam::Task, || "a/only-this-site".into()).is_some());
        assert_eq!(probe(Seam::Task, || "other".into()), None);
        clear();
        assert!(!enabled());
        assert_eq!(probe(Seam::Task, || unreachable!("cleared probe")), None);
    }
}
