//! # psa-evalcache — content-addressed evaluation cache
//!
//! PSA-flows re-execute the same expensive evaluations constantly: the
//! dynamic analyses interpret the whole program, `unroll_until_overmap`
//! runs an analytic partial-compile per unroll doubling, and the benchmark
//! harness pushes every application through the informed *and* uninformed
//! flow, which share identical target-independent analysis work. This
//! crate provides the shared memoization layer those seams thread through:
//!
//! * [`EvalCache`] — a thread-safe, type-erased, bounded store. One
//!   instance is shared (via `Arc`) by every cloned per-path context of a
//!   flow and across flow instances in the bench harness.
//! * [`CacheKey`] — content address: a short `domain` discriminator (which
//!   evaluation) plus a 64-bit content hash (of what). Keys are built with
//!   [`KeyBuilder`] from stable inputs only — AST structural fingerprints,
//!   `f64::to_bits` of model parameters, spec fields — never from node
//!   ids, spans or addresses, so equal content always maps to equal keys
//!   and mutated content to fresh ones (invalidation by construction).
//! * [`Fnv64`] — the FNV-1a hasher behind every key and fingerprint.
//!   `std`'s default hasher is randomized per process; FNV-1a is fixed, so
//!   fingerprints are reproducible across runs and machines.
//!
//! Correctness stance: every cached computation is deterministic in its
//! key, so a hit returns bit-identical data to a recompute. Two threads
//! racing on the same absent key may both compute (the lock is *not* held
//! during compute, which also keeps re-entrant cached calls deadlock-free);
//! both arrive at the same value and one insert wins. Hit/miss *counts*
//! therefore depend on scheduling, but cached *values* never do — which is
//! exactly why the flow engine's byte-identical-output invariant keeps
//! holding with the cache enabled.

use std::any::Any;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a 64-bit hasher: deterministic across processes (unlike
/// `std::collections::hash_map::RandomState`), trivially small, and good
/// enough dispersion for content addressing.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hash any `Hash` value through [`Fnv64`] — the deterministic counterpart
/// of `BuildHasher::hash_one`.
pub fn fnv64_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::new();
    value.hash(&mut h);
    h.finish()
}

/// A content address: which evaluation (`domain`) of what content (`hash`).
///
/// The domain keeps structurally equal inputs to *different* evaluations
/// (say, an FPGA report and a GPU estimate over the same workload) from
/// colliding, and doubles as a human-readable label when debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub domain: &'static str,
    pub hash: u64,
}

impl CacheKey {
    pub fn new(domain: &'static str, hash: u64) -> Self {
        CacheKey { domain, hash }
    }
}

/// Builds a [`CacheKey`] from heterogeneous stable inputs.
///
/// Floats are keyed by `to_bits`, so `-0.0` and `0.0` (and different NaN
/// payloads) are distinct keys — harmlessly conservative: at worst the
/// cache recomputes something it could have shared.
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    domain: &'static str,
    h: Fnv64,
}

impl KeyBuilder {
    pub fn new(domain: &'static str) -> Self {
        let mut h = Fnv64::new();
        domain.hash(&mut h);
        KeyBuilder { domain, h }
    }

    pub fn u64(mut self, v: u64) -> Self {
        v.hash(&mut self.h);
        self
    }

    pub fn u32(mut self, v: u32) -> Self {
        v.hash(&mut self.h);
        self
    }

    pub fn i64(mut self, v: i64) -> Self {
        v.hash(&mut self.h);
        self
    }

    pub fn f64(mut self, v: f64) -> Self {
        v.to_bits().hash(&mut self.h);
        self
    }

    pub fn bool(mut self, v: bool) -> Self {
        v.hash(&mut self.h);
        self
    }

    pub fn str(mut self, v: &str) -> Self {
        v.hash(&mut self.h);
        self
    }

    pub fn finish(self) -> CacheKey {
        CacheKey::new(self.domain, self.h.finish())
    }
}

/// Point-in-time cache counters. Deltas between two snapshots (see
/// [`CacheStats::since`]) give per-flow or per-phase figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: u64,
}

impl CacheStats {
    /// Hits as a fraction of lookups; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas accumulated since `earlier` (entries stays absolute).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            entries: self.entries,
        }
    }
}

type Stored = Arc<dyn Any + Send + Sync>;

/// Per-domain counters, maintained under the store lock so entry counts
/// and eviction attribution are exact (the global hit/miss atomics remain
/// the fast path for aggregate stats).
#[derive(Debug, Default, Clone, Copy)]
struct DomainCounters {
    hits: u64,
    misses: u64,
    evictions: u64,
    entries: u64,
}

#[derive(Default)]
struct Store {
    map: HashMap<CacheKey, Stored>,
    /// Insertion order for FIFO eviction once `capacity` is exceeded.
    order: VecDeque<CacheKey>,
    /// Exact per-domain counters (BTreeMap for deterministic iteration).
    domains: BTreeMap<&'static str, DomainCounters>,
}

impl Store {
    /// Remove `oldest` from the map + domain bookkeeping. The caller has
    /// already taken it out of `order`.
    fn evict(&mut self, oldest: CacheKey) {
        self.map.remove(&oldest);
        let d = self.domains.entry(oldest.domain).or_default();
        d.entries = d.entries.saturating_sub(1);
        d.evictions += 1;
        psa_obs::counter_add(
            "psa_evalcache_evictions_total",
            &[("domain", oldest.domain)],
            1,
        );
    }
}

/// Thread-safe, content-addressed, bounded (FIFO-evicting) store of
/// evaluation results.
///
/// Values are type-erased behind `Arc<dyn Any>`; the typed accessors
/// ([`EvalCache::get_or_compute`] / [`EvalCache::try_get_or_compute`])
/// recover the concrete type. The lock is released while the computation
/// runs, so cached computations may themselves call back into the cache.
///
/// [`EvalCache::disabled`] builds a no-op instance: every lookup computes,
/// nothing is stored, all counters stay zero. This is the `--no-cache`
/// baseline — semantically identical by construction.
pub struct EvalCache {
    /// `None` = disabled (pass-through) mode.
    store: Option<Mutex<Store>>,
    capacity: usize,
    /// Per-domain entry ceiling (`None` = only the global capacity bounds
    /// the store). With a quota, a domain that floods the cache evicts its
    /// *own* oldest entries — other domains' working sets survive.
    domain_quota: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Plenty for the full benchmark suite (a few hundred distinct
/// evaluations) while bounding memory for open-ended DSE sweeps.
pub const DEFAULT_CAPACITY: usize = 4096;

impl EvalCache {
    /// An enabled cache with [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled cache holding at most `capacity` entries (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        EvalCache {
            store: Some(Mutex::new(Store::default())),
            capacity: capacity.max(1),
            domain_quota: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// An enabled cache bounded globally by `capacity` *and* per key
    /// domain by `per_domain` (both ≥ 1). This is the multi-tenant shape:
    /// one tenant's cache-flooding domain evicts only its own entries.
    pub fn with_domain_quota(capacity: usize, per_domain: usize) -> Self {
        let mut cache = Self::with_capacity(capacity);
        cache.domain_quota = Some(per_domain.max(1));
        cache
    }

    /// A pass-through cache: always computes, never stores, never counts.
    pub fn disabled() -> Self {
        EvalCache {
            store: None,
            capacity: 0,
            domain_quota: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.store.is_some()
    }

    /// Current counters (all zero for a disabled cache).
    pub fn stats(&self) -> CacheStats {
        let entries = match &self.store {
            Some(m) => m.lock().expect("evalcache poisoned").map.len() as u64,
            None => 0,
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Exact per-domain counters, keyed by domain in sorted order. Empty
    /// for a disabled cache. Each entry's `CacheStats` carries that
    /// domain's hits/misses/evictions and its *current* entry count —
    /// the observable that tenant quota enforcement asserts against.
    pub fn domain_stats(&self) -> Vec<(&'static str, CacheStats)> {
        match &self.store {
            Some(m) => {
                let s = m.lock().expect("evalcache poisoned");
                s.domains
                    .iter()
                    .map(|(&domain, c)| {
                        (
                            domain,
                            CacheStats {
                                hits: c.hits,
                                misses: c.misses,
                                evictions: c.evictions,
                                entries: c.entries,
                            },
                        )
                    })
                    .collect()
            }
            None => Vec::new(),
        }
    }

    /// The per-domain entry ceiling, if one was configured.
    pub fn domain_quota(&self) -> Option<usize> {
        self.domain_quota
    }

    fn lookup<T: Send + Sync + 'static>(&self, key: CacheKey) -> Option<Arc<T>> {
        let store = self.store.as_ref()?;
        let found = {
            let mut s = store.lock().expect("evalcache poisoned");
            let found = s
                .map
                .get(&key)
                .cloned()
                .and_then(|v| v.downcast::<T>().ok());
            let d = s.domains.entry(key.domain).or_default();
            if found.is_some() {
                d.hits += 1;
            } else {
                d.misses += 1;
            }
            found
        };
        match found {
            Some(t) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                psa_obs::counter_add("psa_evalcache_hits_total", &[("domain", key.domain)], 1);
                psa_obs::recorder::record_cache(key.domain, true);
                Some(t)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                psa_obs::counter_add("psa_evalcache_misses_total", &[("domain", key.domain)], 1);
                psa_obs::recorder::record_cache(key.domain, false);
                None
            }
        }
    }

    fn insert(&self, key: CacheKey, value: Stored) {
        let Some(store) = &self.store else { return };
        let mut s = store.lock().expect("evalcache poisoned");
        if s.map.insert(key, value).is_none() {
            // New key (a concurrent loser overwriting an identical value
            // re-uses the existing order slot).
            s.order.push_back(key);
            s.domains.entry(key.domain).or_default().entries += 1;
            // Global bound: FIFO across all domains.
            while s.map.len() > self.capacity {
                if let Some(oldest) = s.order.pop_front() {
                    s.evict(oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                } else {
                    break;
                }
            }
            // Per-domain quota: the flooding domain evicts its *own*
            // oldest entry (linear scan of the order queue — bounded by
            // the global capacity, and only on over-quota inserts).
            if let Some(quota) = self.domain_quota {
                while s.domains.get(key.domain).map_or(0, |d| d.entries) as usize > quota {
                    let victim = s.order.iter().position(|k| k.domain == key.domain);
                    match victim.and_then(|i| s.order.remove(i)) {
                        Some(oldest) => {
                            s.evict(oldest);
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                        None => break,
                    }
                }
            }
            psa_obs::gauge_set(
                "psa_evalcache_domain_entries",
                &[("domain", key.domain)],
                s.domains.get(key.domain).map_or(0, |d| d.entries) as f64,
            );
        }
        psa_obs::gauge_set("psa_evalcache_entries", &[], s.map.len() as f64);
    }

    /// Return the cached value for `key`, computing and storing it on a
    /// miss. The computation MUST be deterministic in the key: concurrent
    /// misses on the same key may both run `compute`, and either (equal)
    /// result may be the one that sticks.
    pub fn get_or_compute<T, F>(&self, key: CacheKey, compute: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        // Fault-injection seam: a rule targeting `cache:<domain>` can delay
        // or fail this lookup deterministically (one relaxed load when no
        // plan is installed).
        psa_faults::apply(psa_faults::Seam::Cache, || key.domain.to_string());
        if let Some(hit) = self.lookup::<T>(key) {
            return hit;
        }
        let value = Arc::new(compute());
        self.insert(key, value.clone());
        value
    }

    /// Fallible variant of [`EvalCache::get_or_compute`]: only `Ok` results
    /// are stored, so a transient failure is retried on the next lookup.
    pub fn try_get_or_compute<T, E, F>(&self, key: CacheKey, compute: F) -> Result<Arc<T>, E>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> Result<T, E>,
    {
        psa_faults::apply(psa_faults::Seam::Cache, || key.domain.to_string());
        if let Some(hit) = self.lookup::<T>(key) {
            return Ok(hit);
        }
        let value = Arc::new(compute()?);
        self.insert(key, value.clone());
        Ok(value)
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCache")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_is_deterministic_and_discriminating() {
        assert_eq!(fnv64_of("abc"), fnv64_of("abc"));
        assert_ne!(fnv64_of("abc"), fnv64_of("abd"));
        // Known FNV-1a vector: empty input hashes to the offset basis.
        let mut h = Fnv64::new();
        h.write(&[]);
        assert_eq!(h.finish(), FNV_OFFSET);
    }

    #[test]
    fn key_builder_orders_and_separates_domains() {
        let a = KeyBuilder::new("d1").u64(1).f64(2.0).finish();
        let b = KeyBuilder::new("d1").u64(1).f64(2.0).finish();
        let c = KeyBuilder::new("d2").u64(1).f64(2.0).finish();
        let d = KeyBuilder::new("d1").f64(2.0).u64(1).finish();
        assert_eq!(a, b);
        assert_ne!(a, c, "same content, different domains");
        assert_ne!(a, d, "field order is part of the address");
    }

    #[test]
    fn hit_returns_same_arc_and_counts() {
        let cache = EvalCache::new();
        let key = KeyBuilder::new("t").u64(7).finish();
        let first = cache.get_or_compute(key, || 42u64);
        let second = cache.get_or_compute(key, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&first, &second));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_always_computes_and_never_counts() {
        let cache = EvalCache::disabled();
        let key = KeyBuilder::new("t").u64(7).finish();
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.get_or_compute(key, || {
                calls += 1;
                calls
            });
            assert_eq!(*v, calls);
        }
        assert_eq!(calls, 3);
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(!cache.is_enabled());
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = EvalCache::new();
        let key = KeyBuilder::new("t").u64(1).finish();
        let err: Result<Arc<u64>, &str> = cache.try_get_or_compute(key, || Err("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        let ok = cache
            .try_get_or_compute(key, || Ok::<u64, &str>(9))
            .unwrap();
        assert_eq!(*ok, 9);
        let hit = cache
            .try_get_or_compute(key, || Err::<u64, &str>("must hit"))
            .unwrap();
        assert_eq!(*hit, 9);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let cache = EvalCache::with_capacity(2);
        let key = |i: u64| KeyBuilder::new("t").u64(i).finish();
        for i in 0..3 {
            cache.get_or_compute(key(i), move || i);
        }
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (2, 1));
        // Key 0 was evicted (FIFO): looking it up recomputes.
        let v = cache.get_or_compute(key(0), || 100u64);
        assert_eq!(*v, 100);
        // Keys 1 and 2 survive... key 1 was evicted by re-inserting key 0.
        let v2 = cache.get_or_compute::<u64, _>(key(2), || unreachable!("still cached"));
        assert_eq!(*v2, 2);
    }

    #[test]
    fn concurrent_misses_converge_on_one_value() {
        let cache = Arc::new(EvalCache::new());
        let key = KeyBuilder::new("t").u64(11).finish();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || *cache.get_or_compute(key, || 5u64))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 5);
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn domain_stats_track_entries_hits_misses_and_evictions() {
        let cache = EvalCache::new();
        let ka = |i: u64| KeyBuilder::new("alpha").u64(i).finish();
        let kb = |i: u64| KeyBuilder::new("beta").u64(i).finish();
        cache.get_or_compute(ka(0), || 0u64); // alpha miss
        cache.get_or_compute(ka(0), || 0u64); // alpha hit
        cache.get_or_compute(kb(0), || 0u64); // beta miss
        cache.get_or_compute(kb(1), || 1u64); // beta miss
        let stats = cache.domain_stats();
        let get = |d: &str| {
            stats
                .iter()
                .find(|(name, _)| *name == d)
                .map(|(_, s)| *s)
                .expect("domain present")
        };
        let a = get("alpha");
        assert_eq!((a.hits, a.misses, a.entries, a.evictions), (1, 1, 1, 0));
        let b = get("beta");
        assert_eq!((b.hits, b.misses, b.entries, b.evictions), (0, 2, 2, 0));
        // Domains come back in sorted order, deterministically.
        let names: Vec<_> = stats.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["alpha", "beta"]);
    }

    #[test]
    fn domain_quota_evicts_only_the_flooding_domain() {
        let cache = EvalCache::with_domain_quota(64, 2);
        assert_eq!(cache.domain_quota(), Some(2));
        let flood = |i: u64| KeyBuilder::new("flood").u64(i).finish();
        let quiet = |i: u64| KeyBuilder::new("quiet").u64(i).finish();
        cache.get_or_compute(quiet(0), || 0u64);
        cache.get_or_compute(quiet(1), || 1u64);
        for i in 0..10 {
            cache.get_or_compute(flood(i), move || i);
        }
        let stats = cache.domain_stats();
        let get = |d: &str| {
            stats
                .iter()
                .find(|(name, _)| *name == d)
                .map(|(_, s)| *s)
                .expect("domain present")
        };
        let f = get("flood");
        assert_eq!((f.entries, f.evictions), (2, 8), "flood capped at quota");
        let q = get("quiet");
        assert_eq!((q.entries, q.evictions), (2, 0), "quiet domain untouched");
        // The flooding domain kept its own *newest* entries (FIFO within
        // the domain): 8 and 9 hit, 0 recomputes.
        cache.get_or_compute::<u64, _>(flood(9), || unreachable!("newest survives"));
        let v = cache.get_or_compute(flood(0), || 100u64);
        assert_eq!(*v, 100, "oldest flood entry was evicted");
        // Aggregate eviction counter covers quota evictions too (8 + the
        // re-insert of flood(0) pushing out flood(1)).
        assert_eq!(cache.stats().evictions, 9);
    }

    #[test]
    fn global_eviction_updates_domain_entry_counts() {
        let cache = EvalCache::with_capacity(2);
        let key = |d: &'static str, i: u64| KeyBuilder::new(d).u64(i).finish();
        cache.get_or_compute(key("a", 0), || 0u64);
        cache.get_or_compute(key("b", 0), || 0u64);
        cache.get_or_compute(key("b", 1), || 1u64); // evicts a/0
        let stats = cache.domain_stats();
        let a = stats.iter().find(|(n, _)| *n == "a").map(|(_, s)| *s);
        assert_eq!(a.map(|s| (s.entries, s.evictions)), Some((0, 1)));
        let b = stats.iter().find(|(n, _)| *n == "b").map(|(_, s)| *s);
        assert_eq!(b.map(|s| (s.entries, s.evictions)), Some((2, 0)));
    }

    #[test]
    fn stats_since_subtracts_counters() {
        let cache = EvalCache::new();
        let key = KeyBuilder::new("t").u64(1).finish();
        cache.get_or_compute(key, || 1u64);
        let snap = cache.stats();
        cache.get_or_compute(key, || 1u64);
        cache.get_or_compute(key, || 1u64);
        let delta = cache.stats().since(&snap);
        assert_eq!((delta.hits, delta.misses), (2, 0));
    }
}
