//! The psa-serve job protocol: line-delimited JSON over stdin or TCP.
//!
//! One request per line, one or more response lines per request. The wire
//! grammar is deliberately small and hand-rolled on both sides (the
//! workspace has no serde serializer): [`encode_request`] /
//! [`Response::encode`] emit canonical single-line JSON, and
//! [`decode_request`] parses with [`psa_obs::json`] and maps every
//! malformed input to a typed [`ProtoError`] — a hostile byte stream can
//! produce rejections, never panics.
//!
//! Requests:
//!
//! ```text
//! {"op":"submit","job":{"id":"j1","tenant":"acme","bench":"nbody",
//!     "mode":"informed","policy":"degrade","arrive_ms":12,
//!     "deadline_ms":5000,"faults":"seed=7; task:gpu=error:transform:x"}}
//! {"op":"cancel","id":"j1"}      cooperatively cancel a queued/running job
//! {"op":"resume"}                start executing (paused-start servers)
//! {"op":"wait"}                  block until every accepted job finished;
//!                                emits results in submission order
//! {"op":"stats"}                 admission/outcome counters
//! {"op":"metrics"}               Prometheus text exposition (as a string)
//! {"op":"drain"}                 stop admitting, finish in-flight work,
//!                                flush metrics + forensic bundles, stop
//! ```
//!
//! A job names its program either by benchmark `"bench"` key (the Table I
//! suite) or by inline `"source"` (MiniC++) — exactly one of the two.
//! `"arrive_ms"` is the job's position on the *virtual* clock: admission
//! (token buckets, queue-wait deadlines) is computed on virtual time so a
//! given submission stream admits, rejects and deadline-expires the exact
//! same jobs on every run and every machine.

use psaflow_core::{FlowMode, FlowOutcome};

/// Maximum accepted line length (1 MiB): a framing backstop so one
/// malformed client cannot balloon server memory.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A typed protocol-level failure: the line never became a valid request.
/// These map to a `400`-style [`Response::BadRequest`]; they are distinct
/// from admission rejections (429/503) and job failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The line is not valid JSON.
    Json { detail: String },
    /// The line parsed, but the top level is not an object.
    NotAnObject,
    /// The line is longer than [`MAX_LINE_BYTES`].
    LineTooLong { len: usize },
    /// A required field is absent.
    MissingField { field: &'static str },
    /// A field is present but unusable (wrong type, bad enum value,
    /// unparseable policy/fault spec, …).
    BadField { field: &'static str, detail: String },
    /// The `"op"` value is not one the server speaks.
    UnknownOp { op: String },
}

impl ProtoError {
    /// Short machine-readable label for counters and responses.
    pub fn label(&self) -> &'static str {
        match self {
            ProtoError::Json { .. } => "bad_json",
            ProtoError::NotAnObject => "not_an_object",
            ProtoError::LineTooLong { .. } => "line_too_long",
            ProtoError::MissingField { .. } => "missing_field",
            ProtoError::BadField { .. } => "bad_field",
            ProtoError::UnknownOp { .. } => "unknown_op",
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Json { detail } => write!(f, "invalid JSON: {detail}"),
            ProtoError::NotAnObject => write!(f, "request must be a JSON object"),
            ProtoError::LineTooLong { len } => {
                write!(
                    f,
                    "line of {len} bytes exceeds the {MAX_LINE_BYTES}-byte limit"
                )
            }
            ProtoError::MissingField { field } => write!(f, "missing field \"{field}\""),
            ProtoError::BadField { field, detail } => {
                write!(f, "bad field \"{field}\": {detail}")
            }
            ProtoError::UnknownOp { op } => write!(f, "unknown op \"{op}\""),
        }
    }
}

/// One job submission: what to run, for whom, and under which failure
/// policy, deadline, fault plan and virtual arrival time.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen job id, unique per connection (echoed in responses).
    pub id: String,
    /// Tenant the job is billed to; admission control is per-tenant.
    pub tenant: String,
    /// Benchmark key from the Table I suite (`rushlarsen`, `nbody`, …).
    /// Exactly one of `bench` / `source` is set.
    pub bench: Option<String>,
    /// Inline MiniC++ source; the job id doubles as the app name.
    pub source: Option<String>,
    /// Informed (strategy at branch point A) or uninformed (all paths).
    pub mode: FlowMode,
    /// Failure-policy spec, `FailurePolicy::parse` grammar
    /// (`failfast` | `degrade` | `retry[:n[:ms[:f]]]`). Validated at
    /// decode; kept as the spec string so round-trips are exact.
    pub policy: String,
    /// End-to-end deadline in virtual milliseconds from `arrive_ms`;
    /// queue wait counts against it.
    pub deadline_ms: Option<u64>,
    /// Position on the submission stream's virtual clock (monotone
    /// non-decreasing per tenant); drives token-bucket refill and
    /// queue-wait deadline accounting deterministically.
    pub arrive_ms: u64,
    /// Per-job fault-injection plan (`FaultPlan::parse` grammar),
    /// travelling context-locally so tenants cannot interfere.
    pub faults: Option<String>,
}

impl JobSpec {
    /// The flow's app name: the benchmark key, or the job id for inline
    /// sources.
    pub fn app_name(&self) -> &str {
        self.bench.as_deref().unwrap_or(&self.id)
    }
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Submit(JobSpec),
    Cancel { id: String },
    Resume,
    Wait,
    Stats,
    Metrics,
    Drain,
}

/// Why admission refused a job. `code()` follows HTTP conventions:
/// per-tenant limits are the client's fault (429), capacity and shutdown
/// are the server's state (503).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's token bucket is empty at the job's virtual arrival.
    RateLimit,
    /// The tenant already has `max_in_flight` jobs admitted and unfinished.
    InFlightQuota,
    /// The global queue is at capacity; load is shed.
    QueueFull,
    /// The server is draining and admits nothing new.
    Draining,
}

impl RejectReason {
    pub fn code(&self) -> u16 {
        match self {
            RejectReason::RateLimit | RejectReason::InFlightQuota => 429,
            RejectReason::QueueFull | RejectReason::Draining => 503,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::RateLimit => "rate_limit",
            RejectReason::InFlightQuota => "in_flight_quota",
            RejectReason::QueueFull => "queue_full",
            RejectReason::Draining => "draining",
        }
    }
}

/// Terminal state of an accepted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The flow completed; `outcome` holds the canonical rendering.
    Done,
    /// The flow returned a typed [`psaflow_core::FlowError`].
    Failed,
    /// The job panicked outside the engine's per-task isolation and was
    /// caught at the worker's job seam; the worker survived.
    Panicked,
    /// The end-to-end deadline elapsed (in queue or mid-flow).
    DeadlineExpired,
    /// The job was cooperatively cancelled.
    Cancelled,
}

impl JobStatus {
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Panicked => "panicked",
            JobStatus::DeadlineExpired => "deadline",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// The terminal record of one accepted job, emitted by `wait` in
/// submission order. Deliberately carries no wall-clock timings: result
/// lines are a pure function of the submission stream, so soak runs can
/// be diffed byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Submission sequence number (0-based, server-assigned).
    pub seq: u64,
    pub id: String,
    pub tenant: String,
    pub status: JobStatus,
    /// Error message for non-`Done` statuses, empty otherwise.
    pub detail: String,
    /// Canonical [`render_outcome`] JSON for `Done` jobs, carried as a
    /// string so clients can compare it byte-for-byte against an offline
    /// `full_psa_flow_cached_on` run.
    pub outcome: Option<String>,
    /// The job's causal trace id (`psa-serve/{tenant}/{id}` root span);
    /// keys the per-job forensic bundle flushed at drain.
    pub trace_id: u64,
    /// Virtual milliseconds the job waited in queue before execution.
    pub queue_wait_ms: u64,
}

/// Counter snapshot returned by the `stats` op. Everything is a count —
/// no timings — so stats lines are deterministic under a fixed stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub accepted: u64,
    pub rejected_rate_limit: u64,
    pub rejected_in_flight_quota: u64,
    pub rejected_queue_full: u64,
    pub rejected_draining: u64,
    pub bad_requests: u64,
    pub done: u64,
    pub failed: u64,
    pub panicked: u64,
    pub deadline_expired: u64,
    pub cancelled: u64,
    pub queued: u64,
    pub running: u64,
    pub draining: bool,
}

impl StatsSnapshot {
    /// All rejections, every reason.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_rate_limit
            + self.rejected_in_flight_quota
            + self.rejected_queue_full
            + self.rejected_draining
    }

    /// All finished jobs, every terminal status.
    pub fn finished_total(&self) -> u64 {
        self.done + self.failed + self.panicked + self.deadline_expired + self.cancelled
    }
}

/// A server response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job passed admission; `seq` is its submission index.
    Accepted {
        id: String,
        seq: u64,
    },
    /// Admission refused the job with a typed reason.
    Rejected {
        id: String,
        reason: RejectReason,
        detail: String,
    },
    /// The line never became a request (see [`ProtoError`]).
    BadRequest {
        code: u16,
        label: String,
        detail: String,
    },
    /// One finished job (emitted by `wait`, submission order).
    Result(Box<JobResult>),
    /// Acknowledges `cancel`; `found` is false for unknown/finished ids.
    CancelAck {
        id: String,
        found: bool,
    },
    Resumed,
    Stats(StatsSnapshot),
    Metrics {
        text: String,
    },
    /// Drain finished: everything accepted reached a terminal state and
    /// artifacts were flushed.
    Drained {
        completed: u64,
        bundles: u64,
    },
}

// ---------------------------------------------------------------------------
// encoding

/// Append `text` as a JSON string literal (quotes + escapes).
pub fn push_json_str(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_kv_str(out: &mut String, key: &str, val: &str) {
    push_json_str(out, key);
    out.push(':');
    push_json_str(out, val);
}

/// Encode a request as one line of JSON (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    let mut s = String::from("{\"op\":");
    match req {
        Request::Submit(job) => {
            s.push_str("\"submit\",\"job\":{");
            push_kv_str(&mut s, "id", &job.id);
            s.push(',');
            push_kv_str(&mut s, "tenant", &job.tenant);
            if let Some(b) = &job.bench {
                s.push(',');
                push_kv_str(&mut s, "bench", b);
            }
            if let Some(src) = &job.source {
                s.push(',');
                push_kv_str(&mut s, "source", src);
            }
            let mode = match job.mode {
                FlowMode::Informed => "informed",
                FlowMode::Uninformed => "uninformed",
            };
            s.push(',');
            push_kv_str(&mut s, "mode", mode);
            s.push(',');
            push_kv_str(&mut s, "policy", &job.policy);
            if let Some(d) = job.deadline_ms {
                s.push_str(&format!(",\"deadline_ms\":{d}"));
            }
            s.push_str(&format!(",\"arrive_ms\":{}", job.arrive_ms));
            if let Some(fp) = &job.faults {
                s.push(',');
                push_kv_str(&mut s, "faults", fp);
            }
            s.push('}');
        }
        Request::Cancel { id } => {
            s.push_str("\"cancel\",");
            push_kv_str(&mut s, "id", id);
        }
        Request::Resume => s.push_str("\"resume\""),
        Request::Wait => s.push_str("\"wait\""),
        Request::Stats => s.push_str("\"stats\""),
        Request::Metrics => s.push_str("\"metrics\""),
        Request::Drain => s.push_str("\"drain\""),
    }
    s.push('}');
    s
}

impl Response {
    /// Encode as one line of JSON (no trailing newline).
    pub fn encode(&self) -> String {
        let mut s = String::from("{");
        match self {
            Response::Accepted { id, seq } => {
                s.push_str("\"ok\":true,\"op\":\"submit\",");
                push_kv_str(&mut s, "id", id);
                s.push_str(&format!(",\"status\":\"accepted\",\"seq\":{seq}"));
            }
            Response::Rejected { id, reason, detail } => {
                s.push_str("\"ok\":false,\"op\":\"submit\",");
                push_kv_str(&mut s, "id", id);
                s.push_str(&format!(",\"code\":{},", reason.code()));
                push_kv_str(&mut s, "reason", reason.label());
                s.push(',');
                push_kv_str(&mut s, "detail", detail);
            }
            Response::BadRequest {
                code,
                label,
                detail,
            } => {
                s.push_str(&format!("\"ok\":false,\"op\":\"error\",\"code\":{code},"));
                push_kv_str(&mut s, "reason", label);
                s.push(',');
                push_kv_str(&mut s, "detail", detail);
            }
            Response::Result(r) => {
                s.push_str(&format!("\"ok\":true,\"op\":\"result\",\"seq\":{},", r.seq));
                push_kv_str(&mut s, "id", &r.id);
                s.push(',');
                push_kv_str(&mut s, "tenant", &r.tenant);
                s.push(',');
                push_kv_str(&mut s, "status", r.status.label());
                s.push_str(&format!(",\"queue_wait_ms\":{}", r.queue_wait_ms));
                s.push_str(&format!(",\"trace_id\":\"{:016x}\"", r.trace_id));
                if !r.detail.is_empty() {
                    s.push(',');
                    push_kv_str(&mut s, "detail", &r.detail);
                }
                if let Some(o) = &r.outcome {
                    s.push(',');
                    push_kv_str(&mut s, "outcome", o);
                }
            }
            Response::CancelAck { id, found } => {
                s.push_str("\"ok\":true,\"op\":\"cancel\",");
                push_kv_str(&mut s, "id", id);
                s.push_str(&format!(",\"found\":{found}"));
            }
            Response::Resumed => s.push_str("\"ok\":true,\"op\":\"resume\""),
            Response::Stats(t) => {
                s.push_str("\"ok\":true,\"op\":\"stats\"");
                s.push_str(&format!(
                    ",\"accepted\":{},\"rejected\":{{\"rate_limit\":{},\"in_flight_quota\":{},\"queue_full\":{},\"draining\":{}}}",
                    t.accepted,
                    t.rejected_rate_limit,
                    t.rejected_in_flight_quota,
                    t.rejected_queue_full,
                    t.rejected_draining,
                ));
                s.push_str(&format!(
                    ",\"bad_requests\":{},\"done\":{},\"failed\":{},\"panicked\":{},\"deadline\":{},\"cancelled\":{}",
                    t.bad_requests, t.done, t.failed, t.panicked, t.deadline_expired, t.cancelled,
                ));
                s.push_str(&format!(
                    ",\"queued\":{},\"running\":{},\"draining\":{}",
                    t.queued, t.running, t.draining
                ));
            }
            Response::Metrics { text } => {
                s.push_str("\"ok\":true,\"op\":\"metrics\",");
                push_kv_str(&mut s, "text", text);
            }
            Response::Drained { completed, bundles } => {
                s.push_str(&format!(
                    "\"ok\":true,\"op\":\"drain\",\"completed\":{completed},\"bundles\":{bundles}"
                ));
            }
        }
        s.push('}');
        s
    }
}

/// Canonical JSON rendering of a successful flow outcome: the designs,
/// reference time, selected target and degraded-path failures — the
/// *outputs* of the flow, excluding telemetry (trace, log, cache stats)
/// whose content legitimately differs between a warm service cache and a
/// cold offline run. Byte-identical outcomes ⇒ byte-identical renderings,
/// so the soak harness compares served results against offline
/// `full_psa_flow_cached_on` with `==` on strings.
pub fn render_outcome(o: &FlowOutcome) -> String {
    let mut s = String::from("{");
    push_kv_str(&mut s, "app", &o.app);
    s.push_str(&format!(",\"reference_time_s\":{}", o.reference_time_s));
    s.push_str(",\"selected_target\":");
    match &o.selected_target {
        Some(t) => push_json_str(&mut s, t.label()),
        None => s.push_str("null"),
    }
    s.push_str(",\"designs\":[");
    for (i, d) in o.designs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('{');
        push_kv_str(&mut s, "target", d.target.label());
        s.push(',');
        push_kv_str(&mut s, "device", d.device.label());
        s.push_str(&format!(",\"loc\":{}", d.loc));
        s.push_str(",\"estimated_time_s\":");
        match d.estimated_time_s {
            Some(t) => s.push_str(&format!("{t}")),
            None => s.push_str("null"),
        }
        s.push_str(&format!(",\"synthesizable\":{}", d.synthesizable));
        s.push_str(",\"notes\":[");
        for (j, n) in d.notes.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            push_json_str(&mut s, n);
        }
        s.push_str("],");
        push_kv_str(&mut s, "source", &d.source);
        s.push('}');
    }
    s.push_str("],\"failures\":[");
    for (i, f) in o.failures.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('{');
        push_kv_str(&mut s, "branch", &format!("{}/{}", f.flow, f.branch));
        s.push_str(&format!(",\"index\":{},", f.index));
        push_kv_str(&mut s, "label", &f.label);
        s.push(',');
        push_kv_str(&mut s, "error", &f.error.message());
        s.push('}');
    }
    s.push_str("]}");
    s
}

// ---------------------------------------------------------------------------
// decoding

use psa_obs::json::{parse, Json};

fn req_str(obj: &Json, field: &'static str) -> Result<String, ProtoError> {
    let v = obj.get(field).ok_or(ProtoError::MissingField { field })?;
    v.as_str().map(str::to_owned).ok_or(ProtoError::BadField {
        field,
        detail: "expected a string".into(),
    })
}

fn opt_str(obj: &Json, field: &'static str) -> Result<Option<String>, ProtoError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_owned()))
            .ok_or(ProtoError::BadField {
                field,
                detail: "expected a string".into(),
            }),
    }
}

fn opt_u64(obj: &Json, field: &'static str) -> Result<Option<u64>, ProtoError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or(ProtoError::BadField {
            field,
            detail: "expected a non-negative integer".into(),
        }),
    }
}

fn decode_job(job: &Json) -> Result<JobSpec, ProtoError> {
    if !matches!(job, Json::Object(_)) {
        return Err(ProtoError::BadField {
            field: "job",
            detail: "expected an object".into(),
        });
    }
    let id = req_str(job, "id")?;
    if id.is_empty() {
        return Err(ProtoError::BadField {
            field: "id",
            detail: "must be non-empty".into(),
        });
    }
    let tenant = req_str(job, "tenant")?;
    if tenant.is_empty() {
        return Err(ProtoError::BadField {
            field: "tenant",
            detail: "must be non-empty".into(),
        });
    }
    let bench = opt_str(job, "bench")?;
    let source = opt_str(job, "source")?;
    match (&bench, &source) {
        (None, None) => {
            return Err(ProtoError::MissingField { field: "bench" });
        }
        (Some(_), Some(_)) => {
            return Err(ProtoError::BadField {
                field: "bench",
                detail: "give either \"bench\" or \"source\", not both".into(),
            });
        }
        _ => {}
    }
    let mode = match req_str(job, "mode")?.as_str() {
        "informed" => FlowMode::Informed,
        "uninformed" => FlowMode::Uninformed,
        other => {
            return Err(ProtoError::BadField {
                field: "mode",
                detail: format!("\"{other}\" is not \"informed\" or \"uninformed\""),
            })
        }
    };
    let policy = opt_str(job, "policy")?.unwrap_or_else(|| "degrade".into());
    if let Err(e) = psaflow_core::FailurePolicy::parse(&policy) {
        return Err(ProtoError::BadField {
            field: "policy",
            detail: e,
        });
    }
    let deadline_ms = opt_u64(job, "deadline_ms")?;
    let arrive_ms = opt_u64(job, "arrive_ms")?.unwrap_or(0);
    let faults = opt_str(job, "faults")?;
    if let Some(spec) = &faults {
        if let Err(e) = psa_faults::FaultPlan::parse(spec) {
            return Err(ProtoError::BadField {
                field: "faults",
                detail: e,
            });
        }
    }
    Ok(JobSpec {
        id,
        tenant,
        bench,
        source,
        mode,
        policy,
        deadline_ms,
        arrive_ms,
        faults,
    })
}

/// Decode one request line. Every malformed input maps to a typed
/// [`ProtoError`]; this function never panics on hostile bytes.
pub fn decode_request(line: &str) -> Result<Request, ProtoError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtoError::LineTooLong { len: line.len() });
    }
    let doc = parse(line).map_err(|detail| ProtoError::Json { detail })?;
    if !matches!(doc, Json::Object(_)) {
        return Err(ProtoError::NotAnObject);
    }
    let op = req_str(&doc, "op")?;
    match op.as_str() {
        "submit" => {
            let job = doc
                .get("job")
                .ok_or(ProtoError::MissingField { field: "job" })?;
            Ok(Request::Submit(decode_job(job)?))
        }
        "cancel" => Ok(Request::Cancel {
            id: req_str(&doc, "id")?,
        }),
        "resume" => Ok(Request::Resume),
        "wait" => Ok(Request::Wait),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "drain" => Ok(Request::Drain),
        other => Err(ProtoError::UnknownOp {
            op: other.to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            id: "j-1".into(),
            tenant: "acme".into(),
            bench: Some("nbody".into()),
            source: None,
            mode: FlowMode::Informed,
            policy: "degrade".into(),
            deadline_ms: Some(5000),
            arrive_ms: 12,
            faults: Some("seed=7; task:gpu=error:transform:x".into()),
        }
    }

    #[test]
    fn submit_round_trips() {
        let req = Request::Submit(spec());
        let line = encode_request(&req);
        assert_eq!(decode_request(&line), Ok(req));
    }

    #[test]
    fn control_ops_round_trip() {
        for req in [
            Request::Cancel { id: "x".into() },
            Request::Resume,
            Request::Wait,
            Request::Stats,
            Request::Metrics,
            Request::Drain,
        ] {
            let line = encode_request(&req);
            assert_eq!(decode_request(&line), Ok(req));
        }
    }

    #[test]
    fn escapes_survive_the_wire() {
        let mut s = spec();
        s.id = "we\"ird\\id\nwith\tcontrol\u{1}chars".into();
        s.bench = None;
        s.source = Some("int main() { return 0; } // \"quoted\"".into());
        let req = Request::Submit(s);
        assert_eq!(decode_request(&encode_request(&req)), Ok(req));
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        let cases: &[(&str, &str)] = &[
            ("", "bad_json"),
            ("{", "bad_json"),
            ("42", "not_an_object"),
            ("[1,2]", "not_an_object"),
            ("{\"op\":\"submit\"}", "missing_field"),
            ("{\"op\":\"submit\",\"job\":3}", "bad_field"),
            ("{\"op\":\"submit\",\"job\":{\"id\":\"a\",\"tenant\":\"t\",\"mode\":\"informed\"}}", "missing_field"),
            ("{\"op\":\"submit\",\"job\":{\"id\":\"a\",\"tenant\":\"t\",\"bench\":\"nbody\",\"mode\":\"sideways\"}}", "bad_field"),
            ("{\"op\":\"submit\",\"job\":{\"id\":\"a\",\"tenant\":\"t\",\"bench\":\"nbody\",\"mode\":\"informed\",\"policy\":\"never\"}}", "bad_field"),
            ("{\"op\":\"submit\",\"job\":{\"id\":\"a\",\"tenant\":\"t\",\"bench\":\"nbody\",\"mode\":\"informed\",\"faults\":\"beep\"}}", "bad_field"),
            ("{\"op\":\"submit\",\"job\":{\"id\":\"a\",\"tenant\":\"t\",\"bench\":\"nbody\",\"source\":\"x\",\"mode\":\"informed\"}}", "bad_field"),
            ("{\"op\":\"launch\"}", "unknown_op"),
            ("{\"op\":7}", "bad_field"),
            ("{\"op\":\"cancel\"}", "missing_field"),
            ("{\"op\":\"submit\",\"job\":{\"id\":\"a\",\"tenant\":\"t\",\"bench\":\"nbody\",\"mode\":\"informed\",\"arrive_ms\":-3}}", "bad_field"),
            ("{\"op\":\"wait\"} trailing", "bad_json"),
        ];
        for (line, label) in cases {
            let err = decode_request(line).expect_err(line);
            assert_eq!(err.label(), *label, "{line} → {err}");
        }
    }

    #[test]
    fn oversized_lines_are_rejected_without_parsing() {
        let line = format!("{{\"op\":\"{}\"}}", "x".repeat(MAX_LINE_BYTES));
        assert!(matches!(
            decode_request(&line),
            Err(ProtoError::LineTooLong { .. })
        ));
    }

    #[test]
    fn defaults_fill_in_policy_and_arrival() {
        let line = "{\"op\":\"submit\",\"job\":{\"id\":\"a\",\"tenant\":\"t\",\"bench\":\"nbody\",\"mode\":\"uninformed\"}}";
        match decode_request(line) {
            Ok(Request::Submit(j)) => {
                assert_eq!(j.policy, "degrade");
                assert_eq!(j.arrive_ms, 0);
                assert_eq!(j.deadline_ms, None);
                assert_eq!(j.mode, FlowMode::Uninformed);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejection_codes_follow_http_conventions() {
        assert_eq!(RejectReason::RateLimit.code(), 429);
        assert_eq!(RejectReason::InFlightQuota.code(), 429);
        assert_eq!(RejectReason::QueueFull.code(), 503);
        assert_eq!(RejectReason::Draining.code(), 503);
    }

    #[test]
    fn outcome_rendering_is_stable_and_parseable() {
        let o = psaflow_core::full_psa_flow(
            "int main() { int n = 96; double* a = alloc_double(n);\
             double* b = alloc_double(n); fill_random(a, n, 3);\
             for (int i = 0; i < n; i++) { double x = a[i];\
             b[i] = exp(x) * sqrt(x + 1.0) + x * x; }\
             double s = 0.0;\
             for (int i = 0; i < n; i++) { s += b[i]; }\
             sink(s); return 0; }",
            "tiny",
            FlowMode::Uninformed,
            psaflow_core::PsaParams::default(),
        )
        .expect("flow runs");
        let a = render_outcome(&o);
        let b = render_outcome(&o);
        assert_eq!(a, b);
        let doc = psa_obs::json::parse(&a).expect("valid JSON");
        assert_eq!(doc.get("app").and_then(|v| v.as_str()), Some("tiny"));
        assert!(!doc.get("designs").unwrap().as_array().unwrap().is_empty());
    }
}
