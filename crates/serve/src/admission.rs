//! Per-tenant admission control on a virtual clock.
//!
//! Every job carries an `arrive_ms` position on the submission stream's
//! virtual clock, and *all* admission arithmetic — token-bucket refill,
//! in-flight quotas, queue bounds — runs on that clock, never on wall
//! time. Admission is therefore a pure function of the submission stream:
//! a soak harness replaying the same seeded stream gets the exact same
//! accept/reject decisions on every run and every machine, which is what
//! lets CI gate on exact counts.
//!
//! Checks run in a fixed order (so the *reason* a job bounces is also
//! deterministic): draining → queue capacity → per-tenant in-flight
//! quota → per-tenant rate limit. Only a fully admitted job consumes a
//! token or an in-flight slot.

use crate::proto::RejectReason;
use std::collections::HashMap;

/// Per-tenant admission knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Sustained admission rate, jobs per virtual second.
    pub rate_per_sec: f64,
    /// Token-bucket burst capacity (also the initial fill).
    pub burst: f64,
    /// Maximum jobs admitted but not yet finished for this tenant.
    pub max_in_flight: usize,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            rate_per_sec: 50.0,
            burst: 100.0,
            max_in_flight: 256,
        }
    }
}

/// A classic token bucket, refilled by virtual-time deltas.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_ms: u64,
}

#[derive(Debug, Default)]
struct TenantState {
    bucket: Option<Bucket>,
    in_flight: usize,
}

/// The admission decision point. Owned by the server, consulted under its
/// state lock so decisions serialize in submission order.
#[derive(Debug)]
pub struct AdmissionController {
    default_policy: TenantPolicy,
    overrides: HashMap<String, TenantPolicy>,
    tenants: HashMap<String, TenantState>,
    queue_capacity: usize,
}

impl AdmissionController {
    pub fn new(default_policy: TenantPolicy, queue_capacity: usize) -> Self {
        AdmissionController {
            default_policy,
            overrides: HashMap::new(),
            tenants: HashMap::new(),
            queue_capacity: queue_capacity.max(1),
        }
    }

    /// Install a per-tenant policy override (before traffic arrives).
    pub fn set_policy(&mut self, tenant: impl Into<String>, policy: TenantPolicy) {
        self.overrides.insert(tenant.into(), policy);
    }

    /// The policy governing `tenant`.
    pub fn policy_for(&self, tenant: &str) -> TenantPolicy {
        self.overrides
            .get(tenant)
            .copied()
            .unwrap_or(self.default_policy)
    }

    /// Decide one submission. `queued_now` is the current global queue
    /// depth (backpressure bound); `arrive_ms` the job's virtual arrival.
    /// `Ok` means the job consumed a token and an in-flight slot; the
    /// caller must eventually pair it with [`Self::complete`].
    pub fn admit(
        &mut self,
        tenant: &str,
        arrive_ms: u64,
        queued_now: usize,
        draining: bool,
    ) -> Result<(), RejectReason> {
        if draining {
            return Err(RejectReason::Draining);
        }
        if queued_now >= self.queue_capacity {
            return Err(RejectReason::QueueFull);
        }
        let policy = self.policy_for(tenant);
        let state = self.tenants.entry(tenant.to_owned()).or_default();
        if state.in_flight >= policy.max_in_flight {
            return Err(RejectReason::InFlightQuota);
        }
        let bucket = state.bucket.get_or_insert(Bucket {
            tokens: policy.burst,
            last_ms: arrive_ms,
        });
        // Virtual clocks are monotone per tenant by construction; guard
        // against a misbehaving client rewinding its own clock anyway.
        if arrive_ms > bucket.last_ms {
            let dt = (arrive_ms - bucket.last_ms) as f64 / 1000.0;
            bucket.tokens = (bucket.tokens + dt * policy.rate_per_sec).min(policy.burst);
            bucket.last_ms = arrive_ms;
        }
        if bucket.tokens < 1.0 {
            return Err(RejectReason::RateLimit);
        }
        bucket.tokens -= 1.0;
        state.in_flight += 1;
        Ok(())
    }

    /// A previously admitted job for `tenant` reached a terminal state.
    pub fn complete(&mut self, tenant: &str) {
        if let Some(state) = self.tenants.get_mut(tenant) {
            state.in_flight = state.in_flight.saturating_sub(1);
        }
    }

    /// Jobs currently admitted-but-unfinished for `tenant`.
    pub fn in_flight(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |s| s.in_flight)
    }

    /// The global queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(rate: f64, burst: f64, quota: usize, queue: usize) -> AdmissionController {
        AdmissionController::new(
            TenantPolicy {
                rate_per_sec: rate,
                burst,
                max_in_flight: quota,
            },
            queue,
        )
    }

    #[test]
    fn burst_then_rate_limit_then_refill() {
        let mut c = ctl(1.0, 2.0, 100, 100);
        assert!(c.admit("a", 0, 0, false).is_ok());
        assert!(c.admit("a", 0, 0, false).is_ok());
        assert_eq!(c.admit("a", 0, 0, false), Err(RejectReason::RateLimit));
        // One virtual second refills one token at 1 job/s.
        assert!(c.admit("a", 1000, 0, false).is_ok());
        assert_eq!(c.admit("a", 1500, 0, false), Err(RejectReason::RateLimit));
    }

    #[test]
    fn in_flight_quota_frees_on_complete() {
        let mut c = ctl(1000.0, 1000.0, 2, 100);
        assert!(c.admit("a", 0, 0, false).is_ok());
        assert!(c.admit("a", 0, 0, false).is_ok());
        assert_eq!(c.admit("a", 0, 0, false), Err(RejectReason::InFlightQuota));
        c.complete("a");
        assert!(c.admit("a", 0, 0, false).is_ok());
        assert_eq!(c.in_flight("a"), 2);
    }

    #[test]
    fn tenants_are_isolated() {
        let mut c = ctl(1.0, 1.0, 1, 100);
        assert!(c.admit("a", 0, 0, false).is_ok());
        assert_eq!(c.admit("a", 0, 0, false), Err(RejectReason::InFlightQuota));
        // Tenant b has its own bucket and quota.
        assert!(c.admit("b", 0, 0, false).is_ok());
    }

    #[test]
    fn overrides_beat_the_default_policy() {
        let mut c = ctl(1000.0, 1000.0, 100, 100);
        c.set_policy(
            "vip",
            TenantPolicy {
                rate_per_sec: 1000.0,
                burst: 1000.0,
                max_in_flight: 1,
            },
        );
        assert!(c.admit("vip", 0, 0, false).is_ok());
        assert_eq!(
            c.admit("vip", 0, 0, false),
            Err(RejectReason::InFlightQuota)
        );
        assert!(c.admit("other", 0, 0, false).is_ok());
    }

    #[test]
    fn shed_and_drain_outrank_tenant_limits() {
        let mut c = ctl(0.0, 0.0, 0, 4);
        assert_eq!(c.admit("a", 0, 0, true), Err(RejectReason::Draining));
        assert_eq!(c.admit("a", 0, 4, false), Err(RejectReason::QueueFull));
        // Only past both global gates do tenant limits apply.
        assert_eq!(c.admit("a", 0, 3, false), Err(RejectReason::InFlightQuota));
    }

    #[test]
    fn clock_rewinds_do_not_mint_tokens() {
        let mut c = ctl(1.0, 1.0, 100, 100);
        assert!(c.admit("a", 5000, 0, false).is_ok());
        assert_eq!(c.admit("a", 0, 0, false), Err(RejectReason::RateLimit));
        assert_eq!(c.admit("a", 5000, 0, false), Err(RejectReason::RateLimit));
        assert!(c.admit("a", 6000, 0, false).is_ok());
    }
}
