//! # psa-serve — a fault-isolated multi-tenant design-flow service
//!
//! Long-running daemon accepting PSA design-flow jobs over line-delimited
//! JSON (stdin or TCP): each job names a benchmark or inline source, a
//! flow mode, a failure policy, a deadline and an optional fault plan,
//! and runs on a bounded worker pool behind per-tenant admission control.
//!
//! The moving parts:
//!
//! * [`proto`] — the wire protocol: requests, responses, typed
//!   [`proto::ProtoError`]s for malformed lines, typed
//!   [`proto::RejectReason`]s for admission refusals, and the canonical
//!   [`proto::render_outcome`] rendering that makes served results
//!   byte-comparable to offline `full_psa_flow_cached_on` runs;
//! * [`admission`] — token-bucket rate limits, per-tenant in-flight
//!   quotas and a bounded global queue, all computed on the submission
//!   stream's *virtual clock* so decisions are deterministic;
//! * [`server`] — the daemon core: worker pool with per-job
//!   `catch_unwind` isolation under `psa-serve/{tenant}/{job}` root
//!   spans, cooperative cancellation and end-to-end deadlines threaded
//!   through the flow engine, one shared domain-quota'd
//!   [`psa_evalcache::EvalCache`] across tenants, and graceful drain that
//!   flushes a metrics snapshot plus per-job forensic bundles;
//! * [`loadgen`] — the seeded workload generator behind the `psa-load`
//!   binary and the soak harness: same seed, same submission stream,
//!   byte-for-byte.

pub mod admission;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use admission::{AdmissionController, TenantPolicy};
pub use proto::{
    decode_request, encode_request, render_outcome, JobResult, JobSpec, JobStatus, ProtoError,
    RejectReason, Request, Response, StatsSnapshot,
};
pub use server::{serve_tcp, Server, ServerConfig};
