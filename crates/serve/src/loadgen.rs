//! Seeded workload generation for psa-serve: the `psa-load` binary and
//! the soak harness both call [`script`], so "the workload with seed 7"
//! means the exact same byte stream everywhere. Determinism is the whole
//! point — the soak gate replays one stream twice and diffs the output.

use crate::proto::{encode_request, JobSpec, Request};
use psaflow_core::FlowMode;

/// Knobs for one generated workload.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    pub seed: u64,
    /// Submissions to generate.
    pub jobs: usize,
    /// Tenant names; the first is "flooding" (picked ~half the time) so
    /// quota and rate rejections actually trigger.
    pub tenants: Vec<String>,
    /// Maximum virtual-ms gap between consecutive arrivals.
    pub arrive_step_ms: u64,
    /// Fraction of jobs given a deadline tight enough to expire in queue.
    pub deadline_frac: f64,
    /// Fraction of jobs carrying a fault-injection plan.
    pub fault_frac: f64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            seed: 1,
            jobs: 100,
            tenants: vec!["alpha".into(), "bravo".into(), "charlie".into()],
            arrive_step_ms: 7,
            deadline_frac: 0.05,
            fault_frac: 0.10,
        }
    }
}

/// xorshift64* — tiny, seedable, good enough for workload shaping.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() % 10_000) as f64 / 10_000.0 < p
    }
}

const BENCH_KEYS: &[&str] = &["rushlarsen", "nbody", "bezier", "adpredictor", "kmeans"];

/// A deadline far beyond any real execution, used for jobs that should
/// run: it threads deadline enforcement through the engine without ever
/// firing, keeping outcome counts deterministic.
pub const GENEROUS_DEADLINE_MS: u64 = 10_000_000;

/// Generate the submission stream (submissions only, in arrival order).
pub fn generate(cfg: &LoadConfig) -> Vec<Request> {
    let mut rng = Rng::new(cfg.seed);
    let mut arrive_ms = 0u64;
    let mut out = Vec::with_capacity(cfg.jobs);
    for i in 0..cfg.jobs {
        arrive_ms += 1 + rng.next_u64() % cfg.arrive_step_ms.max(1);
        // The first tenant floods; the rest share the remainder evenly.
        let tenant = if cfg.tenants.len() > 1 && rng.chance(0.5) {
            cfg.tenants[0].clone()
        } else {
            cfg.tenants[rng.pick(cfg.tenants.len())].clone()
        };
        let bench = BENCH_KEYS[rng.pick(BENCH_KEYS.len())];
        let mode = if rng.chance(0.75) {
            FlowMode::Informed
        } else {
            FlowMode::Uninformed
        };
        let policy = match rng.pick(10) {
            0 => "failfast".to_owned(),
            1 | 2 => "retry:2".to_owned(),
            _ => "degrade".to_owned(),
        };
        // Tight deadlines (a few virtual ms) expire while queued on any
        // stream longer than a handful of jobs; everything else gets the
        // generous deadline or none.
        let deadline_ms = if rng.chance(cfg.deadline_frac) {
            Some(1 + rng.next_u64() % 5)
        } else if rng.chance(0.5) {
            Some(GENEROUS_DEADLINE_MS)
        } else {
            None
        };
        let faults = if rng.chance(cfg.fault_frac) {
            Some(match rng.pick(4) {
                0 => format!(
                    "seed={}; task:gpu=error:transform:injected",
                    cfg.seed ^ i as u64
                ),
                1 => format!(
                    "seed={}; task:fpga=panic:injected fault",
                    cfg.seed ^ i as u64
                ),
                2 => format!("seed={}; task:cpu=delay:1", cfg.seed ^ i as u64),
                _ => format!(
                    "seed={}; select:psa=error:analysis:injected",
                    cfg.seed ^ i as u64
                ),
            })
        } else {
            None
        };
        out.push(Request::Submit(JobSpec {
            id: format!("{tenant}-{i:05}"),
            tenant,
            bench: Some(bench.to_owned()),
            source: None,
            mode,
            policy,
            deadline_ms,
            arrive_ms,
            faults,
        }));
    }
    out
}

/// The full session as requests: submissions, then resume / wait /
/// stats / drain.
pub fn session(cfg: &LoadConfig) -> Vec<Request> {
    let mut reqs = generate(cfg);
    reqs.extend([
        Request::Resume,
        Request::Wait,
        Request::Stats,
        Request::Drain,
    ]);
    reqs
}

/// The full session as the line-delimited wire script.
pub fn script(cfg: &LoadConfig) -> String {
    let mut s = String::new();
    for req in session(cfg) {
        s.push_str(&encode_request(&req));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let cfg = LoadConfig {
            jobs: 50,
            ..LoadConfig::default()
        };
        assert_eq!(script(&cfg), script(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = LoadConfig {
            jobs: 50,
            ..LoadConfig::default()
        };
        let b = LoadConfig {
            seed: 2,
            jobs: 50,
            ..LoadConfig::default()
        };
        assert_ne!(script(&a), script(&b));
    }

    #[test]
    fn every_generated_line_decodes() {
        let cfg = LoadConfig {
            jobs: 200,
            deadline_frac: 0.2,
            fault_frac: 0.3,
            ..LoadConfig::default()
        };
        for line in script(&cfg).lines() {
            crate::proto::decode_request(line).expect(line);
        }
    }

    #[test]
    fn arrivals_are_monotone() {
        let cfg = LoadConfig::default();
        let mut last = 0;
        for req in generate(&cfg) {
            if let Request::Submit(j) = req {
                assert!(j.arrive_ms >= last);
                last = j.arrive_ms;
            }
        }
        assert!(last > 0);
    }
}
