//! The psa-serve daemon: design-flow jobs as a service.
//!
//! ```text
//! psa-serve [--tcp ADDR] [--workers N] [--queue N] [--paused]
//!           [--default-policy RATE:BURST:QUOTA]
//!           [--tenant NAME:RATE:BURST:QUOTA]...
//!           [--cache-cap N] [--domain-quota N]
//!           [--record] [--bundle-dir DIR] [--metrics-out FILE]
//! ```
//!
//! Without `--tcp` the daemon speaks the line protocol on stdin/stdout
//! (one request per line; EOF drains gracefully) — the form the soak and
//! determinism gates drive. With `--tcp ADDR` it listens for connections
//! and serves each on its own thread until a client sends `drain`.

use psa_serve::{Server, ServerConfig, TenantPolicy};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    tcp: Option<String>,
    cfg: ServerConfig,
    record: bool,
}

fn usage() -> &'static str {
    "usage: psa-serve [--tcp ADDR] [--workers N] [--queue N] [--paused]\n\
     \x20                [--default-policy RATE:BURST:QUOTA] [--tenant NAME:RATE:BURST:QUOTA]...\n\
     \x20                [--cache-cap N] [--domain-quota N]\n\
     \x20                [--record] [--bundle-dir DIR] [--metrics-out FILE]"
}

fn parse_policy(spec: &str) -> Result<TenantPolicy, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 3 {
        return Err(format!("policy \"{spec}\" is not RATE:BURST:QUOTA"));
    }
    Ok(TenantPolicy {
        rate_per_sec: parts[0]
            .parse()
            .map_err(|e| format!("bad rate in \"{spec}\": {e}"))?,
        burst: parts[1]
            .parse()
            .map_err(|e| format!("bad burst in \"{spec}\": {e}"))?,
        max_in_flight: parts[2]
            .parse()
            .map_err(|e| format!("bad quota in \"{spec}\": {e}"))?,
    })
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        cfg: ServerConfig::default(),
        record: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--workers" => {
                args.cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?
            }
            "--queue" => {
                args.cfg.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("bad --queue: {e}"))?
            }
            "--paused" => args.cfg.paused = true,
            "--default-policy" => {
                args.cfg.default_policy = parse_policy(&value("--default-policy")?)?
            }
            "--tenant" => {
                let spec = value("--tenant")?;
                let (name, rest) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("tenant \"{spec}\" is not NAME:RATE:BURST:QUOTA"))?;
                args.cfg
                    .tenants
                    .push((name.to_owned(), parse_policy(rest)?));
            }
            "--cache-cap" => {
                args.cfg.cache_capacity = value("--cache-cap")?
                    .parse()
                    .map_err(|e| format!("bad --cache-cap: {e}"))?
            }
            "--domain-quota" => {
                let n: usize = value("--domain-quota")?
                    .parse()
                    .map_err(|e| format!("bad --domain-quota: {e}"))?;
                args.cfg.cache_domain_quota = if n == 0 { None } else { Some(n) };
            }
            "--record" => args.record = true,
            "--bundle-dir" => args.cfg.bundle_dir = Some(value("--bundle-dir")?.into()),
            "--metrics-out" => args.cfg.metrics_path = Some(value("--metrics-out")?.into()),
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown argument \"{other}\"\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.record {
        psa_obs::set_enabled(true);
        psa_obs::recorder::set_enabled(true);
    }
    let server = Arc::new(Server::new(args.cfg));
    let result = match &args.tcp {
        Some(addr) => match std::net::TcpListener::bind(addr) {
            Ok(listener) => {
                match listener.local_addr() {
                    Ok(local) => eprintln!("psa-serve: listening on {local}"),
                    Err(_) => eprintln!("psa-serve: listening on {addr}"),
                }
                psa_serve::serve_tcp(&server, listener)
            }
            Err(e) => {
                eprintln!("psa-serve: cannot bind {addr}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            server.serve_lines(stdin.lock(), stdout.lock())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("psa-serve: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}
