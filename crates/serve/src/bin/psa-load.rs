//! psa-load: seeded workload generator and TCP driver for psa-serve.
//!
//! ```text
//! psa-load [--seed N] [--jobs N] [--tenants a,b,c] [--step MS]
//!          [--deadline-frac F] [--fault-frac F] [--connect ADDR]
//! ```
//!
//! Without `--connect` it emits the generated session script (one request
//! per line) to stdout — pipe it straight into `psa-serve`:
//!
//! ```text
//! psa-load --seed 7 --jobs 500 | psa-serve --paused --queue 4096
//! ```
//!
//! With `--connect ADDR` it plays the session against a listening daemon
//! and echoes every response line to stdout, so two runs against two
//! fresh paused daemons can be diffed byte-for-byte.

use psa_serve::loadgen::{script, LoadConfig};
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: psa-load [--seed N] [--jobs N] [--tenants a,b,c] [--step MS]\n\
     \x20               [--deadline-frac F] [--fault-frac F] [--connect ADDR]"
}

fn parse_args(argv: &[String]) -> Result<(LoadConfig, Option<String>), String> {
    let mut cfg = LoadConfig::default();
    let mut connect = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--jobs" => {
                cfg.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?
            }
            "--tenants" => {
                cfg.tenants = value("--tenants")?
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(str::to_owned)
                    .collect();
                if cfg.tenants.is_empty() {
                    return Err("--tenants needs at least one name".to_owned());
                }
            }
            "--step" => {
                cfg.arrive_step_ms = value("--step")?
                    .parse()
                    .map_err(|e| format!("bad --step: {e}"))?
            }
            "--deadline-frac" => {
                cfg.deadline_frac = value("--deadline-frac")?
                    .parse()
                    .map_err(|e| format!("bad --deadline-frac: {e}"))?
            }
            "--fault-frac" => {
                cfg.fault_frac = value("--fault-frac")?
                    .parse()
                    .map_err(|e| format!("bad --fault-frac: {e}"))?
            }
            "--connect" => connect = Some(value("--connect")?),
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown argument \"{other}\"\n{}", usage())),
        }
    }
    Ok((cfg, connect))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, connect) = match parse_args(&argv) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let session = script(&cfg);
    match connect {
        None => {
            let mut out = std::io::stdout().lock();
            if let Err(e) = out.write_all(session.as_bytes()) {
                eprintln!("psa-load: stdout error: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some(addr) => {
            let stream = match std::net::TcpStream::connect(&addr) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("psa-load: cannot connect to {addr}: {e}");
                    return ExitCode::from(2);
                }
            };
            let reader = match stream.try_clone() {
                Ok(s) => BufReader::new(s),
                Err(e) => {
                    eprintln!("psa-load: connection clone failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Write on a separate thread: the server responds while the
            // session is still streaming in, so a single-threaded
            // write-then-read would deadlock once both socket buffers
            // fill on a large workload.
            let sender = std::thread::spawn(move || {
                let mut stream = stream;
                stream
                    .write_all(session.as_bytes())
                    .and_then(|()| stream.flush())
            });
            let mut out = std::io::stdout().lock();
            for line in reader.lines() {
                match line {
                    Ok(line) => {
                        if writeln!(out, "{line}").is_err() {
                            return ExitCode::FAILURE;
                        }
                    }
                    Err(e) => {
                        eprintln!("psa-load: receive failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            match sender.join() {
                Ok(Ok(())) => ExitCode::SUCCESS,
                Ok(Err(e)) => {
                    eprintln!("psa-load: send failed: {e}");
                    ExitCode::FAILURE
                }
                Err(_) => {
                    eprintln!("psa-load: sender thread panicked");
                    ExitCode::FAILURE
                }
            }
        }
    }
}
