//! The psa-serve daemon core: a bounded worker pool behind per-tenant
//! admission control, with cooperative cancellation, end-to-end deadlines
//! (queue wait counts), one shared evaluation cache, and graceful drain.
//!
//! Fault isolation is layered: the flow engine already catches panics at
//! every task and path seam; each worker additionally wraps the whole job
//! in `catch_unwind` under its own causal root span
//! (`psa-serve/{tenant}/{job}`), so a job that explodes outside the
//! engine's seams — or in the service glue itself — costs exactly that
//! job, never the worker and never the daemon.
//!
//! Determinism contract: with a paused-start server (admit everything,
//! then `resume`), every admission decision, queue-wait deadline and job
//! outcome is a pure function of the submission stream — results carry no
//! wall-clock values and `wait` emits them in submission order, so two
//! runs of the same stream produce byte-identical output.

use crate::admission::{AdmissionController, TenantPolicy};
use crate::proto::{
    decode_request, JobResult, JobSpec, JobStatus, ProtoError, RejectReason, Request, Response,
    StatsSnapshot,
};
use psa_evalcache::EvalCache;
use psaflow_core::{CancelToken, FailurePolicy, FlowEngine, FlowError, FlowJob, PsaParams};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Global queue bound; submissions beyond it shed with `queue_full`.
    pub queue_capacity: usize,
    /// Admission policy for tenants without an override.
    pub default_policy: TenantPolicy,
    /// Per-tenant policy overrides.
    pub tenants: Vec<(String, TenantPolicy)>,
    /// Start paused: admit jobs but run nothing until `resume` (or
    /// `wait`/`drain`, which imply it). This is the deterministic mode —
    /// admission sees the whole stream before execution interleaves.
    pub paused: bool,
    /// Shared evaluation-cache capacity (entries), across all tenants.
    pub cache_capacity: usize,
    /// Per-domain entry quota inside the shared cache, so one tenant's
    /// hot domain cannot evict everyone else's working set.
    pub cache_domain_quota: Option<usize>,
    /// Where drain flushes per-job forensic bundles (requires the
    /// recorder to be enabled); `None` skips bundle flushing.
    pub bundle_dir: Option<PathBuf>,
    /// Where drain flushes a final Prometheus metrics snapshot.
    pub metrics_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 1024,
            default_policy: TenantPolicy::default(),
            tenants: Vec::new(),
            paused: false,
            cache_capacity: 4096,
            cache_domain_quota: Some(1024),
            bundle_dir: None,
            metrics_path: None,
        }
    }
}

/// One admitted, not-yet-executed job.
struct Admitted {
    seq: u64,
    spec: JobSpec,
    cancel: Arc<CancelToken>,
}

#[derive(Default)]
struct Stats {
    accepted: u64,
    rejected_rate_limit: u64,
    rejected_in_flight_quota: u64,
    rejected_queue_full: u64,
    rejected_draining: u64,
    bad_requests: u64,
    done: u64,
    failed: u64,
    panicked: u64,
    deadline_expired: u64,
    cancelled: u64,
}

struct State {
    admission: AdmissionController,
    queue: VecDeque<Admitted>,
    results: BTreeMap<u64, JobResult>,
    /// Cancellation handles for queued + running jobs, by job id.
    cancels: HashMap<String, Arc<CancelToken>>,
    stats: Stats,
    next_seq: u64,
    running: usize,
    /// High-water mark of the submission stream's virtual clock.
    virtual_now_ms: u64,
    paused: bool,
    draining: bool,
    shutdown: bool,
}

struct Inner {
    cfg: ServerConfig,
    cache: Arc<EvalCache>,
    state: Mutex<State>,
    /// Signals workers: queue non-empty, unpaused, or shutdown.
    work: Condvar,
    /// Signals waiters: a job reached a terminal state.
    done: Condvar,
    shutdown_flag: AtomicBool,
}

impl Inner {
    /// Lock the state, recovering from poisoning: a panicking worker is
    /// exactly the failure this server is built to survive, so a poisoned
    /// mutex must not take the daemon down with it.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The daemon. Construct with [`Server::new`], feed it with
/// [`Server::handle_request`] or [`Server::serve_lines`]; `drain` (or
/// drop) shuts it down gracefully.
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    pub fn new(cfg: ServerConfig) -> Server {
        let mut admission = AdmissionController::new(cfg.default_policy, cfg.queue_capacity);
        for (tenant, policy) in &cfg.tenants {
            admission.set_policy(tenant.clone(), *policy);
        }
        let cache = Arc::new(match cfg.cache_domain_quota {
            Some(q) => EvalCache::with_domain_quota(cfg.cache_capacity, q),
            None => EvalCache::with_capacity(cfg.cache_capacity),
        });
        let paused = cfg.paused;
        let worker_count = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            cfg,
            cache,
            state: Mutex::new(State {
                admission,
                queue: VecDeque::new(),
                results: BTreeMap::new(),
                cancels: HashMap::new(),
                stats: Stats::default(),
                next_seq: 0,
                running: 0,
                virtual_now_ms: 0,
                paused,
                draining: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            shutdown_flag: AtomicBool::new(false),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("psa-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Server {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// The shared evaluation cache (for tests and benchmarks).
    pub fn cache(&self) -> &Arc<EvalCache> {
        &self.inner.cache
    }

    /// True once drain completed (or the server was dropped).
    pub fn is_shutdown(&self) -> bool {
        self.inner.shutdown_flag.load(Ordering::Acquire)
    }

    /// Handle one request; returns the response lines to emit, in order.
    pub fn handle_request(&self, req: &Request) -> Vec<Response> {
        match req {
            Request::Submit(spec) => vec![self.submit(spec)],
            Request::Cancel { id } => vec![self.cancel_job(id)],
            Request::Resume => {
                self.resume();
                vec![Response::Resumed]
            }
            Request::Wait => self.wait(),
            Request::Stats => vec![Response::Stats(self.stats())],
            Request::Metrics => vec![Response::Metrics {
                text: psa_obs::global().render_prometheus(),
            }],
            Request::Drain => vec![self.drain()],
        }
    }

    fn submit(&self, spec: &JobSpec) -> Response {
        let mut s = self.inner.lock();
        s.virtual_now_ms = s.virtual_now_ms.max(spec.arrive_ms);
        let queued_now = s.queue.len();
        let draining = s.draining || s.shutdown;
        match s
            .admission
            .admit(&spec.tenant, spec.arrive_ms, queued_now, draining)
        {
            Ok(()) => {
                let seq = s.next_seq;
                s.next_seq += 1;
                let cancel = Arc::new(CancelToken::new());
                s.cancels.insert(spec.id.clone(), Arc::clone(&cancel));
                s.queue.push_back(Admitted {
                    seq,
                    spec: spec.clone(),
                    cancel,
                });
                s.stats.accepted += 1;
                psa_obs::counter_add("psa_serve_admitted_total", &[("tenant", &spec.tenant)], 1);
                psa_obs::gauge_set("psa_serve_queue_depth", &[], s.queue.len() as f64);
                let paused = s.paused;
                drop(s);
                if !paused {
                    self.inner.work.notify_one();
                }
                Response::Accepted {
                    id: spec.id.clone(),
                    seq,
                }
            }
            Err(reason) => {
                let detail = match reason {
                    RejectReason::RateLimit => format!(
                        "tenant \"{}\" exceeded its admission rate at t={}ms",
                        spec.tenant, spec.arrive_ms
                    ),
                    RejectReason::InFlightQuota => {
                        format!("tenant \"{}\" is at its in-flight quota", spec.tenant)
                    }
                    RejectReason::QueueFull => {
                        format!("queue is at capacity ({queued_now} jobs); shedding load")
                    }
                    RejectReason::Draining => "server is draining".to_owned(),
                };
                match reason {
                    RejectReason::RateLimit => s.stats.rejected_rate_limit += 1,
                    RejectReason::InFlightQuota => s.stats.rejected_in_flight_quota += 1,
                    RejectReason::QueueFull => s.stats.rejected_queue_full += 1,
                    RejectReason::Draining => s.stats.rejected_draining += 1,
                }
                psa_obs::counter_add("psa_serve_rejected_total", &[("reason", reason.label())], 1);
                Response::Rejected {
                    id: spec.id.clone(),
                    reason,
                    detail,
                }
            }
        }
    }

    fn cancel_job(&self, id: &str) -> Response {
        let s = self.inner.lock();
        let found = match s.cancels.get(id) {
            Some(token) => {
                token.cancel(format!("job \"{id}\" cancelled by client"));
                true
            }
            None => false,
        };
        Response::CancelAck {
            id: id.to_owned(),
            found,
        }
    }

    fn resume(&self) {
        let mut s = self.inner.lock();
        if s.paused {
            s.paused = false;
            drop(s);
            self.inner.work.notify_all();
        }
    }

    /// Block until every accepted job reached a terminal state, then emit
    /// all results in submission order. Implies `resume` (waiting on a
    /// paused queue would deadlock by construction).
    fn wait(&self) -> Vec<Response> {
        self.resume();
        let mut s = self.inner.lock();
        while (s.results.len() as u64) < s.stats.accepted {
            s = self.inner.done.wait(s).unwrap_or_else(|p| p.into_inner());
        }
        s.results
            .values()
            .map(|r| Response::Result(Box::new(r.clone())))
            .collect()
    }

    fn stats(&self) -> StatsSnapshot {
        let s = self.inner.lock();
        StatsSnapshot {
            accepted: s.stats.accepted,
            rejected_rate_limit: s.stats.rejected_rate_limit,
            rejected_in_flight_quota: s.stats.rejected_in_flight_quota,
            rejected_queue_full: s.stats.rejected_queue_full,
            rejected_draining: s.stats.rejected_draining,
            bad_requests: s.stats.bad_requests,
            done: s.stats.done,
            failed: s.stats.failed,
            panicked: s.stats.panicked,
            deadline_expired: s.stats.deadline_expired,
            cancelled: s.stats.cancelled,
            queued: s.queue.len() as u64,
            running: s.running as u64,
            draining: s.draining,
        }
    }

    /// Graceful drain: stop admitting, let everything already admitted
    /// finish (or deadline-out), flush the metrics snapshot and per-job
    /// forensic bundles, then stop the workers.
    fn drain(&self) -> Response {
        {
            let mut s = self.inner.lock();
            s.draining = true;
            s.paused = false;
        }
        self.inner.work.notify_all();
        // Wait for every accepted job to reach a terminal state.
        {
            let mut s = self.inner.lock();
            while (s.results.len() as u64) < s.stats.accepted {
                s = self.inner.done.wait(s).unwrap_or_else(|p| p.into_inner());
            }
        }
        let bundles = self.flush_artifacts();
        // Stop and reap the workers.
        {
            let mut s = self.inner.lock();
            s.shutdown = true;
        }
        self.inner.work.notify_all();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(|p| p.into_inner()));
        for h in handles {
            let _ = h.join();
        }
        self.inner.shutdown_flag.store(true, Ordering::Release);
        let completed = self.inner.lock().results.len() as u64;
        Response::Drained { completed, bundles }
    }

    /// Flush the final metrics snapshot and one forensic bundle per job
    /// (filtered to the job's trace id). Returns bundles written.
    fn flush_artifacts(&self) -> u64 {
        if let Some(path) = &self.inner.cfg.metrics_path {
            let text = psa_obs::global().render_prometheus();
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("psa-serve: metrics flush to {} failed: {e}", path.display());
            }
        }
        let dir = match &self.inner.cfg.bundle_dir {
            Some(d) if psa_obs::recorder::enabled() => d.clone(),
            _ => return 0,
        };
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("psa-serve: bundle dir {} failed: {e}", dir.display());
            return 0;
        }
        let snap = psa_obs::recorder::snapshot();
        let jobs: Vec<(String, String, u64)> = {
            let s = self.inner.lock();
            s.results
                .values()
                .map(|r| (r.tenant.clone(), r.id.clone(), r.trace_id))
                .collect()
        };
        let mut written = 0;
        for (tenant, id, trace_id) in jobs {
            let per_job = snap.for_trace(trace_id);
            if per_job.spans.is_empty() {
                continue;
            }
            let name = format!("{}-{}.json", sanitize(&tenant), sanitize(&id));
            match std::fs::write(dir.join(&name), psa_obs::recorder::render_bundle(&per_job)) {
                Ok(()) => written += 1,
                Err(e) => eprintln!("psa-serve: bundle {name} failed: {e}"),
            }
        }
        written
    }

    /// Serve line-delimited requests from `reader`, writing responses to
    /// `writer`. Returns after `drain` or at EOF (EOF implies a graceful
    /// drain, so Ctrl-D / closing the pipe is a clean shutdown).
    pub fn serve_lines<R: BufRead, W: Write>(
        &self,
        reader: R,
        mut writer: W,
    ) -> std::io::Result<()> {
        let mut drained = false;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match decode_request(&line) {
                Ok(req) => {
                    for resp in self.handle_request(&req) {
                        writeln!(writer, "{}", resp.encode())?;
                    }
                    writer.flush()?;
                    if matches!(req, Request::Drain) {
                        drained = true;
                        break;
                    }
                }
                Err(err) => {
                    self.note_bad_request(&err);
                    let resp = Response::BadRequest {
                        code: 400,
                        label: err.label().to_owned(),
                        detail: err.to_string(),
                    };
                    writeln!(writer, "{}", resp.encode())?;
                    writer.flush()?;
                }
            }
        }
        if !drained && !self.is_shutdown() {
            let resp = self.drain();
            writeln!(writer, "{}", resp.encode())?;
            writer.flush()?;
        }
        Ok(())
    }

    fn note_bad_request(&self, err: &ProtoError) {
        let mut s = self.inner.lock();
        s.stats.bad_requests += 1;
        drop(s);
        psa_obs::counter_add("psa_serve_bad_requests_total", &[("kind", err.label())], 1);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        {
            let mut s = self.inner.lock();
            s.shutdown = true;
        }
        self.inner.work.notify_all();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(|p| p.into_inner()));
        for h in handles {
            let _ = h.join();
        }
        self.inner.shutdown_flag.store(true, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// workers

fn worker_loop(inner: &Inner) {
    loop {
        let (job, wait_ms) = {
            let mut s = inner.lock();
            loop {
                if s.shutdown {
                    return;
                }
                if !s.paused && !s.queue.is_empty() {
                    break;
                }
                s = inner.work.wait(s).unwrap_or_else(|p| p.into_inner());
            }
            // Loop condition guarantees a job is present.
            let Some(job) = s.queue.pop_front() else {
                continue;
            };
            s.running += 1;
            psa_obs::gauge_set("psa_serve_queue_depth", &[], s.queue.len() as f64);
            let wait_ms = s.virtual_now_ms.saturating_sub(job.spec.arrive_ms);
            (job, wait_ms)
        };
        let tenant = job.spec.tenant.clone();
        let id = job.spec.id.clone();
        let result = execute(inner, job, wait_ms);
        psa_obs::counter_add(
            "psa_serve_jobs_total",
            &[("status", result.status.label())],
            1,
        );
        let mut s = inner.lock();
        s.admission.complete(&tenant);
        s.cancels.remove(&id);
        s.running -= 1;
        match result.status {
            JobStatus::Done => s.stats.done += 1,
            JobStatus::Failed => s.stats.failed += 1,
            JobStatus::Panicked => s.stats.panicked += 1,
            JobStatus::DeadlineExpired => s.stats.deadline_expired += 1,
            JobStatus::Cancelled => s.stats.cancelled += 1,
        }
        s.results.insert(result.seq, result);
        drop(s);
        inner.done.notify_all();
    }
}

/// Run one admitted job to a terminal state. Never panics: the flow is
/// wrapped in `catch_unwind` under the job's own root span.
fn execute(inner: &Inner, job: Admitted, wait_ms: u64) -> JobResult {
    let Admitted { seq, spec, cancel } = job;
    let root_label = format!("psa-serve/{}/{}", spec.tenant, spec.id);
    let span_root = psa_obs::SpanCtx::root(&root_label, seq);
    // Record the job's root span so the per-job forensic bundle has the
    // tenant/job span as its causal root even when the flow never runs
    // (queue-deadline expiry, pre-start cancellation).
    let _job_span = psa_obs::span::enter(span_root, &root_label);
    psa_obs::observe("psa_serve_queue_wait_ms", &[], wait_ms);
    let mut result = JobResult {
        seq,
        id: spec.id.clone(),
        tenant: spec.tenant.clone(),
        status: JobStatus::Failed,
        detail: String::new(),
        outcome: None,
        trace_id: span_root.trace_id,
        queue_wait_ms: wait_ms,
    };
    // Queue-wait deadline, on the virtual clock so it is deterministic.
    if let Some(deadline) = spec.deadline_ms {
        if wait_ms > deadline {
            psa_obs::recorder::record_deadline_expired("serve-queue");
            result.status = JobStatus::DeadlineExpired;
            result.detail = format!("deadline {deadline}ms elapsed after {wait_ms}ms in queue");
            return result;
        }
    }
    if cancel.is_cancelled() {
        result.status = JobStatus::Cancelled;
        result.detail = cancel.reason().to_owned();
        return result;
    }
    // Resolve the program. Unknown benchmark keys are job failures (the
    // protocol layer cannot know the suite), as are re-parse failures of
    // specs validated at decode time.
    let (source, params) = match &spec.bench {
        Some(key) => match psa_benchsuite::by_key(key) {
            Some(b) => (b.source.clone(), bench_params(&b)),
            None => {
                result.detail = format!("unknown benchmark \"{key}\"");
                return result;
            }
        },
        None => match &spec.source {
            Some(src) => (src.clone(), PsaParams::default()),
            None => {
                result.detail = "job has neither bench nor source".to_owned();
                return result;
            }
        },
    };
    let policy = match FailurePolicy::parse(&spec.policy) {
        Ok(p) => p,
        Err(e) => {
            result.detail = format!("bad policy: {e}");
            return result;
        }
    };
    let faults = match &spec.faults {
        Some(plan) => match psa_faults::FaultPlan::parse(plan) {
            Ok(p) => Some(Arc::new(p)),
            Err(e) => {
                result.detail = format!("bad fault plan: {e}");
                return result;
            }
        },
        None => None,
    };
    // The sequential engine keeps served outcomes byte-identical to the
    // offline reference (and the engine-equivalence gate makes parallel
    // equal to sequential anyway). On a live server the remaining
    // deadline budget is armed as the engine's flow deadline, so queue
    // wait counts against the total; a paused-start (deterministic)
    // server enforces deadlines purely on the virtual clock — the clock
    // cannot advance mid-flow, so arming a real-time deadline there
    // would only reintroduce machine-speed races into the soak counts.
    let mut engine = FlowEngine::sequential().with_policy(policy);
    if !inner.cfg.paused {
        if let Some(deadline) = spec.deadline_ms {
            engine = engine.with_flow_deadline(Duration::from_millis(deadline - wait_ms));
        }
    }
    let app_name = spec.app_name().to_owned();
    let cache = Arc::clone(&inner.cache);
    let started = Instant::now();
    let run = catch_unwind(AssertUnwindSafe(|| {
        psaflow_core::run_flow_job(
            engine,
            FlowJob {
                source: &source,
                app_name: &app_name,
                mode: spec.mode,
                params,
                cache,
                faults,
                span_root: Some(span_root),
                cancel: Some(cancel),
            },
        )
    }));
    psa_obs::observe(
        "psa_serve_exec_ms",
        &[],
        started.elapsed().as_millis() as u64,
    );
    match run {
        Ok(Ok(outcome)) => {
            result.status = JobStatus::Done;
            result.outcome = Some(crate::proto::render_outcome(&outcome));
        }
        Ok(Err(FlowError::Cancelled { reason })) => {
            result.status = JobStatus::Cancelled;
            result.detail = reason;
        }
        Ok(Err(FlowError::Timeout { what })) => {
            result.status = JobStatus::DeadlineExpired;
            result.detail = what;
        }
        Ok(Err(e)) => {
            result.status = JobStatus::Failed;
            result.detail = e.message();
        }
        Err(payload) => {
            result.status = JobStatus::Panicked;
            result.detail = panic_message(&payload);
        }
    }
    result
}

/// Replicates the benchmark→parameter mapping used by the offline
/// harness (kept local to avoid a dependency cycle with `psa-bench`).
fn bench_params(b: &psa_benchsuite::Benchmark) -> PsaParams {
    PsaParams {
        sp_safe: b.sp_safe,
        scale: psaflow_core::context::psa_benchsuite_shim::ScaleFactors {
            compute: b.scale.compute,
            data: b.scale.data,
            threads: b.scale.threads,
        },
        ..PsaParams::default()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    out.truncate(80);
    if out.is_empty() {
        out.push('_');
    }
    out
}

// ---------------------------------------------------------------------------
// TCP front-end

/// Accept connections on `listener`, serving each on its own thread until
/// some client drains the server. The accept loop polls so it can stop
/// promptly after shutdown without help from platform-specific signals.
pub fn serve_tcp(server: &Arc<Server>, listener: std::net::TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !server.is_shutdown() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let server = Arc::clone(server);
                let handle = std::thread::Builder::new()
                    .name("psa-serve-conn".to_owned())
                    .spawn(move || {
                        stream.set_nonblocking(false).ok();
                        let reader = std::io::BufReader::new(match stream.try_clone() {
                            Ok(s) => s,
                            Err(e) => {
                                eprintln!("psa-serve: connection clone failed: {e}");
                                return;
                            }
                        });
                        if let Err(e) = server.serve_lines(reader, stream) {
                            eprintln!("psa-serve: connection error: {e}");
                        }
                    })?;
                conns.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    for h in conns {
        let _ = h.join();
    }
    Ok(())
}
