//! Integration tests for the psa-serve daemon core: deterministic
//! admission, typed rejections, fault isolation, cancellation, deadlines,
//! ordered results, EOF drain and the TCP front-end.

use psa_serve::loadgen::{script, LoadConfig};
use psa_serve::{
    JobSpec, JobStatus, RejectReason, Request, Response, Server, ServerConfig, TenantPolicy,
};
use psaflow_core::{FailurePolicy, FlowEngine, FlowMode, PsaParams};
use std::io::Cursor;
use std::sync::Arc;

const SMOKE_SRC: &str = "int main() { int n = 96; double* a = alloc_double(n);\
    double* b = alloc_double(n); fill_random(a, n, 3);\
    for (int i = 0; i < n; i++) { double x = a[i];\
    b[i] = exp(x) * sqrt(x + 1.0) + x * x; }\
    double s = 0.0;\
    for (int i = 0; i < n; i++) { s += b[i]; }\
    sink(s); return 0; }";

fn job(id: &str, tenant: &str, arrive_ms: u64) -> JobSpec {
    JobSpec {
        id: id.to_owned(),
        tenant: tenant.to_owned(),
        bench: None,
        source: Some(SMOKE_SRC.to_owned()),
        mode: FlowMode::Informed,
        policy: "degrade".to_owned(),
        deadline_ms: None,
        arrive_ms,
        faults: None,
    }
}

fn paused_server(queue: usize, policy: TenantPolicy) -> Server {
    Server::new(ServerConfig {
        workers: 2,
        queue_capacity: queue,
        default_policy: policy,
        paused: true,
        ..ServerConfig::default()
    })
}

fn one(server: &Server, req: Request) -> Response {
    let mut responses = server.handle_request(&req);
    assert_eq!(responses.len(), 1, "{req:?}");
    responses.remove(0)
}

#[test]
fn quota_rate_and_queue_rejections_are_typed() {
    let server = paused_server(
        3,
        TenantPolicy {
            rate_per_sec: 0.0,
            burst: 2.0,
            max_in_flight: 2,
        },
    );
    // Burst admits two; the third bounces on the in-flight quota (checked
    // before the bucket), and with the queue then full the fourth sheds.
    assert!(matches!(
        one(&server, Request::Submit(job("a", "t", 0))),
        Response::Accepted { .. }
    ));
    assert!(matches!(
        one(&server, Request::Submit(job("b", "t", 1))),
        Response::Accepted { .. }
    ));
    match one(&server, Request::Submit(job("c", "t", 2))) {
        Response::Rejected { reason, .. } => {
            assert_eq!(reason, RejectReason::InFlightQuota);
            assert_eq!(reason.code(), 429);
        }
        other => panic!("{other:?}"),
    }
    // A different tenant passes the quota but the bucket is dry (rate 0,
    // burst spent by... fresh tenant has its own bucket), so fill the
    // queue first: a third slot remains, then tenant "u" exhausts burst.
    assert!(matches!(
        one(&server, Request::Submit(job("d", "u", 3))),
        Response::Accepted { .. }
    ));
    match one(&server, Request::Submit(job("e", "u", 4))) {
        Response::Rejected { reason, .. } => {
            assert_eq!(reason, RejectReason::QueueFull);
            assert_eq!(reason.code(), 503);
        }
        other => panic!("{other:?}"),
    }
    drop(server);
}

#[test]
fn rate_limit_refills_on_the_virtual_clock() {
    let server = paused_server(
        100,
        TenantPolicy {
            rate_per_sec: 1.0,
            burst: 1.0,
            max_in_flight: 100,
        },
    );
    assert!(matches!(
        one(&server, Request::Submit(job("a", "t", 0))),
        Response::Accepted { .. }
    ));
    match one(&server, Request::Submit(job("b", "t", 10))) {
        Response::Rejected { reason, .. } => assert_eq!(reason, RejectReason::RateLimit),
        other => panic!("{other:?}"),
    }
    // One virtual second later the bucket holds a fresh token.
    assert!(matches!(
        one(&server, Request::Submit(job("c", "t", 1010))),
        Response::Accepted { .. }
    ));
}

#[test]
fn results_are_ordered_and_byte_identical_to_offline_runs() {
    let server = paused_server(100, TenantPolicy::default());
    for (i, id) in ["first", "second", "third"].iter().enumerate() {
        assert!(matches!(
            one(&server, Request::Submit(job(id, "t", i as u64))),
            Response::Accepted { .. }
        ));
    }
    let results = server.handle_request(&Request::Wait);
    assert_eq!(results.len(), 3);
    let offline = psaflow_core::flows::full_psa_flow_cached_on(
        FlowEngine::sequential().with_policy(FailurePolicy::DegradePaths),
        SMOKE_SRC,
        "first",
        FlowMode::Informed,
        PsaParams::default(),
        Arc::new(psaflow_core::EvalCache::new()),
    )
    .expect("offline flow runs");
    let offline_rendering = {
        // Same app name as the served job so renderings are comparable.
        psa_serve::render_outcome(&offline)
    };
    for (i, (resp, id)) in results.iter().zip(["first", "second", "third"]).enumerate() {
        match resp {
            Response::Result(r) => {
                assert_eq!(r.seq, i as u64);
                assert_eq!(r.id, id);
                assert_eq!(r.status, JobStatus::Done);
                let served = r.outcome.as_deref().expect("done job has outcome");
                // Identical program ⇒ identical designs; only the app
                // name differs between the three served renderings.
                if id == "first" {
                    assert_eq!(served, offline_rendering, "served != offline");
                }
            }
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn panicking_jobs_are_isolated_from_the_daemon() {
    let server = paused_server(100, TenantPolicy::default());
    let mut bad = job("boom", "t", 0);
    // A fault plan that panics the trunk flow's first task; under
    // failfast the flow dies (somewhere between a typed error and a
    // caught panic), and the daemon must shrug it off.
    bad.policy = "failfast".to_owned();
    bad.faults = Some("seed=1; task:psa-flow=panic:injected".to_owned());
    assert!(matches!(
        one(&server, Request::Submit(bad)),
        Response::Accepted { .. }
    ));
    assert!(matches!(
        one(&server, Request::Submit(job("ok", "t", 1))),
        Response::Accepted { .. }
    ));
    let results = server.handle_request(&Request::Wait);
    assert_eq!(results.len(), 2);
    match &results[0] {
        Response::Result(r) => {
            assert_ne!(r.status, JobStatus::Done, "fault must surface");
            assert!(!r.detail.is_empty());
        }
        other => panic!("{other:?}"),
    }
    match &results[1] {
        Response::Result(r) => assert_eq!(r.status, JobStatus::Done),
        other => panic!("{other:?}"),
    }
}

#[test]
fn cancel_op_trips_queued_jobs_cooperatively() {
    let server = paused_server(100, TenantPolicy::default());
    assert!(matches!(
        one(&server, Request::Submit(job("doomed", "t", 0))),
        Response::Accepted { .. }
    ));
    match one(
        &server,
        Request::Cancel {
            id: "doomed".to_owned(),
        },
    ) {
        Response::CancelAck { found, .. } => assert!(found),
        other => panic!("{other:?}"),
    }
    // Unknown ids are acknowledged but not found.
    match one(
        &server,
        Request::Cancel {
            id: "nope".to_owned(),
        },
    ) {
        Response::CancelAck { found, .. } => assert!(!found),
        other => panic!("{other:?}"),
    }
    let results = server.handle_request(&Request::Wait);
    match &results[0] {
        Response::Result(r) => {
            assert_eq!(r.status, JobStatus::Cancelled);
            assert!(r.detail.contains("cancelled"), "{}", r.detail);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn queue_wait_counts_against_the_deadline_on_the_virtual_clock() {
    let server = paused_server(100, TenantPolicy::default());
    let mut tight = job("tight", "t", 0);
    tight.deadline_ms = Some(5);
    assert!(matches!(
        one(&server, Request::Submit(tight)),
        Response::Accepted { .. }
    ));
    // A later arrival advances the virtual clock past the deadline.
    assert!(matches!(
        one(&server, Request::Submit(job("late", "t", 100))),
        Response::Accepted { .. }
    ));
    let results = server.handle_request(&Request::Wait);
    match &results[0] {
        Response::Result(r) => {
            assert_eq!(r.status, JobStatus::DeadlineExpired);
            assert_eq!(r.queue_wait_ms, 100);
            assert!(r.detail.contains("deadline"), "{}", r.detail);
        }
        other => panic!("{other:?}"),
    }
    match &results[1] {
        Response::Result(r) => assert_eq!(r.status, JobStatus::Done),
        other => panic!("{other:?}"),
    }
}

#[test]
fn live_servers_thread_real_deadlines_through_the_engine() {
    // Unpaused server: the remaining deadline budget is armed as the
    // engine's flow deadline. A delay fault stalls the first trunk task
    // well past the budget, so the engine itself times the flow out.
    let server = Server::new(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        paused: false,
        ..ServerConfig::default()
    });
    let mut slow = job("slow", "t", 0);
    slow.deadline_ms = Some(80);
    slow.faults = Some("seed=1; task:psa-flow=delay:300".to_owned());
    assert!(matches!(
        one(&server, Request::Submit(slow)),
        Response::Accepted { .. }
    ));
    let results = server.handle_request(&Request::Wait);
    match &results[0] {
        Response::Result(r) => {
            assert_eq!(r.status, JobStatus::DeadlineExpired, "{:?}", r.detail);
            assert!(r.detail.contains("deadline"), "{}", r.detail);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn identical_streams_produce_identical_sessions() {
    let cfg = LoadConfig {
        seed: 11,
        jobs: 40,
        deadline_frac: 0.15,
        fault_frac: 0.25,
        ..LoadConfig::default()
    };
    let input = script(&cfg);
    let run = || {
        let server = Server::new(ServerConfig {
            workers: 3,
            queue_capacity: 32,
            default_policy: TenantPolicy {
                rate_per_sec: 20.0,
                burst: 10.0,
                max_in_flight: 16,
            },
            paused: true,
            ..ServerConfig::default()
        });
        let mut out = Vec::new();
        server
            .serve_lines(Cursor::new(input.clone()), &mut out)
            .expect("session runs");
        String::from_utf8(out).expect("utf8 output")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same stream, same bytes");
    assert!(a.contains("\"op\":\"drain\""));
}

#[test]
fn bad_lines_get_400_without_killing_the_session() {
    let server = paused_server(100, TenantPolicy::default());
    let input = format!(
        "{}\n{}\n{}\n{}\n",
        "this is not json",
        "{\"op\":\"launch\"}",
        psa_serve::encode_request(&Request::Submit(job("ok", "t", 0))),
        psa_serve::encode_request(&Request::Drain),
    );
    let mut out = Vec::new();
    server
        .serve_lines(Cursor::new(input), &mut out)
        .expect("session survives garbage");
    let out = String::from_utf8(out).expect("utf8");
    let lines: Vec<&str> = out.lines().collect();
    assert!(lines[0].contains("\"code\":400") && lines[0].contains("bad_json"));
    assert!(lines[1].contains("\"code\":400") && lines[1].contains("unknown_op"));
    assert!(lines[2].contains("\"status\":\"accepted\""));
    assert!(lines.last().expect("output").contains("\"op\":\"drain\""));
}

#[test]
fn eof_implies_graceful_drain() {
    let server = paused_server(100, TenantPolicy::default());
    let input = format!(
        "{}\n",
        psa_serve::encode_request(&Request::Submit(job("only", "t", 0)))
    );
    let mut out = Vec::new();
    server
        .serve_lines(Cursor::new(input), &mut out)
        .expect("session runs");
    let out = String::from_utf8(out).expect("utf8");
    assert!(
        out.lines()
            .last()
            .expect("output")
            .contains("\"completed\":1"),
        "{out}"
    );
    assert!(server.is_shutdown());
}

#[test]
fn tcp_smoke() {
    let server = Arc::new(Server::new(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        paused: true,
        ..ServerConfig::default()
    }));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let acceptor = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || psa_serve::serve_tcp(&server, listener))
    };
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    {
        use std::io::Write;
        let mut session = String::new();
        for req in [
            Request::Submit(job("tcp-1", "t", 0)),
            Request::Submit(job("tcp-2", "t", 1)),
            Request::Wait,
            Request::Drain,
        ] {
            session.push_str(&psa_serve::encode_request(&req));
            session.push('\n');
        }
        stream.write_all(session.as_bytes()).expect("send");
    }
    let mut lines = Vec::new();
    {
        use std::io::BufRead;
        let reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
        for line in reader.lines() {
            lines.push(line.expect("line"));
        }
    }
    assert_eq!(lines.len(), 5, "{lines:?}");
    assert!(lines[0].contains("accepted") && lines[1].contains("accepted"));
    assert!(lines[2].contains("\"status\":\"done\""));
    assert!(lines[3].contains("\"status\":\"done\""));
    assert!(lines[4].contains("\"op\":\"drain\""));
    acceptor
        .join()
        .expect("acceptor joins")
        .expect("acceptor io");
    assert!(server.is_shutdown());
}
