//! Property tests for the psa-serve wire protocol: arbitrary job specs
//! survive encode→decode unchanged, and arbitrary / mutilated bytes
//! produce typed [`psa_serve::ProtoError`]s — never panics.

use proptest::collection::vec;
use proptest::prelude::*;
use psa_serve::{decode_request, encode_request, JobSpec, Request};
use psaflow_core::FlowMode;

/// Strings exercising quoting, escapes, control chars and non-ASCII.
fn wire_string() -> BoxedStrategy<String> {
    let ch = prop_oneof![
        (97u32..123).prop_map(|c| char::from_u32(c).unwrap_or('a')),
        (0u32..32).prop_map(|c| char::from_u32(c).unwrap_or('\n')),
        Just('"'),
        Just('\\'),
        Just('/'),
        Just('{'),
        Just('\u{00e9}'),
        Just('\u{2603}'),
        Just('\u{1f600}'),
    ];
    vec(ch, 1..12)
        .prop_map(|cs| cs.into_iter().collect::<String>())
        .boxed()
}

/// Failure-policy specs, all valid under `FailurePolicy::parse`.
fn policy_spec() -> BoxedStrategy<String> {
    prop_oneof![
        Just("degrade".to_owned()),
        Just("failfast".to_owned()),
        Just("retry".to_owned()),
        Just("retry:2".to_owned()),
        Just("retry:3:7".to_owned()),
    ]
    .boxed()
}

/// Fault-plan specs, all valid under `FaultPlan::parse`.
fn fault_spec() -> BoxedStrategy<String> {
    prop_oneof![
        Just("seed=1; task:x=error:transform:m".to_owned()),
        Just("task:gpu=panic:boom".to_owned()),
        Just("seed=9; cache:k=delay:2".to_owned()),
        Just("select:a@2=error:analysis:z".to_owned()),
        Just("seed=3; task:t@~0.5=panic".to_owned()),
    ]
    .boxed()
}

fn job_spec() -> BoxedStrategy<JobSpec> {
    let program = prop_oneof![
        wire_string().prop_map(|s| (Some(s), None)),
        wire_string().prop_map(|s| (None, Some(s))),
    ];
    (
        wire_string(),
        wire_string(),
        program,
        any::<bool>(),
        policy_spec(),
        prop_oneof![Just(None), (0u64..10_000_000u64).prop_map(Some)],
        0u64..1_000_000_000u64,
        prop_oneof![Just(None), fault_spec().prop_map(Some)],
    )
        .prop_map(
            |(id, tenant, (bench, source), informed, policy, deadline_ms, arrive_ms, faults)| {
                JobSpec {
                    id,
                    tenant,
                    bench,
                    source,
                    mode: if informed {
                        FlowMode::Informed
                    } else {
                        FlowMode::Uninformed
                    },
                    policy,
                    deadline_ms,
                    arrive_ms,
                    faults,
                }
            },
        )
        .boxed()
}

fn request() -> BoxedStrategy<Request> {
    prop_oneof![
        job_spec().prop_map(Request::Submit),
        wire_string().prop_map(|id| Request::Cancel { id }),
        Just(Request::Resume),
        Just(Request::Wait),
        Just(Request::Stats),
        Just(Request::Metrics),
        Just(Request::Drain),
    ]
    .boxed()
}

#[test]
fn generator_specs_are_actually_valid() {
    for p in ["degrade", "failfast", "retry", "retry:2", "retry:3:7"] {
        psaflow_core::FailurePolicy::parse(p).expect(p);
    }
    for f in [
        "seed=1; task:x=error:transform:m",
        "task:gpu=panic:boom",
        "seed=9; cache:k=delay:2",
        "select:a@2=error:analysis:z",
        "seed=3; task:t@~0.5=panic",
    ] {
        psa_faults::FaultPlan::parse(f).expect(f);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Encode→decode is the identity on every representable request.
    #[test]
    fn requests_round_trip(req in request()) {
        let line = encode_request(&req);
        prop_assert_eq!(decode_request(&line), Ok(req.clone()), "line: {line}");
    }

    /// The encoded line is one line: no raw newlines survive escaping.
    #[test]
    fn encoded_requests_are_single_lines(req in request()) {
        let line = encode_request(&req);
        prop_assert!(!line.contains('\n'), "line: {line:?}");
        prop_assert!(!line.chars().any(|c| (c as u32) < 0x20), "line: {line:?}");
    }

    /// Arbitrary garbage never panics the decoder: it returns a typed
    /// error (or, by coincidence, a valid request).
    #[test]
    fn hostile_bytes_never_panic(garbage in wire_string()) {
        let _ = decode_request(&garbage);
    }

    /// Truncating a valid encoded request at any char boundary yields a
    /// typed error or a valid request — never a panic.
    #[test]
    fn truncations_never_panic(req in request(), cut in 0usize..4096) {
        let line = encode_request(&req);
        let mut cut = cut.min(line.len());
        while cut > 0 && !line.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = decode_request(&line[..cut]);
    }

    /// Splicing garbage into a valid line never panics either.
    #[test]
    fn spliced_lines_never_panic(req in request(), noise in wire_string(), at in 0usize..4096) {
        let line = encode_request(&req);
        let mut at = at.min(line.len());
        while at > 0 && !line.is_char_boundary(at) {
            at -= 1;
        }
        let spliced = format!("{}{}{}", &line[..at], noise, &line[at..]);
        let _ = decode_request(&spliced);
    }
}
