//! AST visitors: read-only traversal ([`Visit`]) and in-place mutation
//! ([`VisitMut`]).
//!
//! Both traits call an overridable hook per node kind and default to
//! structural recursion via the `walk_*` free functions, so implementations
//! override only what they care about — queries in `psa-artisan` and cost
//! walkers in `psa-platform` are all built on these.

use crate::ast::*;

/// Read-only traversal. Hooks fire *before* children are walked.
pub trait Visit: Sized {
    fn visit_module(&mut self, m: &Module) {
        walk_module(self, m);
    }
    fn visit_function(&mut self, f: &Function) {
        walk_function(self, f);
    }
    fn visit_block(&mut self, b: &Block) {
        walk_block(self, b);
    }
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }
    fn visit_for(&mut self, l: &ForLoop) {
        walk_for(self, l);
    }
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }
}

pub fn walk_module<V: Visit>(v: &mut V, m: &Module) {
    for item in &m.items {
        match item {
            Item::Function(f) => v.visit_function(f),
            Item::Global(s) => v.visit_stmt(s),
        }
    }
}

pub fn walk_function<V: Visit>(v: &mut V, f: &Function) {
    v.visit_block(&f.body);
}

pub fn walk_block<V: Visit>(v: &mut V, b: &Block) {
    for s in &b.stmts {
        v.visit_stmt(s);
    }
}

pub fn walk_stmt<V: Visit>(v: &mut V, s: &Stmt) {
    match &s.kind {
        StmtKind::Decl(d) => {
            if let Some(e) = &d.array_len {
                v.visit_expr(e);
            }
            if let Some(e) = &d.init {
                v.visit_expr(e);
            }
        }
        StmtKind::Assign { target, value, .. } => {
            v.visit_expr(target);
            v.visit_expr(value);
        }
        StmtKind::Expr(e) => v.visit_expr(e),
        StmtKind::If { cond, then, els } => {
            v.visit_expr(cond);
            v.visit_block(then);
            if let Some(els) = els {
                v.visit_block(els);
            }
        }
        StmtKind::For(l) => v.visit_for(l),
        StmtKind::While { cond, body } => {
            v.visit_expr(cond);
            v.visit_block(body);
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                v.visit_expr(e);
            }
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Block(b) => v.visit_block(b),
    }
}

pub fn walk_for<V: Visit>(v: &mut V, l: &ForLoop) {
    v.visit_expr(&l.init);
    v.visit_expr(&l.bound);
    v.visit_expr(&l.step);
    v.visit_block(&l.body);
}

pub fn walk_expr<V: Visit>(v: &mut V, e: &Expr) {
    match &e.kind {
        ExprKind::Unary { expr, .. } => v.visit_expr(expr),
        ExprKind::Binary { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::Index { base, index } => {
            v.visit_expr(base);
            v.visit_expr(index);
        }
        ExprKind::Cast { expr, .. } => v.visit_expr(expr),
        ExprKind::Ternary { cond, then, els } => {
            v.visit_expr(cond);
            v.visit_expr(then);
            v.visit_expr(els);
        }
        ExprKind::IntLit(_)
        | ExprKind::FloatLit { .. }
        | ExprKind::BoolLit(_)
        | ExprKind::Ident(_) => {}
    }
}

/// In-place mutation traversal. Hooks fire before children are walked;
/// implementations may freely rewrite the node they receive.
pub trait VisitMut: Sized {
    fn visit_module_mut(&mut self, m: &mut Module) {
        walk_module_mut(self, m);
    }
    fn visit_function_mut(&mut self, f: &mut Function) {
        walk_function_mut(self, f);
    }
    fn visit_block_mut(&mut self, b: &mut Block) {
        walk_block_mut(self, b);
    }
    fn visit_stmt_mut(&mut self, s: &mut Stmt) {
        walk_stmt_mut(self, s);
    }
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        walk_expr_mut(self, e);
    }
}

pub fn walk_module_mut<V: VisitMut>(v: &mut V, m: &mut Module) {
    for item in &mut m.items {
        match item {
            Item::Function(f) => v.visit_function_mut(f),
            Item::Global(s) => v.visit_stmt_mut(s),
        }
    }
}

pub fn walk_function_mut<V: VisitMut>(v: &mut V, f: &mut Function) {
    v.visit_block_mut(&mut f.body);
}

pub fn walk_block_mut<V: VisitMut>(v: &mut V, b: &mut Block) {
    for s in &mut b.stmts {
        v.visit_stmt_mut(s);
    }
}

pub fn walk_stmt_mut<V: VisitMut>(v: &mut V, s: &mut Stmt) {
    match &mut s.kind {
        StmtKind::Decl(d) => {
            if let Some(e) = &mut d.array_len {
                v.visit_expr_mut(e);
            }
            if let Some(e) = &mut d.init {
                v.visit_expr_mut(e);
            }
        }
        StmtKind::Assign { target, value, .. } => {
            v.visit_expr_mut(target);
            v.visit_expr_mut(value);
        }
        StmtKind::Expr(e) => v.visit_expr_mut(e),
        StmtKind::If { cond, then, els } => {
            v.visit_expr_mut(cond);
            v.visit_block_mut(then);
            if let Some(els) = els {
                v.visit_block_mut(els);
            }
        }
        StmtKind::For(l) => {
            v.visit_expr_mut(&mut l.init);
            v.visit_expr_mut(&mut l.bound);
            v.visit_expr_mut(&mut l.step);
            v.visit_block_mut(&mut l.body);
        }
        StmtKind::While { cond, body } => {
            v.visit_expr_mut(cond);
            v.visit_block_mut(body);
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                v.visit_expr_mut(e);
            }
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Block(b) => v.visit_block_mut(b),
    }
}

pub fn walk_expr_mut<V: VisitMut>(v: &mut V, e: &mut Expr) {
    match &mut e.kind {
        ExprKind::Unary { expr, .. } => v.visit_expr_mut(expr),
        ExprKind::Binary { lhs, rhs, .. } => {
            v.visit_expr_mut(lhs);
            v.visit_expr_mut(rhs);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                v.visit_expr_mut(a);
            }
        }
        ExprKind::Index { base, index } => {
            v.visit_expr_mut(base);
            v.visit_expr_mut(index);
        }
        ExprKind::Cast { expr, .. } => v.visit_expr_mut(expr),
        ExprKind::Ternary { cond, then, els } => {
            v.visit_expr_mut(cond);
            v.visit_expr_mut(then);
            v.visit_expr_mut(els);
        }
        ExprKind::IntLit(_)
        | ExprKind::FloatLit { .. }
        | ExprKind::BoolLit(_)
        | ExprKind::Ident(_) => {}
    }
}

/// Collect all `for` loops in a function, paired with their nesting depth
/// (0 = outermost within the function body).
pub fn collect_loops(f: &Function) -> Vec<(&ForLoop, usize)> {
    struct Collector<'a> {
        depth: usize,
        loops: Vec<(&'a ForLoop, usize)>,
    }
    impl<'a> Collector<'a> {
        fn block(&mut self, b: &'a Block) {
            for s in &b.stmts {
                self.stmt(s);
            }
        }
        fn stmt(&mut self, s: &'a Stmt) {
            match &s.kind {
                StmtKind::For(l) => {
                    self.loops.push((l, self.depth));
                    self.depth += 1;
                    self.block(&l.body);
                    self.depth -= 1;
                }
                StmtKind::If { then, els, .. } => {
                    self.block(then);
                    if let Some(els) = els {
                        self.block(els);
                    }
                }
                StmtKind::While { body, .. } => self.block(body),
                StmtKind::Block(b) => self.block(b),
                _ => {}
            }
        }
    }
    let mut c = Collector {
        depth: 0,
        loops: Vec::new(),
    };
    c.block(&f.body);
    c.loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    #[test]
    fn counts_nodes_with_visitor() {
        struct Counter {
            exprs: usize,
            stmts: usize,
            fors: usize,
        }
        impl Visit for Counter {
            fn visit_stmt(&mut self, s: &Stmt) {
                self.stmts += 1;
                walk_stmt(self, s);
            }
            fn visit_for(&mut self, l: &ForLoop) {
                self.fors += 1;
                walk_for(self, l);
            }
            fn visit_expr(&mut self, e: &Expr) {
                self.exprs += 1;
                walk_expr(self, e);
            }
        }
        let m = parse_module(
            "void f(double* a, int n) { for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; } }",
            "t",
        )
        .unwrap();
        let mut c = Counter {
            exprs: 0,
            stmts: 0,
            fors: 0,
        };
        c.visit_module(&m);
        assert_eq!(c.fors, 1);
        assert_eq!(c.stmts, 2); // for + assign
        assert!(c.exprs >= 9);
    }

    #[test]
    fn mut_visitor_rewrites_literals() {
        struct Doubler;
        impl VisitMut for Doubler {
            fn visit_expr_mut(&mut self, e: &mut Expr) {
                if let ExprKind::IntLit(v) = &mut e.kind {
                    *v *= 2;
                }
                walk_expr_mut(self, e);
            }
        }
        let mut m = parse_module("void f() { int x = 3 + 4; }", "t").unwrap();
        Doubler.visit_module_mut(&mut m);
        let out = crate::printer::print_module(&m);
        assert!(out.contains("6 + 8"), "{out}");
    }

    #[test]
    fn collect_loops_reports_depths() {
        let m = parse_module(
            "void f(int n) {\
               for (int i = 0; i < n; i++) {\
                 for (int j = 0; j < n; j++) { }\
               }\
               for (int k = 0; k < n; k++) { }\
             }",
            "t",
        )
        .unwrap();
        let f = m.function("f").unwrap();
        let loops = collect_loops(f);
        let depths: Vec<usize> = loops.iter().map(|(_, d)| *d).collect();
        assert_eq!(depths, vec![0, 1, 0]);
        assert_eq!(loops[0].0.var, "i");
        assert_eq!(loops[1].0.var, "j");
        assert_eq!(loops[2].0.var, "k");
    }

    #[test]
    fn collect_loops_sees_into_conditionals() {
        let m = parse_module(
            "void f(int n, bool p) { if (p) { for (int i = 0; i < n; i++) { } } }",
            "t",
        )
        .unwrap();
        assert_eq!(collect_loops(m.function("f").unwrap()).len(), 1);
    }
}
