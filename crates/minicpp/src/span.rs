//! Source positions. Every token and AST node records where it came from so
//! analyses can report human-meaningful locations (the paper's design-flow
//! reports name hotspot loops by line).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open region of the original source text, line/column based
/// (1-indexed, like compilers report).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// First line of the region (1-based).
    pub line: u32,
    /// First column of the region (1-based).
    pub col: u32,
    /// Last line of the region (inclusive, 1-based).
    pub end_line: u32,
    /// Column one past the last character (1-based).
    pub end_col: u32,
}

impl Span {
    /// A span covering a single point.
    pub fn point(line: u32, col: u32) -> Self {
        Span {
            line,
            col,
            end_line: line,
            end_col: col,
        }
    }

    /// The synthetic span used for nodes created by transforms rather than
    /// parsed from source.
    pub const SYNTHETIC: Span = Span {
        line: 0,
        col: 0,
        end_line: 0,
        end_col: 0,
    };

    /// True if this node was created by a transform, not parsed.
    pub fn is_synthetic(&self) -> bool {
        self.line == 0
    }

    /// The smallest span covering both `self` and `other`. Synthetic spans
    /// are absorbed by real ones.
    pub fn merge(self, other: Span) -> Span {
        if self.is_synthetic() {
            return other;
        }
        if other.is_synthetic() {
            return self;
        }
        let (line, col) = if (self.line, self.col) <= (other.line, other.col) {
            (self.line, self.col)
        } else {
            (other.line, other.col)
        };
        let (end_line, end_col) =
            if (self.end_line, self.end_col) >= (other.end_line, other.end_col) {
                (self.end_line, self.end_col)
            } else {
                (other.end_line, other.end_col)
            };
        Span {
            line,
            col,
            end_line,
            end_col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "<synthetic>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_endpoints() {
        let a = Span {
            line: 1,
            col: 5,
            end_line: 1,
            end_col: 9,
        };
        let b = Span {
            line: 3,
            col: 1,
            end_line: 4,
            end_col: 2,
        };
        let m = a.merge(b);
        assert_eq!(
            m,
            Span {
                line: 1,
                col: 5,
                end_line: 4,
                end_col: 2
            }
        );
        assert_eq!(b.merge(a), m);
    }

    #[test]
    fn synthetic_is_absorbed() {
        let a = Span::point(2, 3);
        assert_eq!(Span::SYNTHETIC.merge(a), a);
        assert_eq!(a.merge(Span::SYNTHETIC), a);
        assert!(Span::SYNTHETIC.is_synthetic());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Span::point(7, 2).to_string(), "7:2");
        assert_eq!(Span::SYNTHETIC.to_string(), "<synthetic>");
    }
}
