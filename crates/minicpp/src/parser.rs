//! Recursive-descent parser for MiniC++.
//!
//! The parser keeps loops in canonical counted form (see [`ForLoop`]) and
//! attaches `#pragma` lines to the statement or function that follows them,
//! which is exactly the representation the Artisan-style query/instrument
//! layer operates on.

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parse a full translation unit.
pub fn parse_module(source: &str, name: &str) -> Result<Module> {
    let tokens = lex(source, name)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        module: Module::new(name),
        name: name.to_string(),
    };
    parser.run()?;
    Ok(parser.module)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    module: Module,
    name: String,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> Error {
        Error::new(&self.name, self.span(), msg)
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token> {
        if *self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek()
            )))
        }
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if *self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn fresh(&mut self) -> NodeId {
        self.module.fresh_id()
    }

    // ------------------------------------------------------------------
    // Items
    // ------------------------------------------------------------------

    fn run(&mut self) -> Result<()> {
        loop {
            let pragmas = self.collect_pragmas()?;
            if matches!(self.peek(), TokenKind::Eof) {
                if !pragmas.is_empty() {
                    return Err(self.error("dangling #pragma at end of file"));
                }
                return Ok(());
            }
            let item = self.parse_item(pragmas)?;
            self.module.items.push(item);
        }
    }

    fn collect_pragmas(&mut self) -> Result<Vec<Pragma>> {
        let mut pragmas = Vec::new();
        while let TokenKind::PragmaLine(text) = self.peek() {
            let text = text.clone();
            let span = self.span();
            self.bump();
            pragmas.push(Pragma {
                id: self.fresh(),
                span,
                text,
            });
        }
        Ok(pragmas)
    }

    fn parse_item(&mut self, pragmas: Vec<Pragma>) -> Result<Item> {
        let start = self.span();
        let ty = self.parse_type()?;
        let name = self.parse_ident()?;
        if matches!(self.peek(), TokenKind::LParen) {
            let func = self.parse_function_rest(pragmas, start, ty, name)?;
            Ok(Item::Function(func))
        } else {
            // Global declaration; reuse statement machinery.
            let decl = self.parse_decl_rest(start, ty, name)?;
            self.expect(TokenKind::Semi)?;
            Ok(Item::Global(Stmt {
                id: self.fresh(),
                span: start,
                pragmas,
                kind: StmtKind::Decl(decl),
            }))
        }
    }

    fn parse_function_rest(
        &mut self,
        pragmas: Vec<Pragma>,
        start: Span,
        ret: Type,
        name: String,
    ) -> Result<Function> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                let pspan = self.span();
                let mut ty = self.parse_type()?;
                let pname = self.parse_ident()?;
                // `double a[]` parameter syntax decays to pointer.
                if self.eat(TokenKind::LBracket) {
                    self.expect(TokenKind::RBracket)?;
                    ty.ptr += 1;
                }
                params.push(Param {
                    id: self.fresh(),
                    span: pspan,
                    ty,
                    name: pname,
                });
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.parse_block()?;
        Ok(Function {
            id: self.fresh(),
            span: start,
            pragmas,
            ret,
            name,
            params,
            body,
        })
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    fn at_type(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInt
                | TokenKind::KwFloat
                | TokenKind::KwDouble
                | TokenKind::KwBool
                | TokenKind::KwVoid
                | TokenKind::KwConst
        )
    }

    fn parse_type(&mut self) -> Result<Type> {
        let is_const = self.eat(TokenKind::KwConst);
        let scalar = match self.peek() {
            TokenKind::KwInt => Scalar::Int,
            TokenKind::KwFloat => Scalar::Float,
            TokenKind::KwDouble => Scalar::Double,
            TokenKind::KwBool => Scalar::Bool,
            TokenKind::KwVoid => Scalar::Void,
            other => return Err(self.error(format!("expected a type, found {other}"))),
        };
        self.bump();
        let mut ptr = 0u8;
        while self.eat(TokenKind::Star) {
            ptr += 1;
        }
        Ok(Type {
            scalar,
            ptr,
            is_const,
        })
    }

    fn parse_ident(&mut self) -> Result<String> {
        match self.peek() {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected an identifier, found {other}"))),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn parse_block(&mut self) -> Result<Block> {
        let start = self.span();
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !matches!(self.peek(), TokenKind::RBrace) {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.error("unterminated block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        let end = self.span();
        self.expect(TokenKind::RBrace)?;
        Ok(Block {
            id: self.fresh(),
            span: start.merge(end),
            stmts,
        })
    }

    /// Parse a statement; single statements after `if`/`for`/`while` headers
    /// are wrapped in a one-element block by the callers.
    fn parse_stmt(&mut self) -> Result<Stmt> {
        let pragmas = self.collect_pragmas()?;
        let start = self.span();
        let kind = match self.peek() {
            TokenKind::KwIf => self.parse_if()?,
            TokenKind::KwFor => self.parse_for()?,
            TokenKind::KwWhile => self.parse_while()?,
            TokenKind::KwReturn => {
                self.bump();
                let value = if matches!(self.peek(), TokenKind::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(TokenKind::Semi)?;
                StmtKind::Return(value)
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                StmtKind::Break
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                StmtKind::Continue
            }
            TokenKind::LBrace => StmtKind::Block(self.parse_block()?),
            _ if self.at_type() => {
                let ty = self.parse_type()?;
                let name = self.parse_ident()?;
                let decl = self.parse_decl_rest(start, ty, name)?;
                self.expect(TokenKind::Semi)?;
                StmtKind::Decl(decl)
            }
            _ => {
                let kind = self.parse_assign_or_expr()?;
                self.expect(TokenKind::Semi)?;
                kind
            }
        };
        Ok(Stmt {
            id: self.fresh(),
            span: start,
            pragmas,
            kind,
        })
    }

    fn parse_decl_rest(&mut self, span: Span, ty: Type, name: String) -> Result<VarDecl> {
        let array_len = if self.eat(TokenKind::LBracket) {
            let len = self.parse_expr()?;
            self.expect(TokenKind::RBracket)?;
            Some(len)
        } else {
            None
        };
        let init = if self.eat(TokenKind::Assign) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(VarDecl {
            id: self.fresh(),
            span,
            ty,
            name,
            array_len,
            init,
        })
    }

    fn parse_if(&mut self) -> Result<StmtKind> {
        self.expect(TokenKind::KwIf)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(TokenKind::RParen)?;
        let then = self.parse_stmt_as_block()?;
        let els = if self.eat(TokenKind::KwElse) {
            if matches!(self.peek(), TokenKind::KwIf) {
                // `else if` chains become a one-statement else block.
                let stmt = self.parse_stmt()?;
                let span = stmt.span;
                Some(Block {
                    id: self.fresh(),
                    span,
                    stmts: vec![stmt],
                })
            } else {
                Some(self.parse_stmt_as_block()?)
            }
        } else {
            None
        };
        Ok(StmtKind::If { cond, then, els })
    }

    fn parse_while(&mut self) -> Result<StmtKind> {
        self.expect(TokenKind::KwWhile)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(TokenKind::RParen)?;
        let body = self.parse_stmt_as_block()?;
        Ok(StmtKind::While { cond, body })
    }

    fn parse_stmt_as_block(&mut self) -> Result<Block> {
        if matches!(self.peek(), TokenKind::LBrace) {
            self.parse_block()
        } else {
            let stmt = self.parse_stmt()?;
            let span = stmt.span;
            Ok(Block {
                id: self.fresh(),
                span,
                stmts: vec![stmt],
            })
        }
    }

    fn parse_for(&mut self) -> Result<StmtKind> {
        let start = self.span();
        self.expect(TokenKind::KwFor)?;
        self.expect(TokenKind::LParen)?;

        // Init clause: `int i = e` or `i = e`.
        let declares_var = self.at_type();
        if declares_var {
            let ty = self.parse_type()?;
            if ty.scalar != Scalar::Int || ty.ptr != 0 {
                return Err(self.error("for-loop induction variables must be plain `int`"));
            }
        }
        let var = self.parse_ident()?;
        self.expect(TokenKind::Assign)?;
        let init = self.parse_expr()?;
        self.expect(TokenKind::Semi)?;

        // Condition clause: `i <op> bound` over the same variable.
        let cond_var = self.parse_ident()?;
        if cond_var != var {
            return Err(self.error(format!(
                "for-loop condition must test induction variable `{var}`, found `{cond_var}`"
            )));
        }
        let cond_op = match self.peek() {
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::NotEq => BinOp::Ne,
            other => return Err(self.error(format!("expected loop comparison, found {other}"))),
        };
        self.bump();
        let bound = self.parse_expr()?;
        self.expect(TokenKind::Semi)?;

        // Step clause.
        let step_var = self.parse_ident()?;
        if step_var != var {
            return Err(self.error(format!(
                "for-loop step must update induction variable `{var}`, found `{step_var}`"
            )));
        }
        let (step, step_negative) = match self.peek().clone() {
            TokenKind::PlusPlus => {
                self.bump();
                (
                    Expr {
                        id: self.fresh(),
                        span: start,
                        kind: ExprKind::IntLit(1),
                    },
                    false,
                )
            }
            TokenKind::MinusMinus => {
                self.bump();
                (
                    Expr {
                        id: self.fresh(),
                        span: start,
                        kind: ExprKind::IntLit(1),
                    },
                    true,
                )
            }
            TokenKind::PlusAssign => {
                self.bump();
                (self.parse_expr()?, false)
            }
            TokenKind::MinusAssign => {
                self.bump();
                (self.parse_expr()?, true)
            }
            other => {
                return Err(self.error(format!("expected loop step, found {other}")));
            }
        };
        self.expect(TokenKind::RParen)?;
        let body = self.parse_stmt_as_block()?;
        Ok(StmtKind::For(ForLoop {
            id: self.fresh(),
            span: start,
            declares_var,
            var,
            init,
            cond_op,
            bound,
            step,
            step_negative,
            body,
        }))
    }

    /// Parse either an assignment statement (lvalue op expr / lvalue++ /
    /// lvalue--) or a bare expression statement.
    fn parse_assign_or_expr(&mut self) -> Result<StmtKind> {
        let lhs = self.parse_expr()?;
        let op = match self.peek() {
            TokenKind::Assign => Some(AssignOp::Set),
            TokenKind::PlusAssign => Some(AssignOp::Add),
            TokenKind::MinusAssign => Some(AssignOp::Sub),
            TokenKind::StarAssign => Some(AssignOp::Mul),
            TokenKind::SlashAssign => Some(AssignOp::Div),
            TokenKind::PlusPlus => {
                self.bump();
                self.check_lvalue(&lhs)?;
                let one = Expr {
                    id: self.fresh(),
                    span: lhs.span,
                    kind: ExprKind::IntLit(1),
                };
                return Ok(StmtKind::Assign {
                    target: lhs,
                    op: AssignOp::Add,
                    value: one,
                });
            }
            TokenKind::MinusMinus => {
                self.bump();
                self.check_lvalue(&lhs)?;
                let one = Expr {
                    id: self.fresh(),
                    span: lhs.span,
                    kind: ExprKind::IntLit(1),
                };
                return Ok(StmtKind::Assign {
                    target: lhs,
                    op: AssignOp::Sub,
                    value: one,
                });
            }
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                self.check_lvalue(&lhs)?;
                let value = self.parse_expr()?;
                Ok(StmtKind::Assign {
                    target: lhs,
                    op,
                    value,
                })
            }
            None => Ok(StmtKind::Expr(lhs)),
        }
    }

    fn check_lvalue(&self, expr: &Expr) -> Result<()> {
        if expr.lvalue_base().is_some() {
            Ok(())
        } else {
            Err(Error::new(
                &self.name,
                expr.span,
                "assignment target is not an lvalue",
            ))
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Expr> {
        let cond = self.parse_or()?;
        if self.eat(TokenKind::Question) {
            let then = self.parse_ternary()?;
            self.expect(TokenKind::Colon)?;
            let els = self.parse_ternary()?;
            let span = cond.span.merge(els.span);
            Ok(Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::Ternary {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                },
            })
        } else {
            Ok(cond)
        }
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat(TokenKind::OrOr) {
            let rhs = self.parse_and()?;
            lhs = self.mk_binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_equality()?;
        while self.eat(TokenKind::AndAnd) {
            let rhs = self.parse_equality()?;
            lhs = self.mk_binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_relational()?;
            lhs = self.mk_binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_additive()?;
            lhs = self.mk_binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = self.mk_binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = self.mk_binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let expr = self.parse_unary()?;
                Ok(Expr {
                    id: self.fresh(),
                    span,
                    kind: ExprKind::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(expr),
                    },
                })
            }
            TokenKind::Not => {
                self.bump();
                let expr = self.parse_unary()?;
                Ok(Expr {
                    id: self.fresh(),
                    span,
                    kind: ExprKind::Unary {
                        op: UnOp::Not,
                        expr: Box::new(expr),
                    },
                })
            }
            // Cast: `(` type `)` unary — distinguished from parenthesised
            // expression by the token after `(` being a type keyword.
            TokenKind::LParen
                if matches!(
                    self.peek2(),
                    TokenKind::KwInt
                        | TokenKind::KwFloat
                        | TokenKind::KwDouble
                        | TokenKind::KwBool
                        | TokenKind::KwConst
                ) =>
            {
                self.bump();
                let ty = self.parse_type()?;
                self.expect(TokenKind::RParen)?;
                let expr = self.parse_unary()?;
                Ok(Expr {
                    id: self.fresh(),
                    span,
                    kind: ExprKind::Cast {
                        ty,
                        expr: Box::new(expr),
                    },
                })
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut expr = self.parse_primary()?;
        while matches!(self.peek(), TokenKind::LBracket) {
            self.bump();
            let index = self.parse_expr()?;
            self.expect(TokenKind::RBracket)?;
            let span = expr.span;
            expr = Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::Index {
                    base: Box::new(expr),
                    index: Box::new(index),
                },
            };
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    span,
                    kind: ExprKind::IntLit(v),
                })
            }
            TokenKind::Float { value, single } => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    span,
                    kind: ExprKind::FloatLit { value, single },
                })
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    span,
                    kind: ExprKind::BoolLit(true),
                })
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    span,
                    kind: ExprKind::BoolLit(false),
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !matches!(self.peek(), TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr {
                        id: self.fresh(),
                        span,
                        kind: ExprKind::Call { callee: name, args },
                    })
                } else {
                    Ok(Expr {
                        id: self.fresh(),
                        span,
                        kind: ExprKind::Ident(name),
                    })
                }
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }

    fn mk_binary(&mut self, op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        let span = lhs.span.merge(rhs.span);
        Expr {
            id: self.fresh(),
            span,
            kind: ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Module {
        parse_module(src, "test.cpp").unwrap()
    }

    #[test]
    fn parses_function_with_params() {
        let m = parse("double dot(const double* a, double b[], int n) { return 0.0; }");
        let f = m.function("dot").unwrap();
        assert_eq!(f.params.len(), 3);
        assert!(f.params[0].ty.is_const);
        assert_eq!(f.params[0].ty.ptr, 1);
        assert_eq!(f.params[1].ty.ptr, 1, "array param decays to pointer");
        assert_eq!(f.params[2].ty, Type::INT);
        assert_eq!(f.ret, Type::DOUBLE);
    }

    #[test]
    fn precedence_mul_over_add() {
        let m = parse("void f() { int x = 1 + 2 * 3; }");
        let f = m.function("f").unwrap();
        let StmtKind::Decl(d) = &f.body.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &d.init.as_ref().unwrap().kind
        else {
            panic!("expected + at top");
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn precedence_relational_under_logical() {
        let m = parse("void f(int a, int b) { bool c = a < 1 && b > 2 || a == b; }");
        let f = m.function("f").unwrap();
        let StmtKind::Decl(d) = &f.body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(
            d.init.as_ref().unwrap().kind,
            ExprKind::Binary { op: BinOp::Or, .. }
        ));
    }

    #[test]
    fn parses_canonical_for() {
        let m = parse("void f(int n) { for (int i = 0; i < n; i++) { } }");
        let f = m.function("f").unwrap();
        let StmtKind::For(l) = &f.body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(l.var, "i");
        assert!(l.declares_var);
        assert_eq!(l.cond_op, BinOp::Lt);
        assert_eq!(l.step.as_int(), Some(1));
        assert!(!l.step_negative);
    }

    #[test]
    fn for_body_single_statement_becomes_block() {
        let m = parse("void f(double* a) { for (int i = 0; i < 4; i++) a[i] = 0.0; }");
        let f = m.function("f").unwrap();
        let StmtKind::For(l) = &f.body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(l.body.stmts.len(), 1);
    }

    #[test]
    fn rejects_noncanonical_for() {
        assert!(parse_module("void f() { for (int i = 0; 1 < 2; i++) { } }", "t").is_err());
        assert!(parse_module("void f(int j) { for (int i = 0; i < 4; j++) { } }", "t").is_err());
        assert!(parse_module(
            "void f() { for (double x = 0.0; x < 1.0; x += 0.1) { } }",
            "t"
        )
        .is_err());
    }

    #[test]
    fn pragmas_attach_to_following_statement() {
        let m = parse(
            "void f(double* a, int n) {\n#pragma omp parallel for\nfor (int i = 0; i < n; i++) a[i] = 0.0;\n}",
        );
        let f = m.function("f").unwrap();
        assert_eq!(f.body.stmts[0].pragmas.len(), 1);
        assert_eq!(f.body.stmts[0].pragmas[0].text, "omp parallel for");
    }

    #[test]
    fn pragmas_attach_to_functions() {
        let m = parse("#pragma psa kernel\nvoid k() { }");
        assert_eq!(m.function("k").unwrap().pragmas[0].text, "psa kernel");
    }

    #[test]
    fn increment_statement_desugars() {
        let m = parse("void f() { int i = 0; i++; i--; i += 3; }");
        let f = m.function("f").unwrap();
        let StmtKind::Assign { op, value, .. } = &f.body.stmts[1].kind else {
            panic!()
        };
        assert_eq!(*op, AssignOp::Add);
        assert_eq!(value.as_int(), Some(1));
        let StmtKind::Assign { op, .. } = &f.body.stmts[2].kind else {
            panic!()
        };
        assert_eq!(*op, AssignOp::Sub);
    }

    #[test]
    fn parses_cast_and_paren_disambiguation() {
        let m = parse("void f(int n) { double x = (double)n; double y = (x + 1.0); }");
        let f = m.function("f").unwrap();
        let StmtKind::Decl(d) = &f.body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(
            d.init.as_ref().unwrap().kind,
            ExprKind::Cast { .. }
        ));
        let StmtKind::Decl(d) = &f.body.stmts[1].kind else {
            panic!()
        };
        assert!(matches!(
            d.init.as_ref().unwrap().kind,
            ExprKind::Binary { .. }
        ));
    }

    #[test]
    fn parses_ternary() {
        let m = parse("double f(double a) { return a > 0.0 ? a : -a; }");
        let f = m.function("f").unwrap();
        let StmtKind::Return(Some(e)) = &f.body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Ternary { .. }));
    }

    #[test]
    fn parses_else_if_chain() {
        let m = parse("int f(int x) { if (x > 0) { return 1; } else if (x < 0) { return -1; } else { return 0; } }");
        let f = m.function("f").unwrap();
        let StmtKind::If { els, .. } = &f.body.stmts[0].kind else {
            panic!()
        };
        let els = els.as_ref().unwrap();
        assert!(matches!(els.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn parses_local_array_decl() {
        let m = parse("void f() { double acc[3]; acc[0] = 1.0; }");
        let f = m.function("f").unwrap();
        let StmtKind::Decl(d) = &f.body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(d.array_len.as_ref().unwrap().as_int(), Some(3));
    }

    #[test]
    fn parses_globals() {
        let m = parse("int N = 1024;\nvoid f() { }");
        assert!(matches!(m.items[0], Item::Global(_)));
        assert_eq!(m.function_names(), vec!["f"]);
    }

    #[test]
    fn parses_nested_calls_and_indexing() {
        let m = parse("void f(double* a, int i) { a[i] = sqrt(fabs(a[i + 1])) * 2.0; }");
        let f = m.function("f").unwrap();
        assert!(matches!(f.body.stmts[0].kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn error_mentions_location() {
        let err = parse_module("void f() {\n  int x = ;\n}", "app.cpp").unwrap_err();
        assert_eq!(err.module, "app.cpp");
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn node_ids_are_unique() {
        let m = parse("void f(int n) { for (int i = 0; i < n; i++) { n = n + i; } }");
        let mut seen = std::collections::HashSet::new();
        // Walk via the debug representation of ids isn't elegant; use the
        // visitor once available. Here: just check a few distinct handles.
        let f = m.function("f").unwrap();
        assert!(seen.insert(f.id));
        assert!(seen.insert(f.body.id));
        assert!(seen.insert(f.body.stmts[0].id));
    }

    #[test]
    fn assignment_requires_lvalue() {
        assert!(parse_module("void f() { 3 = 4; }", "t").is_err());
        assert!(parse_module("void f(double* a) { a[0] + 1 = 4.0; }", "t").is_err());
    }
}
