//! # psa-minicpp — the MiniC++ language frontend
//!
//! A small, self-contained C/C++-like language used as the *application
//! description* language for PSA-flows, standing in for the C++ sources the
//! paper feeds to Artisan/libclang.
//!
//! The subset is deliberately chosen to be exactly rich enough to express the
//! paper's five benchmarks (N-Body, K-Means, AdPredictor, Rush Larsen ODE,
//! Bezier Surface) and the transformations the design-flow tasks perform on
//! them:
//!
//! * functions with scalar, pointer and array parameters,
//! * `for` / `while` / `if` statements, C-style canonical loops,
//! * `int` / `float` / `double` / `bool` scalars, pointers, local arrays,
//! * arithmetic and logical expressions, math intrinsic calls,
//! * `#pragma` directives attached to statements (the carrier for OpenMP
//!   annotations, `#pragma unroll N`, and kernel markers),
//! * stable [`ast::NodeId`]s on every node so meta-programs can query and
//!   rewrite precise locations,
//! * a pretty-printer that emits human-readable source (the paper stresses
//!   that Artisan output "closely mirrors the source-code as written").
//!
//! The pipeline is `source text → lexer → parser → AST → (meta-programs edit
//! the AST) → printer → new source text`.

pub mod ast;
pub mod error;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod scopes;
pub mod span;
pub mod token;
pub mod visit;

pub use ast::{
    BinOp, Block, Expr, ExprKind, ForLoop, Function, Item, Module, NodeId, Param, Pragma, Stmt,
    StmtKind, Type, UnOp, VarDecl,
};
pub use error::{Error, Result};
pub use fingerprint::module_fingerprint;
pub use parser::parse_module;
pub use printer::print_module;
pub use span::Span;

/// Parse, then immediately re-print a module. Useful for canonicalising
/// hand-written benchmark sources so LOC counts are formatting-independent.
pub fn canonicalise(source: &str, name: &str) -> Result<String> {
    let module = parse_module(source, name)?;
    Ok(print_module(&module))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalise_roundtrip_is_stable() {
        let src = "int main() { int x = 1; return x; }";
        let once = canonicalise(src, "t").unwrap();
        let twice = canonicalise(&once, "t").unwrap();
        assert_eq!(once, twice);
    }
}
