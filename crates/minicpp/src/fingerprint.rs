//! Stable structural fingerprint of MiniC++ ASTs.
//!
//! [`module_fingerprint`] reduces a [`Module`] to a 64-bit FNV-1a hash of
//! its *structure*: node kinds, operators, names, literal values (floats
//! by `to_bits`), types, pragma text and the module name. It deliberately
//! ignores [`NodeId`](crate::ast::NodeId)s, [`Span`](crate::span::Span)s
//! and the module's id counter — those change under re-parsing and
//! instrumentation without changing meaning — so two ASTs that
//! pretty-print to the same program fingerprint identically, while any
//! transform that edits the tree (pragma insertion, literal rewriting,
//! loop restructuring) lands on a fresh fingerprint.
//!
//! That property is what makes the fingerprint a *content address* for the
//! evaluation cache: a cache entry keyed by fingerprint never needs
//! explicit invalidation, because mutated content stops mapping to it.
//!
//! Every list is hashed length-first and every node kind carries a
//! distinct tag byte, so differently-shaped trees cannot collide by
//! concatenation ambiguity (e.g. two statements vs one nested block).

use crate::ast::{
    Block, Expr, ExprKind, ForLoop, Function, Item, Module, Param, Pragma, Stmt, StmtKind, VarDecl,
};
use psa_evalcache::Fnv64;
use std::hash::{Hash, Hasher};

/// The structural 64-bit fingerprint of `module`.
pub fn module_fingerprint(module: &Module) -> u64 {
    let mut fp = Fp(Fnv64::new());
    fp.module(module);
    fp.0.finish()
}

struct Fp(Fnv64);

impl Fp {
    fn tag(&mut self, t: u8) {
        t.hash(&mut self.0);
    }

    fn hash<T: Hash + ?Sized>(&mut self, v: &T) {
        v.hash(&mut self.0);
    }

    fn len(&mut self, n: usize) {
        (n as u64).hash(&mut self.0);
    }

    fn module(&mut self, m: &Module) {
        self.tag(0x4d); // 'M'
        self.hash(m.name.as_str());
        self.len(m.items.len());
        for item in &m.items {
            match item {
                Item::Function(f) => {
                    self.tag(1);
                    self.function(f);
                }
                Item::Global(s) => {
                    self.tag(2);
                    self.stmt(s);
                }
            }
        }
    }

    fn function(&mut self, f: &Function) {
        self.tag(0x46); // 'F'
        self.pragmas(&f.pragmas);
        self.hash(&f.ret);
        self.hash(f.name.as_str());
        self.len(f.params.len());
        for p in &f.params {
            self.param(p);
        }
        self.block(&f.body);
    }

    fn param(&mut self, p: &Param) {
        self.tag(0x50); // 'P'
        self.hash(&p.ty);
        self.hash(p.name.as_str());
    }

    fn pragmas(&mut self, pragmas: &[Pragma]) {
        self.len(pragmas.len());
        for p in pragmas {
            self.hash(p.text.as_str());
        }
    }

    fn block(&mut self, b: &Block) {
        self.tag(0x42); // 'B'
        self.len(b.stmts.len());
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        self.pragmas(&s.pragmas);
        match &s.kind {
            StmtKind::Decl(d) => {
                self.tag(1);
                self.var_decl(d);
            }
            StmtKind::Assign { target, op, value } => {
                self.tag(2);
                self.expr(target);
                self.hash(op);
                self.expr(value);
            }
            StmtKind::Expr(e) => {
                self.tag(3);
                self.expr(e);
            }
            StmtKind::If { cond, then, els } => {
                self.tag(4);
                self.expr(cond);
                self.block(then);
                match els {
                    Some(b) => {
                        self.tag(1);
                        self.block(b);
                    }
                    None => self.tag(0),
                }
            }
            StmtKind::For(f) => {
                self.tag(5);
                self.for_loop(f);
            }
            StmtKind::While { cond, body } => {
                self.tag(6);
                self.expr(cond);
                self.block(body);
            }
            StmtKind::Return(e) => {
                self.tag(7);
                match e {
                    Some(e) => {
                        self.tag(1);
                        self.expr(e);
                    }
                    None => self.tag(0),
                }
            }
            StmtKind::Break => self.tag(8),
            StmtKind::Continue => self.tag(9),
            StmtKind::Block(b) => {
                self.tag(10);
                self.block(b);
            }
        }
    }

    fn var_decl(&mut self, d: &VarDecl) {
        self.tag(0x44); // 'D'
        self.hash(&d.ty);
        self.hash(d.name.as_str());
        match &d.array_len {
            Some(e) => {
                self.tag(1);
                self.expr(e);
            }
            None => self.tag(0),
        }
        match &d.init {
            Some(e) => {
                self.tag(1);
                self.expr(e);
            }
            None => self.tag(0),
        }
    }

    fn for_loop(&mut self, f: &ForLoop) {
        self.tag(0x4c); // 'L'
        self.hash(&f.declares_var);
        self.hash(f.var.as_str());
        self.expr(&f.init);
        self.hash(&f.cond_op);
        self.expr(&f.bound);
        self.expr(&f.step);
        self.hash(&f.step_negative);
        self.block(&f.body);
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(v) => {
                self.tag(1);
                self.hash(v);
            }
            ExprKind::FloatLit { value, single } => {
                self.tag(2);
                self.hash(&value.to_bits());
                self.hash(single);
            }
            ExprKind::BoolLit(v) => {
                self.tag(3);
                self.hash(v);
            }
            ExprKind::Ident(name) => {
                self.tag(4);
                self.hash(name.as_str());
            }
            ExprKind::Unary { op, expr } => {
                self.tag(5);
                self.hash(op);
                self.expr(expr);
            }
            ExprKind::Binary { op, lhs, rhs } => {
                self.tag(6);
                self.hash(op);
                self.expr(lhs);
                self.expr(rhs);
            }
            ExprKind::Call { callee, args } => {
                self.tag(7);
                self.hash(callee.as_str());
                self.len(args.len());
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Index { base, index } => {
                self.tag(8);
                self.expr(base);
                self.expr(index);
            }
            ExprKind::Cast { ty, expr } => {
                self.tag(9);
                self.hash(ty);
                self.expr(expr);
            }
            ExprKind::Ternary { cond, then, els } => {
                self.tag(10);
                self.expr(cond);
                self.expr(then);
                self.expr(els);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;
    use crate::printer::print_module;

    fn fp(src: &str) -> u64 {
        module_fingerprint(&parse_module(src, "fp-test").expect("parses"))
    }

    #[test]
    fn identical_sources_fingerprint_identically() {
        let src = "int main() { int n = 4; for (int i = 0; i < n; i++) { sink(i); } return 0; }";
        assert_eq!(fp(src), fp(src));
    }

    #[test]
    fn node_ids_and_spans_do_not_matter() {
        // Same structure, very different spans/ids (whitespace + reparse
        // after printing).
        let a = parse_module(
            "int main() { double x = 1.5; sink(x); return 0; }",
            "fp-test",
        )
        .unwrap();
        let b = parse_module(
            "int main() {\n\n    double x = 1.5;\n    sink(x);\n    return 0;\n}\n",
            "fp-test",
        )
        .unwrap();
        assert_eq!(module_fingerprint(&a), module_fingerprint(&b));
        let reparsed = parse_module(&print_module(&a), "fp-test").unwrap();
        assert_ne!(a.next_id, 0);
        assert_eq!(module_fingerprint(&a), module_fingerprint(&reparsed));
    }

    #[test]
    fn module_name_is_part_of_the_address() {
        let a = parse_module("int main() { return 0; }", "app-a").unwrap();
        let b = parse_module("int main() { return 0; }", "app-b").unwrap();
        assert_ne!(module_fingerprint(&a), module_fingerprint(&b));
    }

    #[test]
    fn structural_changes_change_the_fingerprint() {
        let base = "int main() { double x = 1.0; sink(x); return 0; }";
        for variant in [
            "int main() { double x = 2.0; sink(x); return 0; }", // literal value
            "int main() { float x = 1.0; sink(x); return 0; }",  // type
            "int main() { double y = 1.0; sink(y); return 0; }", // name
            "int main() { double x = 1.0; sink(x); sink(x); return 0; }", // extra stmt
            "int main() { double x = -1.0; sink(x); return 0; }", // unary op
        ] {
            assert_ne!(fp(base), fp(variant), "{variant}");
        }
    }

    #[test]
    fn pragmas_are_content() {
        let plain = "int main() { for (int i = 0; i < 8; i++) { sink(i); } return 0; }";
        let pragma =
            "int main() { #pragma omp parallel for\nfor (int i = 0; i < 8; i++) { sink(i); } return 0; }";
        assert_ne!(fp(plain), fp(pragma));
    }

    #[test]
    fn sp_literal_flag_is_content() {
        // `1.0` vs `1.0f` print differently and must key differently even
        // though the f64 payload is equal.
        assert_ne!(
            fp("int main() { sink(1.0); return 0; }"),
            fp("int main() { sink(1.0f); return 0; }")
        );
    }
}
