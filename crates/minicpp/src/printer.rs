//! Pretty-printer: AST → human-readable MiniC++ source.
//!
//! The printer is precedence-aware (emits only the parentheses the grammar
//! needs) and deterministic, so printed designs are directly comparable for
//! the paper's lines-of-code productivity metric (Table I), and
//! `parse(print(ast))` reproduces an equivalent AST (checked by property
//! tests).

use crate::ast::*;
use std::fmt::Write;

/// Render a whole module.
pub fn print_module(module: &Module) -> String {
    let mut p = Printer::new();
    for (i, item) in module.items.iter().enumerate() {
        if i > 0 {
            p.out.push('\n');
        }
        match item {
            Item::Function(f) => p.function(f),
            Item::Global(s) => p.stmt(s),
        }
    }
    p.out
}

/// Render a single function (used when reporting extracted kernels).
pub fn print_function(func: &Function) -> String {
    let mut p = Printer::new();
    p.function(func);
    p.out
}

/// Render one statement at top-level indentation (for diagnostics).
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(stmt);
    p.out
}

/// Render an expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(expr, 0);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

/// Binding strength used to decide parenthesisation. Higher binds tighter.
fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne => 3,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
        BinOp::Add | BinOp::Sub => 5,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 6,
    }
}

const PREC_TERNARY: u8 = 0;
const PREC_UNARY: u8 = 7;

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::with_capacity(1024),
            indent: 0,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn pragmas(&mut self, pragmas: &[Pragma]) {
        for p in pragmas {
            self.line(&format!("#pragma {}", p.text));
        }
    }

    fn function(&mut self, f: &Function) {
        self.pragmas(&f.pragmas);
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| format!("{} {}", p.ty, p.name))
            .collect();
        self.line(&format!("{} {}({}) {{", f.ret, f.name, params.join(", ")));
        self.indent += 1;
        for s in &f.body.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line("}");
    }

    fn block_body(&mut self, block: &Block) {
        self.indent += 1;
        for s in &block.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
    }

    fn stmt(&mut self, s: &Stmt) {
        self.pragmas(&s.pragmas);
        match &s.kind {
            StmtKind::Decl(d) => {
                let mut text = format!("{} {}", d.ty, d.name);
                if let Some(len) = &d.array_len {
                    let mut e = String::new();
                    self.expr_into(&mut e, len, 0);
                    write!(text, "[{e}]").unwrap();
                }
                if let Some(init) = &d.init {
                    let mut e = String::new();
                    self.expr_into(&mut e, init, 0);
                    write!(text, " = {e}").unwrap();
                }
                text.push(';');
                self.line(&text);
            }
            StmtKind::Assign { target, op, value } => {
                let mut t = String::new();
                self.expr_into(&mut t, target, PREC_UNARY);
                // Print `x += 1` as the idiomatic `x++` when it round-trips.
                if matches!(op, AssignOp::Add) && value.as_int() == Some(1) {
                    self.line(&format!("{t}++;"));
                } else if matches!(op, AssignOp::Sub) && value.as_int() == Some(1) {
                    self.line(&format!("{t}--;"));
                } else {
                    let mut v = String::new();
                    self.expr_into(&mut v, value, 0);
                    self.line(&format!("{t} {} {v};", op.symbol()));
                }
            }
            StmtKind::Expr(e) => {
                let mut t = String::new();
                self.expr_into(&mut t, e, 0);
                self.line(&format!("{t};"));
            }
            StmtKind::If { cond, then, els } => {
                let mut c = String::new();
                self.expr_into(&mut c, cond, 0);
                self.line(&format!("if ({c}) {{"));
                self.block_body(then);
                match els {
                    Some(els) => {
                        self.line("} else {");
                        self.block_body(els);
                        self.line("}");
                    }
                    None => self.line("}"),
                }
            }
            StmtKind::For(l) => {
                let mut init = String::new();
                self.expr_into(&mut init, &l.init, 0);
                let mut bound = String::new();
                self.expr_into(&mut bound, &l.bound, 0);
                let decl = if l.declares_var { "int " } else { "" };
                let step = match (&l.step.kind, l.step_negative) {
                    (ExprKind::IntLit(1), false) => format!("{}++", l.var),
                    (ExprKind::IntLit(1), true) => format!("{}--", l.var),
                    (_, neg) => {
                        let mut st = String::new();
                        self.expr_into(&mut st, &l.step, 0);
                        format!("{} {}= {st}", l.var, if neg { '-' } else { '+' })
                    }
                };
                self.line(&format!(
                    "for ({decl}{var} = {init}; {var} {op} {bound}; {step}) {{",
                    var = l.var,
                    op = l.cond_op.symbol(),
                ));
                self.block_body(&l.body);
                self.line("}");
            }
            StmtKind::While { cond, body } => {
                let mut c = String::new();
                self.expr_into(&mut c, cond, 0);
                self.line(&format!("while ({c}) {{"));
                self.block_body(body);
                self.line("}");
            }
            StmtKind::Return(None) => self.line("return;"),
            StmtKind::Return(Some(e)) => {
                let mut t = String::new();
                self.expr_into(&mut t, e, 0);
                self.line(&format!("return {t};"));
            }
            StmtKind::Break => self.line("break;"),
            StmtKind::Continue => self.line("continue;"),
            StmtKind::Block(b) => {
                self.line("{");
                self.block_body(b);
                self.line("}");
            }
        }
    }

    fn expr(&mut self, e: &Expr, min_prec: u8) {
        let mut s = String::new();
        self.expr_into(&mut s, e, min_prec);
        self.out.push_str(&s);
    }

    /// Write `e` into `out`, parenthesising if its top-level binding strength
    /// is below `min_prec`.
    fn expr_into(&self, out: &mut String, e: &Expr, min_prec: u8) {
        match &e.kind {
            ExprKind::IntLit(v) => {
                // A leading minus is itself a unary operator: parenthesise
                // only where a bare unary expression would need it too.
                if *v < 0 && min_prec > PREC_UNARY {
                    write!(out, "({v})").unwrap();
                } else {
                    write!(out, "{v}").unwrap();
                }
            }
            ExprKind::FloatLit { value, single } => {
                let suffix = if *single { "f" } else { "" };
                if *value < 0.0 && min_prec > PREC_UNARY {
                    write!(out, "({value:?}{suffix})").unwrap();
                } else {
                    write!(out, "{value:?}{suffix}").unwrap();
                }
            }
            ExprKind::BoolLit(b) => {
                write!(out, "{b}").unwrap();
            }
            ExprKind::Ident(name) => out.push_str(name),
            ExprKind::Unary { op, expr } => {
                let needs_parens = min_prec > PREC_UNARY;
                if needs_parens {
                    out.push('(');
                }
                out.push(match op {
                    UnOp::Neg => '-',
                    UnOp::Not => '!',
                });
                self.expr_into(out, expr, PREC_UNARY + 1);
                if needs_parens {
                    out.push(')');
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let prec = bin_prec(*op);
                let needs_parens = prec < min_prec;
                if needs_parens {
                    out.push('(');
                }
                self.expr_into(out, lhs, prec);
                write!(out, " {} ", op.symbol()).unwrap();
                // Left-associative: the rhs must bind strictly tighter.
                self.expr_into(out, rhs, prec + 1);
                if needs_parens {
                    out.push(')');
                }
            }
            ExprKind::Call { callee, args } => {
                write!(out, "{callee}(").unwrap();
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.expr_into(out, a, 0);
                }
                out.push(')');
            }
            ExprKind::Index { base, index } => {
                self.expr_into(out, base, PREC_UNARY + 1);
                out.push('[');
                self.expr_into(out, index, 0);
                out.push(']');
            }
            ExprKind::Cast { ty, expr } => {
                let needs_parens = min_prec > PREC_UNARY;
                if needs_parens {
                    out.push('(');
                }
                write!(out, "({ty})").unwrap();
                self.expr_into(out, expr, PREC_UNARY + 1);
                if needs_parens {
                    out.push(')');
                }
            }
            ExprKind::Ternary { cond, then, els } => {
                let needs_parens = min_prec > PREC_TERNARY;
                if needs_parens {
                    out.push('(');
                }
                self.expr_into(out, cond, 1);
                out.push_str(" ? ");
                self.expr_into(out, then, PREC_TERNARY);
                out.push_str(" : ");
                self.expr_into(out, els, PREC_TERNARY);
                if needs_parens {
                    out.push(')');
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn roundtrip(src: &str) -> String {
        print_module(&parse_module(src, "t").unwrap())
    }

    /// Parse → print → parse must yield the same printed form.
    fn assert_stable(src: &str) {
        let once = roundtrip(src);
        let twice = print_module(&parse_module(&once, "t").unwrap());
        assert_eq!(once, twice, "printer not stable for: {src}");
    }

    #[test]
    fn prints_minimal_precedence_parens() {
        let out = roundtrip("void f(int a, int b) { int c = (a + b) * 2; int d = a + b * 2; }");
        assert!(out.contains("int c = (a + b) * 2;"), "{out}");
        assert!(out.contains("int d = a + b * 2;"), "{out}");
    }

    #[test]
    fn respects_left_associativity() {
        // a - (b - c) must keep its parens; (a - b) - c must lose them.
        let out =
            roundtrip("void f(int a, int b, int c) { int x = a - (b - c); int y = (a - b) - c; }");
        assert!(out.contains("int x = a - (b - c);"), "{out}");
        assert!(out.contains("int y = a - b - c;"), "{out}");
        assert_stable("void f(int a, int b, int c) { int x = a - (b - c); }");
    }

    #[test]
    fn prints_float_literals_roundtrippably() {
        let out = roundtrip("void f() { double x = 1.0; float y = 0.5f; double z = 1e-3; }");
        assert!(out.contains("double x = 1.0;"), "{out}");
        assert!(out.contains("float y = 0.5f;"), "{out}");
        assert!(out.contains("double z = 0.001;"), "{out}");
        assert_stable("void f() { double x = 1.0; float y = 0.5f; }");
    }

    #[test]
    fn prints_canonical_for_and_increments() {
        let out = roundtrip("void f(int n) { for (int i = 0; i < n; i++) { n++; } }");
        assert!(out.contains("for (int i = 0; i < n; i++) {"), "{out}");
        assert!(out.contains("n++;"), "{out}");
    }

    #[test]
    fn prints_strided_and_descending_loops() {
        assert_stable(
            "void f(int n) { for (int i = n; i > 0; i--) { } for (int j = 0; j < n; j += 4) { } }",
        );
        let out = roundtrip("void f(int n) { for (int j = 0; j < n; j += 4) { } }");
        assert!(out.contains("j += 4"), "{out}");
    }

    #[test]
    fn prints_pragmas_above_statements() {
        let out = roundtrip(
            "void f(double* a, int n) {\n#pragma omp parallel for\nfor (int i = 0; i < n; i++) a[i] = 0.0;\n}",
        );
        let pragma_pos = out.find("#pragma omp parallel for").unwrap();
        let for_pos = out.find("for (").unwrap();
        assert!(pragma_pos < for_pos);
    }

    #[test]
    fn prints_ternary_and_casts() {
        assert_stable("double f(double a, int n) { return a > 0.0 ? a : (double)n; }");
    }

    #[test]
    fn prints_unary_in_tight_context() {
        assert_stable("void f(double* a, int i) { a[i] = -a[i] * 2.0; }");
        let out = roundtrip("void f(double* a, int i) { a[i] = 1.0 / -a[i]; }");
        assert!(out.contains("1.0 / -a[i]"), "{out}");
    }

    #[test]
    fn prints_else_chains() {
        assert_stable(
            "int f(int x) { if (x > 0) { return 1; } else if (x < 0) { return -1; } else { return 0; } }",
        );
    }

    #[test]
    fn prints_nested_indexing() {
        assert_stable("void f(double* a, int i, int j, int w) { a[i * w + j] = a[j * w + i]; }");
    }
}
